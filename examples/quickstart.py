"""Quickstart: quantize a model with APSQ in five steps.

Run with::

    python examples/quickstart.py

Steps: (1) train a small float model, (2) quantize it to W8A8 with INT8
APSQ partial sums, (3) QAT-finetune against the float teacher, (4) compare
accuracy, (5) estimate the accelerator energy saving.
"""

import numpy as np

from repro import nn
from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    GemmLayer,
    apsq_psum_format,
    baseline_psum_format,
    normalized_energy,
)
from repro.quant import QATConfig, QATTrainer, apsq_config, evaluate, quantize_model
from repro.tensor import Tensor, manual_seed


class TinyClassifier(nn.Module):
    """Two-layer MLP — any model built from repro.nn layers works."""

    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(32, 64)
        self.fc2 = nn.Linear(64, 4)

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return self.fc2(self.fc1(x).relu())


def make_data(n=512, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 32))
    y = (x[:, 0] > 0).astype(np.int64) * 2 + (x[:, 1] > 0).astype(np.int64)
    return x, y


def main():
    manual_seed(0)
    train_x, train_y = make_data(512)
    eval_x, eval_y = make_data(256, seed=1)
    accuracy = lambda out, t: float((out.argmax(-1) == t).mean())

    # 1. Train the float teacher.
    teacher = TinyClassifier()
    QATTrainer(teacher, nn.cross_entropy, config=QATConfig(epochs=10, lr=3e-3)).fit(
        train_x, train_y
    )
    float_acc = evaluate(teacher, eval_x, eval_y, accuracy)
    print(f"float teacher accuracy:        {float_acc:.4f}")

    # 2. Quantize a fresh copy: W8A8 + INT8 APSQ partial sums, group size 2.
    #    Every Linear's reduction is split into ceil(Ci/Pci) PSUM tiles.
    student = quantize_model(TinyClassifier(), apsq_config(gs=2, pci=8))
    student.load_state_dict(teacher.state_dict(), strict=False)

    # 3. QAT with knowledge distillation from the float teacher.
    QATTrainer(
        student, nn.cross_entropy, teacher=teacher, config=QATConfig(epochs=5, lr=5e-4)
    ).fit(train_x, train_y)

    # 4. Accuracy after APSQ.
    apsq_acc = evaluate(student, eval_x, eval_y, accuracy)
    print(f"APSQ (INT8 PSUM, gs=2):        {apsq_acc:.4f}")

    # 5. Energy: what does INT8 PSUM storage buy on a WS accelerator?
    workload = [GemmLayer("fc1", 512, 32, 64), GemmLayer("fc2", 512, 64, 4)]
    ratio = normalized_energy(
        workload,
        AcceleratorConfig(),
        apsq_psum_format(gs=2),
        Dataflow.WS,
        baseline_psum_format(32),
    )
    print(f"energy vs INT32-PSUM baseline: {ratio:.2f}x  ({100 * (1 - ratio):.0f}% saved)")


if __name__ == "__main__":
    main()
