"""Co-design scenario: explore the accelerator design space around APSQ.

Answers the questions a deployment engineer would ask before adopting
APSQ, using the analytical model (runs in seconds, no training):

1. How much output buffer do I need before large group sizes stop
   spilling?  (`sweep_ofmap_buffer`)
2. How does MAC-array input parallelism trade against PSUM traffic?
   (`sweep_pci`)
3. Which PSUM precision is worth it? (`sweep_psum_bits`)
4. Which dataflow should each layer use, with and without APSQ?
   (`best_dataflow` / `reconfigurable_model_energy`)
5. How wide would exact accumulators have to be? (`required_psum_bits`)
"""

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    bert_base_workload,
    dataflow_histogram,
    format_sweep,
    llama2_7b_workload,
    reconfigurable_model_energy,
    segformer_b0_workload,
    sweep_ofmap_buffer,
    sweep_pci,
    sweep_psum_bits,
)
from repro.quant import required_psum_bits, storage_psum_bits


def main():
    config = AcceleratorConfig()
    segformer = segformer_b0_workload(512)
    bert = bert_base_workload(128)

    print("1. Segformer WS energy vs ofmap buffer (APSQ gs=4):")
    sweep = sweep_ofmap_buffer(segformer, [64, 128, 256, 512, 1024], apsq_psum_format(4), Dataflow.WS)
    print(format_sweep(sweep, "KiB", "{:.3e}"))

    print("\n2. BERT WS energy vs Pci (INT32 PSUMs):")
    sweep = sweep_pci(bert, [4, 8, 16, 32], baseline_psum_format(32), Dataflow.WS)
    print(format_sweep(sweep, "Pci", "{:.3e}"))

    print("\n3. BERT WS normalized energy vs stored-PSUM bits (gs=1):")
    sweep = sweep_psum_bits(bert, [4, 6, 8, 16, 32], Dataflow.WS)
    print(format_sweep(sweep, "bits", "{:.3f}"))

    print("\n4. Per-layer dataflow choice, INT32 vs APSQ gs=2:")
    for label, fmt in (("INT32", baseline_psum_format(32)), ("APSQ gs=2", apsq_psum_format(2))):
        total, choices = reconfigurable_model_energy(segformer, config, fmt)
        print(f"   {label:<10} total={total.total:.3e} pJ, mix={dataflow_histogram(choices)}")

    print("\n5. Exact accumulator widths (Section II-A):")
    for name, ci in (("BERT-Base FFN", 3072), ("BERT-Large MLP", 4096), ("LLaMA2-7B down_proj", 11008)):
        print(
            f"   {name:<22} Ci={ci:>6}: exact {required_psum_bits(ci)} bits "
            f"-> stored {storage_psum_bits(ci)} bits (APSQ: 8)"
        )

    print("\n6. LLaMA2-7B decode vs prefill WS energy (INT32 PSUMs):")
    lcfg = AcceleratorConfig(po=1, pci=32, pco=32)
    from repro.accelerator import model_energy

    for phase in ("decode", "prefill"):
        wl = llama2_7b_workload(4096, phase)
        e = model_energy(wl, lcfg, baseline_psum_format(32), Dataflow.WS)
        print(f"   {phase:<8} total={e.total:.3e} pJ  psum share={e.psum_share:.0%}")


if __name__ == "__main__":
    main()
