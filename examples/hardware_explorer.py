"""Hardware scenario: explore the analytical accelerator and drive the RAE.

Parts:

1. Energy landscape — per-dataflow breakdown for BERT-Base (Fig. 1 data)
   and the buffer-size sensitivity of the Fig. 6b crossover.
2. Area accounting — the Table II report.
3. RAE in action — feed integer PSUM tiles through the bit-accurate
   Reconfigurable APSQ Engine at every supported group size and verify it
   against the Algorithm-1 reference transcription.
4. Per-layer drill-down and integer-only inference for a single layer.
5. Model-wide integer execution planner — build one plan over a quantized
   BERT, run the whole model's hardware-equivalence pass as a handful of
   grouped batched reductions, and time it against per-layer runners.
6. Request-level serving — pin the planner behind a `repro.serve`
   endpoint, push a burst of classification requests through the
   micro-batching service, and check the coalesced responses are
   bit-identical to sequential single-request dispatch.

Runs in seconds; purely analytical + integer simulation (no training).
"""

import numpy as np

from repro.accelerator import (
    KIB,
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    area_report,
    baseline_psum_format,
    bert_base_workload,
    format_report,
    layer_report,
    model_energy,
    segformer_b0_workload,
)
from repro.rae import IntegerGemmRunner, RAEngine, reference_apsq_reduce


def energy_landscape():
    print("=== 1. Energy landscape (BERT-Base, 128 tokens) ===")
    config = AcceleratorConfig()
    workload = bert_base_workload(128)
    for dataflow in (Dataflow.IS, Dataflow.WS, Dataflow.OS):
        breakdown = model_energy(workload, config, baseline_psum_format(32), dataflow)
        parts = ", ".join(f"{k}={v / breakdown.total:.0%}" for k, v in breakdown.as_dict().items())
        print(f"{dataflow.name}: total={breakdown.total:.3e} pJ  [{parts}]")

    print("\nSegformer WS crossover vs ofmap buffer (normalized energy at gs=1..4):")
    workload = segformer_b0_workload(512)
    for kib in (128, 256, 512):
        config = AcceleratorConfig(ofmap_buffer=kib * KIB)
        base = model_energy(workload, config, baseline_psum_format(32), Dataflow.WS).total
        row = " ".join(
            f"gs{gs}={model_energy(workload, config, apsq_psum_format(gs), Dataflow.WS).total / base:.2f}"
            for gs in (1, 2, 3, 4)
        )
        print(f"  {kib:>4} KiB: {row}")


def area_accounting():
    print("\n=== 2. Area accounting (Table II) ===")
    report = area_report()
    print(f"baseline accelerator: {report.baseline_accelerator:>12,.0f} um^2")
    print(f"RAE:                  {report.rae:>12,.0f} um^2")
    print(f"accelerator w/ RAE:   {report.accelerator_with_rae:>12,.0f} um^2")
    print(f"overhead:             {report.overhead_percent:.2f}%")


def drive_rae():
    print("\n=== 3. Driving the RAE ===")
    rng = np.random.default_rng(0)
    lanes = 16
    tiles = [rng.integers(-3000, 3000, size=lanes) for _ in range(8)]
    exponents = [6] * 8
    exact = sum(tiles)

    for gs in (1, 2, 3, 4):
        engine = RAEngine(gs=gs, lanes=lanes)
        codes, exp = engine.reduce(tiles, exponents)
        ref_codes, _ = reference_apsq_reduce(tiles, exponents, gs=gs)
        approx = codes.astype(np.int64) << exp
        err = np.abs(approx - exact).mean() / np.abs(exact).mean()
        match = "ok" if np.array_equal(codes, ref_codes) else "MISMATCH"
        print(
            f"gs={gs}: s0={engine.mode.s0} s1={engine.mode.s1 or '-'} | "
            f"bank writes={engine.stats.bank_writes} reads={engine.stats.bank_reads} "
            f"apsq={engine.stats.apsq_steps} psq={engine.stats.psq_steps} | "
            f"rel.err={err:.3f} | vs Algorithm 1: {match}"
        )

    # The batched datapath: 32 independent reductions in one engine pass,
    # with the shared ReductionSchedule supplying activity counts x rows.
    rows = 32
    batch = rng.integers(-3000, 3000, size=(8, rows, lanes))
    engine = RAEngine(gs=2, lanes=lanes)
    codes, exp = engine.reduce_batch(batch, exponents)
    ok = all(
        np.array_equal(
            codes[r], reference_apsq_reduce(list(batch[:, r]), exponents, gs=2)[0]
        )
        for r in range(rows)
    )
    print(
        f"reduce_batch: {rows} rows in one pass | "
        f"bank writes={engine.stats.bank_writes} (= 8 tiles x {rows} rows) | "
        f"all rows vs Algorithm 1: {'ok' if ok else 'MISMATCH'}"
    )


def drill_down():
    print("\n=== 4. Per-layer drill-down (Segformer-B0 hotspots, WS/INT32) ===")
    rows = layer_report(
        segformer_b0_workload(512),
        AcceleratorConfig(),
        baseline_psum_format(32),
        Dataflow.WS,
    )
    print(format_report(rows, top=5))


def integer_inference():
    print("\n=== 5. Integer-only inference through the RAE ===")
    from repro import nn
    from repro.quant import PsumQuantizedLinear, apsq_config, format_summary, model_summary
    from repro.tensor import Tensor, manual_seed

    manual_seed(0)
    layer = PsumQuantizedLinear(nn.Linear(32, 8), apsq_config(gs=2, pci=8))
    rng = np.random.default_rng(0)
    layer(Tensor(rng.normal(size=(8, 32))))  # calibrate quantizers
    # Pin scales to powers of two so the shift path is exact.
    layer.act_quantizer.scale.data = np.array(2.0**-4)
    layer.weight_quantizer.scale.data = np.array(2.0**-5)

    runner = IntegerGemmRunner(layer, requant="shift")
    report = runner.compare_with_fake_quant(rng.normal(size=(4, 32)) * 0.5)
    print(f"exponent snap error: {report['exponent_snap_bits']} bits")
    print(f"integer vs fake-quant max |diff|: {report['max_abs_diff']:.2e}")

    class Wrapper(nn.Module):
        def __init__(self, inner):
            super().__init__()
            self.layer = inner

        def forward(self, x):
            return self.layer(x)

    print(format_summary(model_summary(Wrapper(layer))))


def model_wide_planner():
    print("\n=== 6. Model-wide integer execution planner ===")
    import time

    from repro.models import BertConfig, BertTiny
    from repro.quant import apsq_config, quantize_model
    from repro.rae import IntegerExecutionPlan, capture_layer_inputs
    from repro.tensor import manual_seed

    manual_seed(0)
    model = quantize_model(BertTiny(BertConfig(num_classes=2)), apsq_config(gs=2, pci=8))
    tokens = np.random.default_rng(0).integers(0, 64, size=(2, 16))
    model(tokens)  # calibrate every quantizer
    model.eval()

    # Build once: group layers by reduction shape, one shared engine each.
    plan = IntegerExecutionPlan.from_model(model)
    print(plan)
    for shape, names in plan.groups.items():
        print(
            f"  shape (np={shape.num_tiles}, gs={shape.gs}, lanes={shape.lanes}): "
            f"{len(names)} layers -> 1 shared engine"
        )

    # Run many: the whole model's integer pass is one reduce_batch per shape.
    inputs = capture_layer_inputs(model, plan.layer_names, tokens)
    t0 = time.perf_counter()
    outputs = plan.run_model(inputs)
    elapsed = time.perf_counter() - t0
    report = plan.compare_with_fake_quant(inputs)
    worst = max(v["mean_rel_diff"] for v in report.values())

    t0 = time.perf_counter()
    for name in plan.layer_names:
        x = inputs[name].reshape(-1, inputs[name].shape[-1])
        IntegerGemmRunner(model.get_submodule(name)).run(x)
    per_layer = time.perf_counter() - t0
    print(
        f"integer pass over {len(outputs)} layers: {elapsed * 1e3:.1f} ms planner "
        f"vs {per_layer * 1e3:.1f} ms per-layer runners "
        f"({per_layer / max(elapsed, 1e-9):.1f}x)"
    )
    print(f"worst mean-relative diff vs fake-quant forward: {worst:.3f}")


def request_level_serving():
    print("\n=== 6. Request-level serving (repro.serve) ===")
    import time

    from repro.serve import BatchPolicy, EndpointRegistry, InferenceService, build_endpoint

    endpoint = build_endpoint("bert")
    registry = EndpointRegistry()
    registry.register(endpoint)
    print(endpoint)

    rng = np.random.default_rng(0)
    requests = [endpoint.synth_request(rng) for _ in range(16)]
    service = InferenceService(
        registry, policy=BatchPolicy(max_batch=8, max_delay_s=0.002)
    ).start()
    try:
        t0 = time.perf_counter()
        futures = [service.submit("bert", r) for r in requests]
        responses = [f.result() for f in futures]
        elapsed = time.perf_counter() - t0
    finally:
        metrics = service.drain()
    sizes = sorted({r.timing.batch_size for r in responses})
    matches = all(
        np.array_equal(resp.result.logits, endpoint.serve_one(req).logits)
        for req, resp in zip(requests, responses)
    )
    stats = metrics["endpoints"]["bert"]
    print(
        f"served {metrics['completed']} requests in {elapsed * 1e3:.1f} ms "
        f"({stats['batches']} coalesced batches, sizes {sizes})"
    )
    print(f"micro-batched == sequential single-request dispatch: {'ok' if matches else 'MISMATCH'}")


if __name__ == "__main__":
    energy_landscape()
    area_accounting()
    drive_rae()
    drill_down()
    integer_inference()
    model_wide_planner()
    request_level_serving()
