"""CV scenario: semantic segmentation with APSQ on Segformer/EfficientViT.

The paper's motivating workload: high-resolution dense prediction
(ADE20K-class) where stage-1 token counts exceed 16k, blowing up the WS
PSUM working set.  This example trains both tiny CV models on the
synthetic segmentation task, quantizes with APSQ, and shows the
interaction Fig. 6b highlights: small gs keeps the full 85%+ WS energy
saving, large gs spills the grouped PSUMs into DRAM.

Run with::

    REPRO_PROFILE=smoke python examples/semantic_segmentation.py
"""

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    efficientvit_b1_workload,
    model_energy,
    psum_working_set,
    segformer_b0_workload,
)
from repro.experiments import get_profile, run_segmentation

ARCHS = {"segformer": segformer_b0_workload, "efficientvit": efficientvit_b1_workload}


def main():
    profile = get_profile()
    config = AcceleratorConfig()
    reference = baseline_psum_format(32)
    print(f"profile: {profile.name}\n")

    for arch, workload_fn in ARCHS.items():
        workload = workload_fn(512)
        print(f"=== {arch} ===")

        # Where does the PSUM working set peak? (the Fig. 6b mechanism)
        fmt = apsq_psum_format(4)
        worst = max(workload, key=lambda l: psum_working_set(l, config, fmt, Dataflow.WS))
        peak_kib = psum_working_set(worst, config, fmt, Dataflow.WS) / 1024
        print(
            f"largest WS PSUM working set at gs=4: {peak_kib:.0f} KiB "
            f"({worst.name}, {worst.m} tokens) vs {config.ofmap_buffer // 1024} KiB buffer"
        )

        mious = run_segmentation(arch, profile, methods=["Baseline", "gs=1", "gs=2", "gs=4"])
        base_energy = model_energy(workload, config, reference, Dataflow.WS).total
        print(f"{'method':<10} {'mIoU':>7} {'WS energy':>10}")
        for method, miou in mious.items():
            if method == "Baseline":
                ratio = 1.0
            else:
                fmt = apsq_psum_format(int(method[3:]))
                ratio = model_energy(workload, config, fmt, Dataflow.WS).total / base_energy
            print(f"{method:<10} {100 * miou:>6.2f}% {ratio:>9.2f}x")
        print()


if __name__ == "__main__":
    main()
