"""LLM scenario: APSQ for autoregressive decoding (Section IV-D).

Pretrains the tiny LLaMA causal LM on the synthetic chain corpus,
quantizes with APSQ, evaluates zero-shot multiple-choice reasoning by
choice log-likelihood (the lm-eval protocol), and reports the Table-IV
energy ratios at the LLM parallelism (Po=1, Pci=32, Pco=32).

Run with::

    REPRO_PROFILE=smoke python examples/llm_reasoning.py
"""

from repro.data import ZCSR_TASK_NAMES
from repro.experiments import (
    evaluate_zcsr,
    get_profile,
    pretrain_llama,
    quantized_llama,
    table4,
)


def main():
    profile = get_profile()
    print(f"profile: {profile.name}\n")

    print("pretraining the causal LM on the synthetic chain corpus...")
    teacher = pretrain_llama(profile)
    tasks = list(ZCSR_TASK_NAMES)
    float_scores = evaluate_zcsr(teacher, tasks, profile.zcsr_examples)

    print("QAT-quantizing: W8A8 baseline and INT8 APSQ gs=2...")
    baseline = quantized_llama(teacher, "Baseline", profile)
    apsq = quantized_llama(teacher, "gs=2", profile)
    base_scores = evaluate_zcsr(baseline, tasks, profile.zcsr_examples)
    apsq_scores = evaluate_zcsr(apsq, tasks, profile.zcsr_examples)

    print(f"\n{'task':<12} {'float':>7} {'W8A8':>7} {'APSQ gs=2':>10}")
    for task in tasks:
        print(
            f"{task:<12} {100 * float_scores[task]:>6.1f}% "
            f"{100 * base_scores[task]:>6.1f}% {100 * apsq_scores[task]:>9.1f}%"
        )

    mean = lambda d: sum(d.values()) / len(d)
    print(
        f"\nmean: float {100 * mean(float_scores):.1f}%, "
        f"W8A8 {100 * mean(base_scores):.1f}%, APSQ {100 * mean(apsq_scores):.1f}%"
    )

    print("\nLLaMA2-7B energy at seq 4096 (prefill + decode), Table IV:")
    print(table4.format_table(table4.run()))


if __name__ == "__main__":
    main()
