"""NLP scenario: BERT on a GLUE task with APSQ group-size sweep.

Reproduces one row of Table I end-to-end: pretrain a tiny BERT teacher on
the synthetic QNLI task, then QAT-quantize with the W8A8 baseline and
INT8 APSQ at gs = 1..4, printing the accuracy column the paper reports
alongside the per-method energy of the WS accelerator.

Run with::

    REPRO_PROFILE=smoke python examples/nlp_glue_apsq.py   # seconds
    python examples/nlp_glue_apsq.py                       # default: fast
"""

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    bert_base_workload,
    normalized_energy,
)
from repro.experiments import METHOD_NAMES, get_profile, run_glue_task

TASK = "QNLI"


def main():
    profile = get_profile()
    print(f"profile: {profile.name} (set REPRO_PROFILE to change)")
    print(f"task: synthetic {TASK} — pair classification by cross-segment keys\n")

    accuracies = run_glue_task(TASK, profile)

    config = AcceleratorConfig()
    workload = bert_base_workload(128)
    reference = baseline_psum_format(32)

    print(f"{'method':<10} {'accuracy':>9} {'WS energy':>10}")
    for method in METHOD_NAMES:
        if method == "Baseline":
            energy = 1.0
        else:
            gs = int(method[3:])
            energy = normalized_energy(
                workload, config, apsq_psum_format(gs), Dataflow.WS, reference
            )
        print(f"{method:<10} {100 * accuracies[method]:>8.2f}% {energy:>9.2f}x")

    best_gs = max(
        (m for m in METHOD_NAMES if m.startswith("gs=")), key=lambda m: accuracies[m]
    )
    drop = accuracies["Baseline"] - accuracies[best_gs]
    print(
        f"\nbest APSQ setting: {best_gs} "
        f"({100 * drop:+.2f} points vs baseline, ~50% WS energy saved)"
    )


if __name__ == "__main__":
    main()
