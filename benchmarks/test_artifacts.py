"""Artifact pipeline bench: cold-start speed + cross-process bit-equality.

The artifact subsystem exists so a serve worker can cold-start an
endpoint from a compiled artifact instead of seconds of rebuild and
recalibration.  This bench records the rebuild-vs-load cells for every
family in ``benchmarks/results/timings.json`` and gates the speedup the
subsystem exists to deliver (>= 5x on the calibration-heavy SegFormer
endpoint, >= 2x on the small text endpoints whose rebuild is already
cheap).  The smoke test additionally reloads the BERT artifact in a
**fresh interpreter** and asserts bit-equality across the process
boundary — the property multi-process serving stands on.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from conftest import save_result

from repro.serve import (
    bench_artifact_cold_start,
    build_endpoint,
    clear_endpoint_memo,
    raw_output,
)

#: The calibration-heavy conv endpoint must clear the headline gate; the
#: tiny text endpoints rebuild in tens of milliseconds, so their floor is
#: lower (the absolute win is the same few milliseconds of np.load).
GATES = {"bert": 2.0, "llama": 2.0, "segformer": 5.0}


def test_artifact_cold_start_speedup(results_dir, tmp_path):
    reports = {
        family: bench_artifact_cold_start(
            family, registry_root=tmp_path / "registry", repeats=3
        )
        for family in GATES
    }
    lines = ["repro.artifacts — endpoint cold-start: rebuild+recalibrate vs load"]
    for family, report in reports.items():
        lines.append(
            f"{family:<10} rebuild={report['t_rebuild_s'] * 1e3:7.1f} ms  "
            f"load={report['t_load_s'] * 1e3:6.1f} ms  "
            f"speedup={report['speedup']:.1f}x (gate >= {GATES[family]:.0f}x)"
        )
    save_result(results_dir, "artifact_cold_start", "\n".join(lines))
    # bench_artifact_cold_start already asserted the loaded endpoint is
    # bit-identical to the rebuilt one before reporting any number.
    for family, report in reports.items():
        assert report["speedup"] >= GATES[family], (
            f"{family}: artifact load only {report['speedup']:.1f}x faster than "
            f"rebuild (gate {GATES[family]:.0f}x)"
        )


def _response_sha(endpoint, seed=0):
    request = endpoint.synth_request(np.random.default_rng(seed))
    bits = raw_output(endpoint.serve_one(request))
    return hashlib.sha256(np.ascontiguousarray(bits).tobytes()).hexdigest()


@pytest.mark.smoke
def test_artifact_fresh_process_bit_equality(tmp_path):
    """Cold-cache smoke (run by the CI smoke job).

    Compiles the BERT endpoint to an artifact from a cold endpoint memo,
    loads it back in a *fresh interpreter*, serves the deterministic
    synthetic request in both processes, and asserts the response bytes
    hash identically — the portability property process-level serve
    workers are built on.
    """
    clear_endpoint_memo()
    from repro.artifacts import ArtifactRegistry, compile_into

    registry = ArtifactRegistry(tmp_path / "registry")
    path = compile_into(registry, "bert")
    local_sha = _response_sha(build_endpoint("bert"))

    src_root = Path(__file__).resolve().parent.parent / "src"
    script = (
        "import hashlib, numpy as np\n"
        "from repro.artifacts import load_endpoint\n"
        f"endpoint = load_endpoint({str(path)!r})\n"
        "request = endpoint.synth_request(np.random.default_rng(0))\n"
        "bits = endpoint.serve_one(request).logits\n"
        "print(hashlib.sha256(np.ascontiguousarray(bits).tobytes()).hexdigest())\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src_root)},
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    remote_sha = completed.stdout.strip().splitlines()[-1]
    assert remote_sha == local_sha, (
        "artifact-loaded endpoint in a fresh process served different bits "
        f"({remote_sha[:12]} != {local_sha[:12]})"
    )
