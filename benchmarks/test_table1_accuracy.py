"""Table I bench: Baseline vs APSQ (gs=1..4) accuracy across models/tasks.

Paper shape: gs=1 (pure APSQ) loses the most accuracy; grouping (gs >= 2)
recovers toward the W8A8 baseline; the best gs is task-dependent.  Runs
under the REPRO_PROFILE effort profile (default "fast") with metric
caching, so repeated invocations are cheap.
"""

from conftest import save_result

from repro.experiments import get_profile, table1


def test_table1_accuracy(benchmark, results_dir):
    profile = get_profile()
    rows = benchmark.pedantic(
        lambda: table1.run(profile=profile), rounds=1, iterations=1
    )
    save_result(results_dir, "table1_accuracy", table1.render(rows))

    assert len(rows) == 8  # 6 GLUE + 2 segmentation rows
    for name, row in rows.items():
        assert set(row) == {"Baseline", "gs=1", "gs=2", "gs=3", "gs=4"}
        for value in row.values():
            assert -1.0 <= value <= 1.0

    # Aggregate shape: grouping recovers accuracy lost by pure APSQ.
    mean = lambda key: sum(r[key] for r in rows.values()) / len(rows)
    best_gs_mean = sum(
        max(r[f"gs={g}"] for g in (2, 3, 4)) for r in rows.values()
    ) / len(rows)
    assert best_gs_mean >= mean("gs=1") - 0.02
    # Best-gs APSQ lands near the baseline (paper: <1 point mean drop).
    assert mean("Baseline") - best_gs_mean < 0.08
