"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure.  Formatted outputs are
written to ``benchmarks/results/`` so a plain ``pytest benchmarks/
--benchmark-only`` leaves the reproduced artefacts on disk.

Accuracy benchmarks honour ``REPRO_PROFILE`` (smoke/fast/full; default
fast) and reuse ``.repro_cache`` across runs.

All benchmark tests are registered under the ``slow`` marker, so quick
local loops can deselect them with ``-m "not slow"`` (CI's tier-1 job
runs the full suite — the benchmarks replay the committed cache).  The
harness also emits wall-clock timings to
``benchmarks/results/timings.json`` (schema 2, see
:mod:`repro.experiments.timings`):

- one entry per benchmark test (``tests``), and
- one median per timed cell key (``cells``), drained from the parallel
  executor — the per-(experiment, task, method) trajectory that makes
  perf regressions visible run over run.

Keys are sorted and durations carry fixed rounding, so re-runs only touch
lines whose timing genuinely moved.  ``python -m repro timings --check``
compares a fresh run against the committed file.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
_TEST_TIMINGS: dict = {}


def pytest_collection_modifyitems(config, items):
    """Mark every test under benchmarks/ as slow."""
    bench_dir = Path(__file__).parent.resolve()
    for item in items:
        try:
            in_benchmarks = bench_dir in Path(str(item.fspath)).resolve().parents
        except OSError:
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    _TEST_TIMINGS[item.nodeid] = round(time.perf_counter() - start, 6)


def pytest_sessionfinish(session, exitstatus):
    """Write per-test and per-cell wall-clock timings for this run."""
    if not _TEST_TIMINGS:
        return
    try:
        from repro.experiments.executor import drain_cell_timings
        from repro.experiments.timings import build_payload, write_payload

        cells = drain_cell_timings()
    except ImportError:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = build_payload(_TEST_TIMINGS, cells)
    write_payload(RESULTS_DIR / "timings.json", payload)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
