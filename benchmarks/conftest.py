"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure.  Formatted outputs are
written to ``benchmarks/results/`` so a plain ``pytest benchmarks/
--benchmark-only`` leaves the reproduced artefacts on disk.

Accuracy benchmarks honour ``REPRO_PROFILE`` (smoke/fast/full; default
fast) and reuse ``.repro_cache`` across runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
