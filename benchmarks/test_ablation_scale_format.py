"""Ablation bench: power-of-two vs free learnable quantizer scales.

The paper constrains PSUM scales to powers of two so the RAE can rescale
with shifters.  This ablation quantifies the cost: after identical LSQ
training, the po2-constrained quantizer's reconstruction MSE should be
close to (within ~2x of) the free-scale quantizer's.
"""

import numpy as np
from conftest import save_result

from repro.optim import SGD
from repro.quant import INT8, LSQQuantizer
from repro.tensor import Tensor, manual_seed


def train_quantizer(po2: bool, steps: int = 80, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(1024,)) * 2.7  # deliberately off-po2 spread
    q = LSQQuantizer(INT8, po2_scale=po2)
    q(Tensor(data))  # init
    opt = SGD([q.scale], lr=0.02)
    for _ in range(steps):
        opt.zero_grad()
        x = Tensor(data, requires_grad=True)
        loss = ((q(x) - Tensor(data)) ** 2).mean()
        loss.backward()
        opt.step()
    return float(((q(Tensor(data)).data - data) ** 2).mean())


def run_ablation() -> dict:
    manual_seed(0)
    results = {}
    for seed in range(5):
        results[seed] = {
            "free": train_quantizer(po2=False, seed=seed),
            "po2": train_quantizer(po2=True, seed=seed),
        }
    return results


def test_ablation_scale_format(benchmark, results_dir):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    free = np.mean([r["free"] for r in results.values()])
    po2 = np.mean([r["po2"] for r in results.values()])
    text = (
        "Ablation — quantizer scale format (reconstruction MSE after LSQ)\n"
        f"free scale: {free:.6f}\n"
        f"po2  scale: {po2:.6f}\n"
        f"po2 / free: {po2 / free:.3f}x"
    )
    save_result(results_dir, "ablation_scale_format", text)

    # Shift-friendly scales cost little accuracy: bounded overhead.
    assert po2 < 2.5 * free
    assert po2 >= free * 0.8  # sanity: free scale can't be much worse
