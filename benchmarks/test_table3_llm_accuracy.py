"""Table III bench: LLaMA zero-shot reasoning accuracy, Baseline vs APSQ.

Paper shape: small average drop at the best gs (0.59 points in the paper);
harder tasks (Arc-c, OBQA) sit well below the easy ones (BoolQ, PIQA).
"""

from conftest import save_result

from repro.experiments import get_profile, table3


def test_table3_llm_accuracy(benchmark, results_dir):
    profile = get_profile()
    rows = benchmark.pedantic(
        lambda: table3.run(profile=profile), rounds=1, iterations=1
    )
    save_result(results_dir, "table3_llm_accuracy", table3.render(rows))

    assert len(rows) == 7
    for row in rows.values():
        for value in row.values():
            assert 0.0 <= value <= 1.0

    # Difficulty spread mirrors the paper: easy tasks beat hard ones.
    easy = (rows["BoolQ"]["Baseline"] + rows["PIQA"]["Baseline"]) / 2
    hard = (rows["Arc-c"]["Baseline"] + rows["OBQA"]["Baseline"]) / 2
    assert easy > hard

    # Best-gs APSQ stays close to the baseline on average.
    drop = table3.summarize(rows)
    assert drop < 0.10
