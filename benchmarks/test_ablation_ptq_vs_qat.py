"""Extension bench: what does QAT + distillation buy over PTQ?

The paper trains APSQ models with QAT guided by a float teacher
(Sec. IV-A).  This ablation quantizes the same float QNLI teacher two
ways — min-max PTQ calibration only, vs QAT fine-tuning — at gs=1 (the
most quantization-stressed setting) and gs=2.
"""

import numpy as np
from conftest import save_result

from repro import nn
from repro.data import make_glue_task
from repro.experiments import get_profile
from repro.models import BertConfig, BertTiny
from repro.quant import (
    QATConfig,
    QATTrainer,
    apsq_config,
    evaluate,
    ptq_quantize,
    quantize_model,
)
from repro.tensor import manual_seed


def run_comparison() -> dict:
    profile = get_profile()
    task = make_glue_task("QNLI", n_train=profile.bert_train, n_eval=profile.bert_eval)
    manual_seed(0)
    teacher = BertTiny(BertConfig(num_classes=2))
    QATTrainer(
        teacher,
        nn.cross_entropy,
        config=QATConfig(epochs=profile.bert_pretrain_epochs, lr=profile.pretrain_lr),
    ).fit(task.train_x, task.train_y)

    results = {"float teacher": evaluate(teacher, task.eval_x, task.eval_y, task.metric_fn)}
    for gs in (1, 2):
        for method in ("ptq", "qat"):
            manual_seed(1)
            student = quantize_model(
                BertTiny(BertConfig(num_classes=2)), apsq_config(gs=gs, pci=8)
            )
            student.load_state_dict(teacher.state_dict(), strict=False)
            if method == "ptq":
                ptq_quantize(student, [task.train_x[:64]])
            else:
                QATTrainer(
                    student,
                    nn.cross_entropy,
                    teacher=teacher,
                    config=QATConfig(epochs=profile.bert_qat_epochs, lr=profile.qat_lr),
                ).fit(task.train_x, task.train_y)
            results[f"{method} gs={gs}"] = evaluate(
                student, task.eval_x, task.eval_y, task.metric_fn
            )
    return results


def test_ablation_ptq_vs_qat(benchmark, results_dir):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    lines = ["Extension — PTQ (min-max calibration) vs QAT (LSQ + distillation), QNLI"]
    for key, value in results.items():
        lines.append(f"{key:<16} {100 * value:.2f}%")
    save_result(results_dir, "ablation_ptq_vs_qat", "\n".join(lines))

    # Both paths beat chance; QAT is at least as good as PTQ on average.
    for key, value in results.items():
        assert value > 0.5, key
    qat_mean = np.mean([results["qat gs=1"], results["qat gs=2"]])
    ptq_mean = np.mean([results["ptq gs=1"], results["ptq gs=2"]])
    assert qat_mean >= ptq_mean - 0.03
