"""RAE integer-path bench: batched engine vs the scalar per-row oracle.

The hardware-equivalence experiments execute quantized layers integer-only
through the RAE simulator.  Before the batched datapath, the runner spun
up a fresh Python engine per output row; this bench records the
batched-vs-scalar wall-clock per cell in ``benchmarks/results/timings.json``
and gates the speedup the refactor exists to deliver (≥ 5× on a 64-row
layer — in practice it is far larger).
"""

import time

import numpy as np
import pytest

from conftest import save_result

from repro import nn
from repro.experiments.executor import record_cell_timing
from repro.models import BertConfig, BertTiny, SegformerConfig, SegformerTiny
from repro.quant import PsumQuantizedLinear, apsq_config, quantize_model
from repro.rae import (
    IntegerExecutionPlan,
    IntegerGemmRunner,
    capture_layer_inputs,
    reference_apsq_reduce,
    verify_against_per_layer,
)
from repro.tensor import Tensor, manual_seed

ROWS = 64
IN_FEATURES = 256
OUT_FEATURES = 32
GS = 2


def make_calibrated_layer(gs=GS, in_features=IN_FEATURES, out_features=OUT_FEATURES):
    manual_seed(0)
    layer = PsumQuantizedLinear(
        nn.Linear(in_features, out_features), apsq_config(gs=gs, pci=8)
    )
    rng = np.random.default_rng(0)
    layer(Tensor(rng.normal(size=(16, in_features))))  # calibrate quantizers
    layer.act_quantizer.scale.data = np.array(2.0**-4)
    layer.weight_quantizer.scale.data = np.array(2.0**-5)
    for i, q in enumerate(layer.accumulator.quantizers):
        q.scale.data = np.array(2.0 ** (-6 + (i % 2)))
    return layer


def scalar_oracle_rows(tiles, exponents, gs):
    """The pre-batching datapath: one scalar Algorithm 1 walk per row."""
    stacked = np.stack(tiles)  # (num_tiles, N, Co)
    rows = stacked.shape[1]
    out = np.empty((rows, stacked.shape[2]), dtype=np.int64)
    exp = exponents[-1]
    for row in range(rows):
        codes, exp = reference_apsq_reduce(list(stacked[:, row]), exponents, gs=gs)
        out[row] = codes
    return out, exp


def best_of(fn, repeats):
    """Minimum wall-clock over ``repeats`` runs (robust to CI scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_rae_integer_path_batched_speedup(results_dir):
    layer = make_calibrated_layer()
    runner = IntegerGemmRunner(layer, requant="shift")
    rng = np.random.default_rng(1)
    x = rng.normal(size=(ROWS, IN_FEATURES)) * 0.5
    tiles, _ = runner.integer_tiles(x)
    stacked = np.stack(tiles)  # (num_tiles, ROWS, Co)
    exponents = list(runner.plan.exponents)

    # Symmetric measurement — both sides time only the Algorithm 1
    # reduction (no GEMM/quantize overhead on either) and take the best of
    # several repeats so one scheduler stall cannot fail the CI gate.
    runner.engine.reduce_batch(stacked, exponents)  # warm banks + schedule
    (batched, t_batched) = best_of(
        lambda: runner.engine.reduce_batch(stacked, exponents), repeats=5
    )
    ((oracle_codes, oracle_exp), t_scalar) = best_of(
        lambda: scalar_oracle_rows(tiles, exponents, GS), repeats=3
    )

    # Bit-equality first: speed means nothing if the datapath drifted.
    codes, exp = batched
    assert exp == oracle_exp
    assert np.array_equal(codes, oracle_codes)
    batched_out = runner.run(x)
    np.testing.assert_allclose(
        batched_out - (layer.bias.data if layer.bias is not None else 0.0),
        codes.astype(np.float64)
        * (2.0**exp)
        * (runner.plan.alphas[-1] / 2.0 ** runner.plan.exponents[-1]),
    )

    # Both cells are genuine wall-clock durations; the (dimensionless)
    # speedup is derivable from them and lives in the saved report text.
    speedup = t_scalar / max(t_batched, 1e-9)
    record_cell_timing(f"rae_integer/{ROWS}rows/batched", "rae", t_batched)
    record_cell_timing(f"rae_integer/{ROWS}rows/scalar", "rae", t_scalar)

    save_result(
        results_dir,
        "rae_integer_path",
        "RAE integer path — batched engine vs scalar per-row oracle\n"
        f"layer: {IN_FEATURES}->{OUT_FEATURES}, pci=8 ({layer.num_tiles} tiles), "
        f"gs={GS}, rows={ROWS}\n"
        f"scalar  per-row oracle: {t_scalar * 1e3:8.2f} ms\n"
        f"batched reduce_batch:   {t_batched * 1e3:8.2f} ms\n"
        f"speedup: {speedup:.1f}x (gate: >= 5x)",
    )
    assert speedup >= 5.0, f"batched RAE path only {speedup:.1f}x faster"


def make_calibrated_bert(num_layers=8, hidden=64, gs=GS):
    """The fast-profile model-level sign-off workload: a quantized BERT.

    Eight encoder blocks (50 PSUM-quantized layers in 4 reduction-shape
    groups) — closer to the paper's 12-block BERT-Base than a toy stack,
    and deep enough that the per-layer overhead the planner amortizes
    dominates the comparison.
    """
    manual_seed(0)
    config = BertConfig(num_classes=2, num_layers=num_layers, hidden=hidden, max_seq_len=16)
    model = quantize_model(BertTiny(config), apsq_config(gs=gs, pci=8))
    tokens = np.random.default_rng(0).integers(0, config.vocab_size, size=(1, 8))
    model(tokens)  # calibrate every quantizer
    model.eval()
    return model, tokens


def test_planner_model_speedup(results_dir):
    """Model-wide planner vs per-layer runners on the BERT sign-off.

    The pre-planner hardware-equivalence drive built one
    ``IntegerGemmRunner`` per layer per sweep — re-quantizing weight codes,
    recomputing scale plans and constructing a fresh engine (four PSUM-bank
    allocations) every time.  The planner replaces that with one batched
    ``reduce_batch`` per reduction shape over shared engines and cached
    weight codes; this bench records both wall-clocks and gates the ≥3×
    the subsystem exists to deliver.
    """
    model, tokens = make_calibrated_bert()
    plan = IntegerExecutionPlan.from_model(model)
    inputs = capture_layer_inputs(model, plan.layer_names, tokens)
    flat = {n: x.reshape(-1, x.shape[-1]) for n, x in inputs.items()}

    def per_layer():
        return {
            n: IntegerGemmRunner(model.get_submodule(n)).run(flat[n])
            for n in plan.layer_names
        }

    def planner():
        return plan.run_model(inputs)

    # Warm both sides (schedule cache, planner weight codes), then check
    # bit-equality before timing — speed means nothing if the paths drift.
    planner_out = planner()
    per_layer_out = per_layer()
    for name in plan.layer_names:
        reference = per_layer_out[name]
        assert np.array_equal(planner_out[name].reshape(reference.shape), reference)

    (_, t_planner) = best_of(planner, repeats=7)
    (_, t_per_layer) = best_of(per_layer, repeats=3)

    speedup = t_per_layer / max(t_planner, 1e-9)
    record_cell_timing("rae_integer/model/planner", "rae", t_planner)
    record_cell_timing("rae_integer/model/per_layer", "rae", t_per_layer)

    save_result(
        results_dir,
        "rae_planner_model",
        "RAE model-level hardware equivalence — planner vs per-layer runners\n"
        f"model: quantized BertTiny, {len(plan.layer_names)} PSUM layers in "
        f"{len(plan.groups)} reduction-shape groups, gs={GS}\n"
        f"per-layer runners: {t_per_layer * 1e3:8.2f} ms\n"
        f"planner run_model: {t_planner * 1e3:8.2f} ms\n"
        f"speedup: {speedup:.1f}x (gate: >= 3x)",
    )
    assert speedup >= 3.0, f"planner model pass only {speedup:.1f}x faster"


def make_calibrated_segformer(image_size=16, batch=2):
    """The conv-heavy planner sign-off workload: a quantized SegFormer.

    Overlapped patch embeddings execute as tiled ``PsumQuantizedConv2d``
    layers (integer im2col through the planner), alongside the attention
    and mix-FFN linears — the conv model the PR-3 "Partial" item wanted
    wired into the gate.
    """
    manual_seed(0)
    config = SegformerConfig()
    model = quantize_model(SegformerTiny(config), apsq_config(gs=GS, pci=8))
    rng = np.random.default_rng(0)
    images = Tensor(rng.normal(size=(batch, config.in_channels, image_size, image_size)))
    model(images)  # calibrate every quantizer
    model.eval()
    return model, images


def test_planner_conv_model_speedup(results_dir):
    """Model-wide planner vs per-layer plans on the SegFormer sign-off.

    Same discipline as the BERT gate, on a model whose patch embeddings
    are tiled convolutions: bit-equality of the grouped pass against
    fresh single-layer plans first, then the wall-clock gate.  The
    per-layer side rebuilds its plan per sweep (the pre-planner cost
    model); the planner side reuses pinned, version-checked caches —
    including the activation-code cache that makes repeated sweeps of
    the same captured inputs skip quantize+im2col entirely.
    """
    model, images = make_calibrated_segformer()
    plan = IntegerExecutionPlan.from_model(model)
    conv_layers = [n for n in plan.layer_names if plan.entry(n).kind == "conv"]
    assert conv_layers, "SegFormer must contribute conv layers to the plan"
    inputs = capture_layer_inputs(model, plan.layer_names, images)

    def per_layer():
        return {
            n: IntegerExecutionPlan([(n, plan.entry(n).layer)]).run_layer(n, inputs[n])
            for n in plan.layer_names
        }

    def planner():
        return plan.run_model(inputs)

    planner_out = planner()
    per_layer_out = per_layer()
    for name in plan.layer_names:
        assert np.array_equal(planner_out[name], per_layer_out[name]), name

    (_, t_planner) = best_of(planner, repeats=5)
    (_, t_per_layer) = best_of(per_layer, repeats=3)

    speedup = t_per_layer / max(t_planner, 1e-9)
    record_cell_timing("rae_integer/segformer/planner", "rae", t_planner)
    record_cell_timing("rae_integer/segformer/per_layer", "rae", t_per_layer)

    save_result(
        results_dir,
        "rae_planner_conv_model",
        "RAE conv-model hardware equivalence — planner vs per-layer plans\n"
        f"model: quantized SegformerTiny, {len(plan.layer_names)} PSUM layers "
        f"({len(conv_layers)} conv) in {len(plan.groups)} reduction-shape groups, "
        f"gs={GS}\n"
        f"per-layer plans:   {t_per_layer * 1e3:8.2f} ms\n"
        f"planner run_model: {t_planner * 1e3:8.2f} ms\n"
        f"speedup: {speedup:.1f}x (gate: >= 1.5x)",
    )
    # Measured 1.8-2.6x depending on suite context; the gate leaves CI
    # headroom while still proving the shared-plan path wins on convs.
    assert speedup >= 1.5, f"planner conv-model pass only {speedup:.1f}x faster"


@pytest.mark.smoke
def test_planner_conv_model_equality_smoke():
    """Cold-cache conv-model equality check (run by the CI smoke job).

    Builds the planner over a SegFormer from scratch — patch-embedding
    convolutions included — and verifies the grouped integer pass
    bit-for-bit against per-layer execution.
    """
    model, images = make_calibrated_segformer(image_size=8, batch=1)
    plan = IntegerExecutionPlan.from_model(model)
    assert any(plan.entry(n).kind == "conv" for n in plan.layer_names)
    results = verify_against_per_layer(model, images)
    assert set(results) == set(plan.layer_names)
    assert all(results.values()), [n for n, ok in results.items() if not ok]


@pytest.mark.smoke
def test_planner_model_equality_smoke():
    """Cold-cache model-level equality check (run by the CI smoke job).

    Builds the planner over the small BERT config from scratch and checks
    one grouped integer pass bit-for-bit against per-layer runners.
    """
    model, tokens = make_calibrated_bert(num_layers=2)
    plan = IntegerExecutionPlan.from_model(model)
    assert len(plan.groups) >= 2  # several shapes share engines
    results = verify_against_per_layer(model, tokens)
    assert set(results) == set(plan.layer_names)
    assert all(results.values()), [n for n, ok in results.items() if not ok]


@pytest.mark.smoke
@pytest.mark.parametrize("gs", [1, 2, 3, 4])
def test_batched_equality_smoke(gs):
    """One cold batched-equality check per gs (run by the CI smoke job)."""
    rng = np.random.default_rng(gs)
    tiles = rng.integers(-20_000, 20_000, size=(7, 5, 16))
    exponents = list(rng.integers(4, 9, size=7))
    from repro.rae import RAEngine

    engine = RAEngine(gs=gs, lanes=16)
    codes, exp = engine.reduce_batch(tiles, exponents)
    for row in range(5):
        ref, ref_exp = reference_apsq_reduce(list(tiles[:, row]), exponents, gs=gs)
        assert exp == ref_exp
        assert np.array_equal(codes[row], ref)
