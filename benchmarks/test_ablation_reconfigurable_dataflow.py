"""Extension bench: per-layer dataflow selection (Tu et al. [16] style).

The paper fixes one dataflow per experiment; its introduction argues the
best dataflow depends on layer configuration.  This bench quantifies that:
a reconfigurable accelerator picking the cheapest of IS/WS/OS per layer
vs each fixed dataflow, with INT32 PSUMs and with INT8 APSQ — showing
APSQ also shifts *which* dataflow wins.
"""

from conftest import save_result

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    bert_base_workload,
    dataflow_histogram,
    efficientvit_b1_workload,
    model_energy,
    reconfigurable_model_energy,
    segformer_b0_workload,
)

MODELS = {
    "BERT-Base": bert_base_workload,
    "Segformer-B0": segformer_b0_workload,
    "EfficientViT-B1": efficientvit_b1_workload,
}


def run_comparison() -> dict:
    config = AcceleratorConfig()
    results = {}
    for name, workload_fn in MODELS.items():
        workload = workload_fn()
        for fmt_name, fmt in (
            ("INT32", baseline_psum_format(32)),
            ("APSQ gs=2", apsq_psum_format(2)),
        ):
            fixed = {
                df.name: model_energy(workload, config, fmt, df).total for df in Dataflow
            }
            reconf, choices = reconfigurable_model_energy(workload, config, fmt)
            results[f"{name}/{fmt_name}"] = {
                **fixed,
                "reconfigurable": reconf.total,
                "histogram": dataflow_histogram(choices),
            }
    return results


def test_ablation_reconfigurable_dataflow(benchmark, results_dir):
    results = benchmark(run_comparison)

    lines = ["Extension — reconfigurable vs fixed dataflow (total energy, pJ)"]
    lines.append(
        f"{'model/psum':<26} {'IS':>12} {'WS':>12} {'OS':>12} {'reconf':>12}  best-per-layer"
    )
    for key, row in results.items():
        lines.append(
            f"{key:<26} {row['IS']:>12.3e} {row['WS']:>12.3e} {row['OS']:>12.3e} "
            f"{row['reconfigurable']:>12.3e}  {row['histogram']}"
        )
    save_result(results_dir, "ablation_reconfigurable_dataflow", "\n".join(lines))

    for key, row in results.items():
        best_fixed = min(row["IS"], row["WS"], row["OS"])
        assert row["reconfigurable"] <= best_fixed + 1e-6, key
    # For at least one model the mix beats every fixed dataflow strictly.
    assert any(
        row["reconfigurable"] < min(row["IS"], row["WS"], row["OS"]) * 0.999
        for row in results.values()
    )
