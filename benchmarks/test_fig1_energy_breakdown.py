"""Fig. 1 bench: energy breakdown of IS/WS/OS vs PSUM bitwidth (BERT-Base).

Paper shape: PSUM share rises with bitwidth, is larger for WS than IS
(up to 69% at INT32), and OS is insensitive to PSUM precision.
"""

from conftest import save_result

from repro.experiments import fig1


def test_fig1_energy_breakdown(benchmark, results_dir):
    results = benchmark(fig1.run)
    save_result(results_dir, "fig1_energy_breakdown", fig1.format_table(results))

    # WS PSUM share dominates at INT32 and decays with precision.
    assert results["WS/32"]["psum_share"] > 0.5
    assert results["WS/32"]["psum_share"] > results["WS/16"]["psum_share"]
    assert results["WS/16"]["psum_share"] > results["WS/8"]["psum_share"]
    assert results["IS/32"]["psum_share"] > results["IS/8"]["psum_share"]
    # WS is more PSUM-bound than IS; OS has no PSUM traffic at all.
    assert results["WS/32"]["psum_share"] > results["IS/32"]["psum_share"]
    for bits in (8, 16, 32):
        assert results[f"OS/{bits}"]["psum_share"] == 0.0
