#!/usr/bin/env python
"""Fail when hot-path cells of ``timings.json`` regressed over the baseline.

Thin CLI over :mod:`repro.experiments.timings`: compares the current
``benchmarks/results/timings.json`` (e.g. freshly rewritten by a
``pytest benchmarks/`` run) against the committed baseline from git —
or an explicit ``--baseline`` file — and exits non-zero when any cell
that took ≥ 5 ms in the baseline got slower than ``--threshold``× (1.5×
by default).  ``python -m repro timings --check`` is the same check.

Usage:
    PYTHONPATH=src python benchmarks/check_regressions.py
    PYTHONPATH=src python benchmarks/check_regressions.py --threshold 2.0 \
        --baseline old_timings.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.experiments.timings import DEFAULT_THRESHOLD, TIMINGS_PATH, check_timings

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--current",
        type=Path,
        default=Path(__file__).resolve().parent / "results" / "timings.json",
        help="timings payload to check (default: benchmarks/results/timings.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline payload (default: committed {TIMINGS_PATH} from git)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fail when current/baseline exceeds this ratio (default 1.5)",
    )
    args = parser.parse_args(argv)
    return check_timings(
        current_path=args.current, baseline_path=args.baseline, threshold=args.threshold
    )


if __name__ == "__main__":
    sys.exit(main())
