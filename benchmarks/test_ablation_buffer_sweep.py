"""Ablation bench: WS energy crossover vs output-buffer size.

DESIGN.md: the gs-dependent energy cliff of Fig. 6b is a *capacity*
effect.  Sweeping the ofmap buffer moves the gs at which the grouped PSUM
working set spills — doubling the buffer should push the Segformer
crossover from gs=3 out past gs=4, halving it should pull it to gs=2.
"""

from conftest import save_result

from repro.accelerator import (
    KIB,
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    model_energy,
    segformer_b0_workload,
)


def crossover_gs(ofmap_kib: int) -> dict:
    """Normalized + absolute WS energy per gs at an output-buffer size."""
    config = AcceleratorConfig(ofmap_buffer=ofmap_kib * KIB)
    workload = segformer_b0_workload(512)
    base = model_energy(workload, config, baseline_psum_format(32), Dataflow.WS).total
    row = {}
    for gs in (1, 2, 3, 4):
        absolute = model_energy(workload, config, apsq_psum_format(gs), Dataflow.WS).total
        row[gs] = absolute / base
        row[f"abs{gs}"] = absolute
    return row


def run_sweep() -> dict:
    return {kib: crossover_gs(kib) for kib in (64, 128, 256, 512, 1024)}


def test_ablation_buffer_sweep(benchmark, results_dir):
    results = benchmark(run_sweep)

    lines = ["Ablation — Segformer-B0 WS normalized energy vs ofmap buffer"]
    lines.append(f"{'buffer':>8} " + " ".join(f"{'gs=' + str(g):>8}" for g in (1, 2, 3, 4)))
    for kib, row in results.items():
        lines.append(f"{kib:>6}KB " + " ".join(f"{row[g]:>8.3f}" for g in (1, 2, 3, 4)))
    save_result(results_dir, "ablation_buffer_sweep", "\n".join(lines))

    # Paper configuration (256 KB): crossover between gs=2 and gs=3.
    assert results[256][2] < results[256][3]
    # Double buffer: gs=4 now fits -> no cliff.
    assert abs(results[1024][4] - results[1024][1]) < 1e-9
    # Tiny buffer: even gs=1 spills — higher *absolute* APSQ energy.
    assert results[64]["abs1"] > results[256]["abs1"]
    # Larger buffers never increase absolute energy at fixed gs
    # (normalized ratios are non-monotone because the baseline moves too).
    for gs in (1, 2, 3, 4):
        series = [results[k][f"abs{gs}"] for k in (64, 128, 256, 512, 1024)]
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))
