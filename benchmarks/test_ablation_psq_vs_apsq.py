"""Ablation bench: accumulation error of BASELINE vs PSQ vs APSQ.

DESIGN.md calls out the choice of *additive* quantization over the prior
ReRAM-style PSQ [19, 20].  This ablation measures the numeric error each
scheme adds over exact accumulation, across reduction depths — APSQ with
grouping must beat pure APSQ (gs=1), and PSQ's independent-rounding error
must grow with the tile count.
"""

import numpy as np
from conftest import save_result

from repro.quant import PsumMode, PsumQuantConfig, TiledPsumAccumulator, apsq_config
from repro.tensor import Tensor, manual_seed


def accumulation_errors(np_tiles: int, trials: int = 12) -> dict:
    """Mean relative error vs exact sum for each PSUM handling scheme."""
    errors = {"psq": [], "apsq_gs1": [], "apsq_gs4": [], "psq_abs": []}
    for trial in range(trials):
        rng = np.random.default_rng(trial * 31 + np_tiles)
        tiles = [Tensor(rng.normal(size=(8, 8))) for _ in range(np_tiles)]
        exact = sum(t.data for t in tiles)
        scale = np.abs(exact).mean() + 1e-12

        configs = {
            "psq": PsumQuantConfig(mode=PsumMode.PSQ),
            "apsq_gs1": apsq_config(gs=1),
            "apsq_gs4": apsq_config(gs=4),
        }
        for key, cfg in configs.items():
            acc = TiledPsumAccumulator(np_tiles, cfg)
            out = acc(tiles)
            abs_err = np.abs(out.data - exact).mean()
            errors[key].append(abs_err / scale)
            if key == "psq":
                errors["psq_abs"].append(abs_err)
    return {k: float(np.mean(v)) for k, v in errors.items()}


def run_ablation() -> dict:
    manual_seed(0)
    return {np_tiles: accumulation_errors(np_tiles) for np_tiles in (2, 4, 8, 16)}


def test_ablation_psq_vs_apsq(benchmark, results_dir):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = ["Ablation — accumulation error vs exact sum (mean relative)"]
    lines.append(f"{'np':>4} {'PSQ':>10} {'APSQ gs=1':>10} {'APSQ gs=4':>10}")
    for np_tiles, errs in results.items():
        lines.append(
            f"{np_tiles:>4} {errs['psq']:>10.4f} {errs['apsq_gs1']:>10.4f} "
            f"{errs['apsq_gs4']:>10.4f}"
        )
    save_result(results_dir, "ablation_psq_vs_apsq", "\n".join(lines))

    for np_tiles, errs in results.items():
        if np_tiles >= 8:
            # Grouping strictly reduces repeated-rounding error at depth.
            assert errs["apsq_gs4"] <= errs["apsq_gs1"] * 1.05
    # PSQ *absolute* error grows with reduction depth (independent
    # roundings add in quadrature; relative error stays flat because the
    # exact sum grows at the same sqrt(np) rate).
    assert results[16]["psq_abs"] > results[2]["psq_abs"]
