"""Extension bench: APSQ on the dynamic attention matmuls.

The A·V contraction depth equals the sequence length, so for LLM-class
sequences the attention context matmul accumulates through hundreds of
PSUM tiles — exactly the regime APSQ targets.  This bench measures the
output error of PSUM-quantized attention vs float attention across
sequence lengths and group sizes (no training; fixed projections).
"""

import numpy as np
from conftest import save_result

from repro import nn
from repro.quant import PsumQuantizedAttention, apsq_config, required_psum_bits
from repro.tensor import Tensor, manual_seed


def attention_error(seq_len: int, gs: int, trials: int = 3) -> float:
    errors = []
    for trial in range(trials):
        manual_seed(trial)
        mha = nn.MultiHeadAttention(16, 4)
        qattn = PsumQuantizedAttention(mha, apsq_config(gs=gs, pci=8))
        rng = np.random.default_rng(trial)
        x = Tensor(rng.normal(size=(1, seq_len, 16)) * 0.5)
        ref = mha(x).data
        out = qattn(x).data
        errors.append(np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-12))
    return float(np.mean(errors))


def run_ablation() -> dict:
    results = {}
    for seq_len in (16, 32, 64):
        results[seq_len] = {
            "overflow_bits": required_psum_bits(seq_len),
            **{f"gs={gs}": attention_error(seq_len, gs) for gs in (1, 4)},
        }
    return results


def test_ablation_attention_apsq(benchmark, results_dir):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = ["Extension — APSQ on attention A·V (relative output error)"]
    lines.append(f"{'seq':>5} {'psum bits':>10} {'gs=1':>9} {'gs=4':>9}")
    for seq_len, row in results.items():
        lines.append(
            f"{seq_len:>5} {row['overflow_bits']:>10} {row['gs=1']:>9.4f} {row['gs=4']:>9.4f}"
        )
    save_result(results_dir, "ablation_attention_apsq", "\n".join(lines))

    for row in results.values():
        # Quantized attention stays within tens of percent of float...
        assert row["gs=1"] < 0.8
        # ...and grouping does not make things worse on average.
        assert row["gs=4"] <= row["gs=1"] * 1.3
    # The exact-accumulator width the paper derives grows with depth.
    assert results[64]["overflow_bits"] > results[16]["overflow_bits"]
