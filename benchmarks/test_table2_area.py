"""Table II bench: synthesized-area accounting for the RAE.

Paper shape: the RAE costs a few percent of the accelerator (3.21% in the
paper) because it replaces the conventional PSUM accumulation path.
"""

from conftest import save_result

from repro.experiments import table2


def test_table2_area(benchmark, results_dir):
    results = benchmark(table2.run)
    save_result(results_dir, "table2_area", table2.format_table(results))

    assert results["RAE"] < 0.1 * results["Baseline DNN Accelerator"]
    assert 1.0 < results["overhead_percent"] < 8.0
    assert (
        results["DNN Accelerator w/ RAE"]
        < results["Baseline DNN Accelerator"] + results["RAE"]
    )
    # The area numbers describe the RAE datapath; the batched functional
    # sign-off must actually gate the artefact, not just annotate it.
    assert results["rae_datapath_ok"] == 1.0
