"""Table IV bench: LLaMA2-7B normalized energy under IS and WS.

Paper shape: IS sees essentially no PSUM benefit (the decode feature map
is a vector); WS INT32 baseline costs an order of magnitude more than
INT8 APSQ (31.7x in the paper), with gs=3/4 giving back part of the win
once the grouped prefill PSUMs spill (8.42x in the paper).
"""

from conftest import save_result

from repro.experiments import table4


def test_table4_llm_energy(benchmark, results_dir):
    results = benchmark(table4.run)
    save_result(results_dir, "table4_llm_energy", table4.format_table(results))

    is_row, ws_row = results["IS"], results["WS"]
    assert 1.0 <= is_row["Baseline"] < 1.2  # paper: 1.02x
    assert all(abs(is_row[f"gs={g}"] - 1.0) < 0.05 for g in (1, 2, 3, 4))

    assert ws_row["Baseline"] > 10  # paper: 31.7x
    assert ws_row["gs=1"] == 1.0
    assert abs(ws_row["gs=2"] - 1.0) < 0.05
    assert 3 < ws_row["gs=3"] < ws_row["Baseline"]  # paper: 8.42x
    assert abs(ws_row["gs=3"] - ws_row["gs=4"]) < 0.05
