"""Fig. 6 bench: normalized energy across gs settings and models (IS/WS).

Paper shape: IS savings are gs-independent; BERT WS saves a uniform ~50%;
the high-resolution CV models save ~85% at small gs but lose part of it
at gs >= 3 when the grouped PSUM working set spills into DRAM.
"""

from conftest import save_result

from repro.experiments import fig6


def test_fig6_energy_vs_gs(benchmark, results_dir):
    results = benchmark(fig6.run)
    save_result(results_dir, "fig6_energy_vs_gs", fig6.format_table(results))

    # IS: savings exist and do not depend on gs.
    for model in ("BERT-Base", "Segformer-B0", "EfficientViT-B1"):
        row = results[f"IS/{model}"]
        gs_vals = [row[f"gs={g}"] for g in (1, 2, 3, 4)]
        assert max(gs_vals) - min(gs_vals) < 1e-9
        assert gs_vals[0] < 0.9

    # BERT WS: uniform ~50% reduction (short token length).
    bert_ws = results["WS/BERT-Base"]
    assert abs(bert_ws["gs=1"] - bert_ws["gs=4"]) < 1e-9
    assert 0.4 < bert_ws["gs=1"] < 0.6

    # CV models under WS: crossover between gs=2 and gs=3.
    for model in ("Segformer-B0", "EfficientViT-B1"):
        row = results[f"WS/{model}"]
        assert row["gs=1"] == row["gs=2"] < row["gs=3"] == row["gs=4"] < 1.0
        assert row["gs=1"] < 0.25  # deep savings while PSUMs fit on-chip
