"""Fig. 5 bench: energy + accuracy across gs for MRPC under WS at
INT4/6/8 PSUM precision.

Paper shape: energy falls with PSUM precision but saturates below INT8
(0.50 / 0.45 / 0.41 for INT8/6/4), while accuracy degrades sharply below
INT8 — making INT8 the technically optimal operating point.
"""

from conftest import save_result

from repro.experiments import fig5, get_profile


def test_fig5_precision_tradeoff(benchmark, results_dir):
    profile = get_profile()
    results = benchmark.pedantic(
        lambda: fig5.run(profile=profile), rounds=1, iterations=1
    )
    save_result(results_dir, "fig5_precision_tradeoff", fig5.format_table(results))

    # Energy: INT4 < INT6 < INT8 < baseline, with shrinking increments.
    e8 = results["INT8/gs=2"]["energy"]
    e6 = results["INT6/gs=2"]["energy"]
    e4 = results["INT4/gs=2"]["energy"]
    assert e4 < e6 < e8 < 1.0
    assert (e8 - e4) < (1.0 - e8)  # savings saturate below INT8 (Fig. 5)

    # Accuracy: INT8 APSQ at the best gs is at least as strong as INT4
    # (up to metric noise of a few eval examples — the sharp sub-INT8
    # accuracy cliff of the full-scale paper is muted at tiny scale).
    best = {
        bits: max(results[f"INT{bits}/gs={g}"]["accuracy"] for g in (1, 2, 3, 4))
        for bits in (4, 6, 8)
    }
    assert best[8] >= best[4] - 0.03
    assert results["Baseline"]["accuracy"] >= best[4] - 0.05
