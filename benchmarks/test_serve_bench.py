"""Serving-layer bench: micro-batched dispatch vs batch-size-1 dispatch.

The serving subsystem exists to amortize the per-pass fixed costs of the
integer datapath (schedule walks, quantize calls, dispatch overhead)
across coalesced requests.  This bench drives the BERT endpoint with the
same byte-identical request burst under both policies, verifies the
responses are bit-identical (speed means nothing if the datapath
drifted), records both wall-clocks as cells in
``benchmarks/results/timings.json``, and gates the >= 3x throughput the
subsystem exists to deliver.
"""

import numpy as np
import pytest

from conftest import save_result

from repro.serve import (
    BatchPolicy,
    EndpointRegistry,
    InferenceService,
    bench_admin_scrape,
    bench_engine_pool,
    bench_generation_decode,
    bench_microbatch_speedup,
    bench_slo_shedding,
    bench_supervised_recovery,
    bench_zero_copy_dataplane,
    build_endpoint,
    clear_endpoint_memo,
    default_registry,
)

GATE_REQUESTS = 96
GATE_MAX_BATCH = 24


def _response_bits(result):
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise AssertionError(f"no raw output on {type(result).__name__}")


def test_serve_microbatch_speedup(results_dir):
    result = bench_microbatch_speedup(
        family="bert",
        requests=GATE_REQUESTS,
        max_batch=GATE_MAX_BATCH,
        workers=1,
        repeats=3,
    )
    save_result(
        results_dir,
        "serve_microbatch",
        "repro.serve — micro-batched vs batch-size-1 dispatch (BERT endpoint)\n"
        f"requests={result['requests']}, max_batch={result['max_batch']}, "
        f"mean coalesced batch {result['mean_coalesced_batch']:.1f}\n"
        f"batch-size-1 dispatch: {result['t_batch1_s'] * 1e3:8.2f} ms "
        f"({result['throughput_batch1_rps']:8.1f} req/s)\n"
        f"micro-batched:         {result['t_microbatch_s'] * 1e3:8.2f} ms "
        f"({result['throughput_microbatch_rps']:8.1f} req/s)\n"
        f"speedup: {result['speedup']:.1f}x (gate: >= 3x)",
    )
    # bench_microbatch_speedup already asserted bit-identity between the
    # two dispatch modes before returning any number.
    assert result["speedup"] >= 3.0, (
        f"micro-batched serving only {result['speedup']:.1f}x faster"
    )


def test_zero_copy_dataplane_speedup(results_dir, tmp_path):
    """The zero-copy dataplane gate: >= 3x pre-PR process-worker throughput.

    Serves the same seeded open-loop Poisson mixed-scenario stream
    (variable-length LLaMA scoring traffic, BERT and SegFormer riding
    along) through artifact-backed process workers twice:

    - **pipe**: the pre-PR dataplane — exact-shape coalescing keys over
      the pickled executor pipe, pinned at its singleton-fragmentation
      operating point (``max_batch=1``), which is what variable-length
      scoring traffic degenerated to before bucketed coalescing existed
      (the process-level analogue of the committed ``batch1`` cells).
    - **shm**: bucketed padded coalescing through the shared-memory
      arena, descriptors-only over the pipe.

    The bench asserts zero lost requests and bit-identity against the
    in-process oracle for every response of every run before reporting;
    this gate then requires >= 3x throughput at equal-or-better p99 and
    lands the ``serve/dataplane/pipe|shm`` cells in ``timings.json``.
    """
    result = bench_zero_copy_dataplane(registry_root=tmp_path / "registry")
    pipe, shm = result["pipe"], result["shm"]
    save_result(
        results_dir,
        "serve_zero_copy_dataplane",
        "repro.serve — zero-copy dataplane vs pre-PR pickle pipe (mixed stream)\n"
        f"requests={result['requests']}, processes={result['processes']}, "
        f"shm mean batch {shm['mean_batch']:.1f}\n"
        f"pipe (pre-PR): {pipe['throughput_rps']:8.1f} req/s  "
        f"p99 {pipe['p99_s'] * 1e3:8.1f} ms\n"
        f"shm (zero-copy): {shm['throughput_rps']:8.1f} req/s  "
        f"p99 {shm['p99_s'] * 1e3:8.1f} ms\n"
        f"speedup: {result['speedup']:.1f}x (gate: >= 3x), "
        f"p99 ratio: {result['p99_ratio']:.2f} (gate: <= 1)",
    )
    assert result["speedup"] >= 3.0, (
        f"zero-copy dataplane only {result['speedup']:.1f}x the pre-PR throughput"
    )
    assert shm["p99_s"] <= pipe["p99_s"], (
        f"zero-copy p99 {shm['p99_s']:.3f}s worse than pre-PR {pipe['p99_s']:.3f}s"
    )


def test_engine_pool_cells(results_dir):
    """Engine-pool concurrency cells: N threads through 1 vs N clones.

    ``bench_engine_pool`` asserts every concurrent response bit-identical
    to the sequential oracle before reporting, then records the
    ``serve/pool/locked|pooled`` cells.  The speedup itself is
    hardware-bound (clone overlap needs idle cores; single-core CI
    measures ~1x), so the gate here is a generous floor that catches a
    pool that *serializes worse* than the single shared engine, not a
    parallelism target.
    """
    result = bench_engine_pool(repeats=3)
    save_result(
        results_dir,
        "serve_engine_pool",
        "repro.serve — engine pool: 4 threads through 1 vs 4 plan clones (LLaMA)\n"
        f"requests={result['requests']}, pool_size={result['pool_size']}\n"
        f"locked (1 clone):  {result['t_locked_s'] * 1e3:8.2f} ms\n"
        f"pooled (4 clones): {result['t_pooled_s'] * 1e3:8.2f} ms\n"
        f"speedup: {result['speedup']:.2f}x (floor: >= 0.5x)",
    )
    assert result["speedup"] >= 0.5, (
        f"engine pool {1 / result['speedup']:.1f}x slower than the shared engine"
    )


def test_slo_shedding_bounded_p99(results_dir):
    """SLO shedding bounds the high-priority tail under 2x overload.

    ``bench_slo_shedding`` calibrates the endpoint's capacity, then
    drives the same seeded open-loop stream at twice that rate with and
    without a per-endpoint SLO budget.  The bench itself asserts full
    outcome accounting (served + shed + rejected == submitted, zero
    silent drops) and bit-identity of every *served* response against
    the in-process oracle; this gate then pins the robustness claim —
    unbounded queueing blows the budget by >= 5x while shedding keeps
    the high tier's p99 inside it — and lands the ``serve/shed/off|on``
    cells in ``timings.json``.
    """
    result = bench_slo_shedding()
    off, on = result["off"], result["on"]
    save_result(
        results_dir,
        "serve_slo_shedding",
        "repro.serve — SLO shedding under 2x open-loop overload (BERT)\n"
        f"requests={result['requests']}, rate={result['rate_hz']:.0f}/s "
        f"(capacity {result['capacity_rps']:.0f}/s), "
        f"budget p99={result['budget_p99_s'] * 1e3:.1f} ms "
        f"depth={result['budget_depth']}\n"
        f"shedding off: p99 {off['p99_s'] * 1e3:8.1f} ms  "
        f"served={off['outcomes']['served']} (gate: >= 5x budget)\n"
        f"shedding on:  high-tier p99 {on['high_p99_s'] * 1e3:8.1f} ms  "
        f"served={on['outcomes']['served']} shed={on['outcomes']['shed']} "
        "(gate: <= budget)",
    )
    assert off["p99_s"] >= 5.0 * result["budget_p99_s"], (
        f"no-shedding baseline p99 {off['p99_s'] * 1e3:.1f} ms is not the "
        f"saturated tail the gate expects (budget {result['budget_p99_s'] * 1e3:.1f} ms)"
    )
    assert on["high_p99_s"] <= result["budget_p99_s"], (
        f"high-priority p99 {on['high_p99_s'] * 1e3:.1f} ms blew the "
        f"{result['budget_p99_s'] * 1e3:.1f} ms budget despite shedding"
    )
    assert on["high_served"] > 0 and on["outcomes"]["shed"] > 0
    assert on["shed_metrics"]["total"] == on["outcomes"]["shed"]


def test_admin_scrape_overhead(results_dir):
    """Scraping the admin plane must not perturb the serving tail.

    ``bench_admin_scrape`` calibrates the BERT endpoint's capacity and
    drives the same seeded open-loop stream at twice that rate bare and
    with the HTTP admin plane mounted — a 1 Hz ``/status`` +
    ``/metrics`` scraper running throughout and span tracing sampling
    every 4th request.  The bench itself asserts zero lost requests,
    bit-identity of every response against the in-process oracle, that
    every scrape answered parseably mid-burst, and that every sampled
    trace carries the complete ordered admit→respond chain; this gate
    then pins the observability claim — the best paired off/scrape run
    shows < 5% p99 perturbation (a systematic overhead would inflate
    every pair; co-tenant noise cannot deflate all of them) — and lands
    the ``serve/admin/off|scrape`` cells in ``timings.json``.
    """
    result = bench_admin_scrape()
    off, scrape = result["off"], result["scrape"]
    save_result(
        results_dir,
        "serve_admin_scrape",
        "repro.serve — admin-plane scrape overhead under 2x overload (BERT)\n"
        f"requests={result['requests']}, rate={result['rate_hz']:.0f}/s "
        f"(capacity {result['capacity_rps']:.0f}/s), "
        f"scrape={result['scrape_hz']:.0f} Hz, "
        f"trace sample={result['trace_sample']}\n"
        f"admin off:    p99 {off['p99_s'] * 1e3:8.1f} ms\n"
        f"admin scrape: p99 {scrape['p99_s'] * 1e3:8.1f} ms  "
        f"scrapes={scrape['scrapes']} traces={scrape['traces']}\n"
        f"best paired p99 ratio: {result['p99_ratio']:.3f} (gate: < 1.05), "
        f"pairs={[f'{r:.3f}' for r in result['pair_ratios']]}",
    )
    assert result["p99_ratio"] <= 1.05, (
        f"admin scrape perturbed p99 by > 5% in every paired run: "
        f"ratios {result['pair_ratios']}"
    )
    assert scrape["scrapes"] >= 1 and scrape["traces"] > 0


def test_supervised_recovery_p99(results_dir, tmp_path):
    """Kill-9 recovery through the supervised fleet stays near steady state.

    Serves the same burst through a supervised pool twice — undisturbed,
    and with a busy worker SIGKILLed mid-burst (in-flight batch replayed,
    victim respawned from its artifact).  The bench itself asserts the
    chaos properties (zero lost requests, responses bit-identical to the
    in-process oracle) before reporting; this gate holds the recovery
    p99 within 2x the steady-state p99 and lands both cells in
    ``timings.json`` (``serve/supervised/steady|recovery``).
    """
    result = bench_supervised_recovery(
        family="bert",
        requests=48,
        nodes=2,
        registry_root=tmp_path / "registry",
        repeats=2,
    )
    save_result(
        results_dir,
        "serve_supervised_recovery",
        "repro.serve — supervised fleet: steady-state vs kill-9 recovery (BERT)\n"
        f"requests={result['requests']}, nodes={result['nodes']}, "
        f"killed={result['killed_node']}\n"
        f"steady p99:   {result['steady_p99_s'] * 1e3:8.2f} ms\n"
        f"recovery p99: {result['recovery_p99_s'] * 1e3:8.2f} ms\n"
        f"ratio: {result['recovery_ratio']:.2f}x (gate: <= 2x)",
    )
    assert result["recovery_ratio"] <= 2.0, (
        f"recovery p99 {result['recovery_ratio']:.2f}x steady-state p99"
    )


@pytest.mark.smoke
def test_supervised_chaos_smoke(tmp_path):
    """Cold-cache supervised chaos smoke (run by the CI chaos job).

    Boots a supervised two-node pool from freshly compiled artifacts,
    SIGKILLs a worker mid-burst, and asserts the chaos property: zero
    lost requests, every response bit-identical to the in-process
    oracle.  ``bench_supervised_recovery`` raises on any violation; one
    repeat keeps the smoke fast.
    """
    clear_endpoint_memo()
    result = bench_supervised_recovery(
        family="bert",
        requests=24,
        nodes=2,
        registry_root=tmp_path / "registry",
        repeats=1,
    )
    assert result["killed_node"] is not None
    assert result["recovery_p99_s"] > 0.0


def test_generation_decode_speedup(results_dir):
    """The KV-cache decode gate: >= 5x full-recompute at context 64.

    ``bench_generation_decode`` generates the same token stream two ways
    — N decode steps against per-sequence caches of quantized codes, and
    N full-context ``next_token_logprobs`` passes over the grown prompts
    — and asserts every step's logprob row bit-identical between them
    *before* timing anything (the :mod:`repro.generate` anchor).  This
    gate then pins the speedup the cache exists to deliver and lands the
    ``generate/recompute|kv_cache`` cells in ``timings.json``, where the
    perf job's ``timings --check`` watches them against the committed
    baseline.

    The gate reads the batched cells (batch 8, the serving operating
    point); the single-sequence figure is reported but ungated — at
    batch 1 the per-call engine overhead is the denominator's floor on
    both sides, so its ratio is hardware-noise-sensitive.
    """
    result = bench_generation_decode(repeats=3)
    single = result["single"]
    save_result(
        results_dir,
        "serve_generation_decode",
        "repro.generate — KV-cache decode vs full-context recompute (LLaMA)\n"
        f"batch={result['batch']}, context={result['context']}, "
        f"steps={result['steps']}\n"
        f"full recompute: {result['t_recompute_s'] * 1e3:8.2f} ms "
        f"({result['tokens_per_s_recompute']:8.1f} tok/s)\n"
        f"kv-cache decode:{result['t_kv_cache_s'] * 1e3:8.2f} ms "
        f"({result['tokens_per_s_kv']:8.1f} tok/s)\n"
        f"speedup: {result['speedup']:.1f}x batched (gate: >= 5x), "
        f"{single['speedup']:.1f}x single-sequence (ungated)",
    )
    # bench_generation_decode already asserted every decode step's
    # logprobs bit-identical to the full-context pass before timing.
    assert result["speedup"] >= 5.0, (
        f"kv-cache decode only {result['speedup']:.1f}x full recompute"
    )


@pytest.mark.smoke
def test_serve_smoke_generation_burst():
    """Cold-cache generation smoke (run by the CI smoke job).

    Boots the generation endpoint from a cold memo and pushes a burst of
    ragged prompts with mixed token budgets through the continuous
    batcher at ``max_batch=4`` — more sequences than slots, so the burst
    interleaves prefill and decode work and sequences join the running
    batch mid-flight.  Every response must be bit-identical (tokens and
    logprob rows) to the fixed-batch single-request oracle: joins change
    which sequences share a step, never their bits.
    """
    clear_endpoint_memo()
    endpoint = build_endpoint("llama-gen")
    registry = EndpointRegistry()
    registry.register(endpoint)
    rng = np.random.default_rng(0)
    burst = [
        endpoint.synth_request(rng, length=int(rng.integers(2, 13)))
        for _ in range(10)
    ]
    with InferenceService(
        registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002), workers=1
    ) as service:
        futures = [service.submit(endpoint.name, request) for request in burst]
        responses = [future.result(120.0) for future in futures]
    stats = endpoint.gen_stats()
    assert stats["prefills"] >= 2, "burst never interleaved prefill batches"
    assert stats["decode_steps"] >= 1
    for request, response in zip(burst, responses):
        oracle = endpoint.serve_one(request)
        assert np.array_equal(response.result.tokens, oracle.tokens), (
            "continuous-batched tokens drifted from the fixed-batch oracle"
        )
        assert np.array_equal(response.result.logprobs, oracle.logprobs), (
            "continuous-batched logprobs drifted from the fixed-batch oracle"
        )
    snapshot = service.metrics.snapshot()
    assert snapshot["completed"] == len(burst)
    assert snapshot["failed"] == 0
    generation = snapshot["endpoints"][endpoint.name]["generation"]
    assert generation["sequences"] == len(burst)


@pytest.mark.smoke
def test_serve_smoke_mixed_burst_determinism():
    """Cold-cache serve smoke (run by the CI smoke job).

    Boots the three-scenario service in-process from a cold endpoint
    memo, pushes a small mixed-scenario burst (BERT endpoint included)
    through two workers, and asserts the determinism invariant: every
    coalesced response is bit-identical to the sequential single-request
    oracle.
    """
    clear_endpoint_memo()
    registry = default_registry()
    rng = np.random.default_rng(0)
    burst = [
        (name, registry.get(name).synth_request(rng))
        for _ in range(3)
        for name in registry.names
    ]
    with InferenceService(
        registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002), workers=2
    ) as service:
        futures = [service.submit(name, request) for name, request in burst]
        responses = [future.result(120.0) for future in futures]
    assert all(response.endpoint == name for (name, _), response in zip(burst, responses))
    for (name, request), response in zip(burst, responses):
        single = registry.get(name).serve_one(request)
        assert np.array_equal(
            _response_bits(response.result), _response_bits(single)
        ), f"endpoint {name}: coalesced response drifted from the sequential oracle"
    snapshot = service.metrics.snapshot()
    assert snapshot["completed"] == len(burst)
    assert snapshot["failed"] == 0
