"""Tests for the Module/Parameter registration system."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


class Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3)
        self.fc2 = nn.Linear(3, 2)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = Toy()
        names = dict(model.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_num_parameters(self):
        model = Toy()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_named_modules(self):
        model = Toy()
        names = [n for n, _ in model.named_modules()]
        assert names == ["", "fc1", "fc2"]

    def test_children(self):
        model = Toy()
        assert len(list(model.children())) == 2

    def test_reassign_module_replaces(self):
        model = Toy()
        model.fc1 = nn.Linear(4, 3, bias=False)
        assert len(list(model.parameters())) == 3

    def test_parameter_is_tensor_with_grad(self):
        p = nn.Parameter(np.ones(3))
        assert isinstance(p, Tensor)
        assert p.requires_grad


class TestModeAndGrad:
    def test_train_eval_propagates(self):
        model = Toy()
        model.eval()
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad(self):
        model = Toy()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None


class TestSurgeryHelpers:
    def test_set_submodule(self):
        model = Toy()
        new = nn.Linear(4, 3)
        model.set_submodule("fc1", new)
        assert model.fc1 is new

    def test_set_submodule_nested(self):
        outer = nn.Sequential(Toy())
        replacement = nn.Linear(3, 2, bias=False)
        outer.set_submodule("0.fc2", replacement)
        assert outer[0].fc2 is replacement

    def test_get_submodule(self):
        model = Toy()
        assert model.get_submodule("fc1") is model.fc1
        assert model.get_submodule("") is model

    def test_apply_visits_all(self):
        model = Toy()
        visited = []
        model.apply(lambda m: visited.append(type(m).__name__))
        assert visited.count("Linear") == 2
        assert visited[-1] == "Toy"


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Toy(), Toy()
        m2.load_state_dict(m1.state_dict())
        x = Tensor(np.ones((1, 4)))
        assert np.allclose(m1(x).data, m2(x).data)

    def test_missing_key_raises(self):
        model = Toy()
        state = model.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            Toy().load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            Toy().load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state

    def test_state_dict_is_copy(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"][:] = 99.0
        assert not np.allclose(model.fc1.weight.data, 99.0)


class TestContainers:
    def test_sequential_forward(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        assert seq(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_sequential_indexing(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Linear(2, 2))
        assert len(seq) == 2
        assert isinstance(seq[1], nn.Linear)

    def test_modulelist_append_and_iter(self):
        ml = nn.ModuleList([nn.Linear(2, 2)])
        ml.append(nn.Linear(2, 3))
        assert len(ml) == 2
        assert ml[-1].out_features == 3
        assert len(list(iter(ml))) == 2

    def test_modulelist_params_registered(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(ml.parameters())) == 4
