"""Tests for attention layers, RoPE, and loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck, manual_seed, softmax


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(3)


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed + sum(shape)).normal(size=shape), requires_grad=True)


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = nn.MultiHeadAttention(16, 4)
        assert mha(randn(2, 5, 16)).shape == (2, 5, 16)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_causal_mask_blocks_future(self):
        mha = nn.MultiHeadAttention(8, 2, causal=True)
        x = randn(1, 4, 8)
        out_full = mha(x).data
        # Perturb the last token: earlier outputs must not change.
        x2 = Tensor(x.data.copy())
        x2.data[0, -1] += 10.0
        out_pert = mha(x2).data
        assert np.allclose(out_full[0, :-1], out_pert[0, :-1])
        assert not np.allclose(out_full[0, -1], out_pert[0, -1])

    def test_non_causal_attends_everywhere(self):
        mha = nn.MultiHeadAttention(8, 2, causal=False)
        x = randn(1, 4, 8)
        out_full = mha(x).data
        x2 = Tensor(x.data.copy())
        x2.data[0, -1] += 10.0
        assert not np.allclose(mha(x2).data[0, 0], out_full[0, 0])

    def test_attn_mask_applied(self):
        mha = nn.MultiHeadAttention(8, 2)
        x = randn(1, 3, 8)
        mask = np.zeros((1, 1, 3, 3))
        mask[..., 2] = -np.inf  # nobody attends to token 2
        out_masked = mha(x, attn_mask=mask).data
        x2 = Tensor(x.data.copy())
        x2.data[0, 2] += 5.0
        # Token 2 value still reaches its own output via q, but tokens 0-1
        # must be insensitive to it.
        out2 = mha(x2, attn_mask=mask).data
        assert np.allclose(out_masked[0, :2], out2[0, :2])

    def test_grad_flows(self):
        mha = nn.MultiHeadAttention(8, 2)
        mha(randn(1, 3, 8)).sum().backward()
        assert mha.q_proj.weight.grad is not None
        assert mha.out_proj.weight.grad is not None


class TestLinearAttention:
    def test_output_shape(self):
        la = nn.LinearAttention(12, 3)
        assert la(randn(2, 7, 12)).shape == (2, 7, 12)

    def test_matches_quadratic_form(self):
        """Linear attention should equal explicit relu-kernel attention."""
        la = nn.LinearAttention(8, 2, eps=1e-9)
        x = randn(1, 5, 8)
        out = la(x).data

        # Explicit O(T^2) computation with the same projections.
        def heads(w, b):
            y = x.data @ w.T + b
            return y.reshape(1, 5, 2, 4).transpose(0, 2, 1, 3)

        q = np.maximum(heads(la.q_proj.weight.data, la.q_proj.bias.data), 0)
        k = np.maximum(heads(la.k_proj.weight.data, la.k_proj.bias.data), 0)
        v = heads(la.v_proj.weight.data, la.v_proj.bias.data)
        scores = q @ k.transpose(0, 1, 3, 2)  # (1, 2, 5, 5)
        ref = (scores @ v) / (scores.sum(-1, keepdims=True) + 1e-9)
        ref = ref.transpose(0, 2, 1, 3).reshape(1, 5, 8)
        ref = ref @ la.out_proj.weight.data.T + la.out_proj.bias.data
        assert np.allclose(out, ref, atol=1e-8)

    def test_grad_flows(self):
        la = nn.LinearAttention(8, 2)
        la(randn(1, 4, 8)).sum().backward()
        assert la.k_proj.weight.grad is not None


class TestRoPE:
    def test_tables_shape(self):
        cos, sin = nn.rope_tables(10, 8)
        assert cos.shape == (10, 8)
        assert sin.shape == (10, 8)

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            nn.rope_tables(4, 7)

    def test_rotation_preserves_norm(self):
        cos, sin = nn.rope_tables(6, 8)
        x = randn(1, 2, 6, 8)
        rotated = nn.apply_rope(x, cos, sin)
        assert np.allclose(
            np.linalg.norm(rotated.data, axis=-1),
            np.linalg.norm(x.data, axis=-1),
        )

    def test_position_zero_identity(self):
        cos, sin = nn.rope_tables(4, 8)
        x = randn(1, 1, 4, 8)
        rotated = nn.apply_rope(x, cos, sin)
        assert np.allclose(rotated.data[0, 0, 0], x.data[0, 0, 0])

    def test_relative_property(self):
        """Dot products of RoPE'd q/k depend only on relative position."""
        cos, sin = nn.rope_tables(8, 4)
        rng = np.random.default_rng(0)
        qv = rng.normal(size=4)
        kv = rng.normal(size=4)
        dots = []
        for offset in range(3):
            q = np.zeros((1, 1, 8, 4))
            k = np.zeros((1, 1, 8, 4))
            q[0, 0, offset + 2] = qv
            k[0, 0, offset] = kv
            qr = nn.apply_rope(Tensor(q), cos, sin).data
            kr = nn.apply_rope(Tensor(k), cos, sin).data
            dots.append(qr[0, 0, offset + 2] @ kr[0, 0, offset])
        assert np.allclose(dots[0], dots[1])
        assert np.allclose(dots[1], dots[2])

    def test_rope_grad(self):
        cos, sin = nn.rope_tables(3, 4)
        gradcheck(lambda x: nn.apply_rope(x, cos, sin), [randn(1, 1, 3, 4)])


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert np.isclose(loss.item(), np.log(3))

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.eye(3) * 100.0)
        loss = nn.cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_grad_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        nn.cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0  # pushing up the correct class
        assert logits.grad[0, 0] > 0

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 255, 1, 255])
        loss = nn.cross_entropy(logits, targets, ignore_index=255)
        ref = nn.cross_entropy(Tensor(logits.data[[0, 2]]), np.array([0, 1]))
        assert np.isclose(loss.item(), ref.item())

    def test_cross_entropy_all_ignored_raises(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            nn.cross_entropy(logits, np.array([9, 9]), ignore_index=9)

    def test_cross_entropy_gradcheck(self):
        logits = randn(3, 4)
        targets = np.array([0, 3, 1])
        gradcheck(lambda t: nn.cross_entropy(t, targets), [logits])

    def test_mse_loss(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        loss = nn.mse_loss(pred, np.array([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)

    def test_kd_kl_zero_for_identical(self):
        logits = randn(4, 5)
        loss = nn.kd_kl_loss(logits, Tensor(logits.data.copy()))
        assert abs(loss.item()) < 1e-10

    def test_kd_kl_positive(self):
        s, t = randn(4, 5, seed=1), randn(4, 5, seed=2)
        assert nn.kd_kl_loss(s, t).item() > 0

    def test_kd_kl_no_teacher_grad(self):
        s, t = randn(2, 3, seed=1), randn(2, 3, seed=2)
        nn.kd_kl_loss(s, t).backward()
        assert s.grad is not None
        assert t.grad is None

    def test_kd_mse_detaches_teacher(self):
        s, t = randn(2, 3, seed=1), randn(2, 3, seed=2)
        nn.kd_mse_loss(s, t).backward()
        assert t.grad is None

    def test_kd_kl_matches_manual(self):
        s, t = randn(2, 4, seed=3), randn(2, 4, seed=4)
        loss = nn.kd_kl_loss(s, t, temperature=1.0).item()
        sp = softmax(Tensor(t.data)).data
        logq = np.log(softmax(Tensor(s.data)).data)
        manual = (sp * (np.log(sp) - logq)).sum() / 2
        assert np.isclose(loss, manual)
