"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro import nn
from repro.models import BertConfig, BertTiny
from repro.quant import apsq_config, quantize_model
from repro.tensor import Tensor, manual_seed, no_grad


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(4)


class TestCheckpointRoundtrip:
    def test_float_model_roundtrip(self, tmp_path):
        m1 = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        path = nn.save_checkpoint(m1, tmp_path / "model")
        assert path.suffix == ".npz"
        m2 = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        nn.load_checkpoint(m2, path)
        x = Tensor(np.ones((3, 4)))
        assert np.allclose(m1(x).data, m2(x).data)

    def test_quantized_model_roundtrip_exact(self, tmp_path):
        model = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2, pci=8))
        ids = np.random.default_rng(0).integers(0, 64, size=(2, 8))
        model(ids)  # calibrate quantizers
        model.eval()
        with no_grad():
            expected = model(ids).data
        path = nn.save_checkpoint(model, tmp_path / "quant.npz")

        fresh = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2, pci=8))
        nn.load_checkpoint(fresh, path)
        fresh.eval()
        with no_grad():
            actual = fresh(ids).data
        assert np.allclose(expected, actual)

    def test_quantizers_marked_calibrated(self, tmp_path):
        model = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        model(np.zeros((1, 4), dtype=np.int64))
        path = nn.save_checkpoint(model, tmp_path / "m")
        fresh = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        nn.load_checkpoint(fresh, path)
        assert fresh.head.act_quantizer._initialized

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            nn.load_checkpoint(nn.Linear(2, 2), tmp_path / "absent.npz")

    def test_strict_false_with_extra_params(self, tmp_path):
        teacher = BertTiny(BertConfig())
        path = nn.save_checkpoint(teacher, tmp_path / "t")
        student = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        nn.load_checkpoint(student, path, strict=False)
        assert np.allclose(
            student.token_embedding.weight.data, teacher.token_embedding.weight.data
        )

    def test_buffers_roundtrip(self, tmp_path):
        bn = nn.BatchNorm2d(3)
        bn(Tensor(np.random.default_rng(1).normal(2.0, 1.0, size=(4, 3, 2, 2))))
        path = nn.save_checkpoint(bn, tmp_path / "bn")
        fresh = nn.BatchNorm2d(3)
        nn.load_checkpoint(fresh, path)
        assert np.allclose(fresh.running_mean, bn.running_mean)


class TestPartialLoadCalibration:
    def test_partial_load_does_not_mark_absent_quantizers(self, tmp_path):
        """A float checkpoint loaded with strict=False must leave the
        quantizers uncalibrated — their scales were never in the archive,
        so marking them initialized would silently serve the default scale."""
        teacher = BertTiny(BertConfig())
        path = nn.save_checkpoint(teacher, tmp_path / "float")
        student = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        nn.load_checkpoint(student, path, strict=False)
        assert not student.head.act_quantizer._initialized
        assert not student.head.weight_quantizer._initialized

    def test_partial_load_still_initializes_from_first_batch(self, tmp_path):
        teacher = BertTiny(BertConfig())
        path = nn.save_checkpoint(teacher, tmp_path / "float")
        student = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        nn.load_checkpoint(student, path, strict=False)
        default_scale = float(student.head.act_quantizer.scale.data)
        student(np.random.default_rng(0).integers(0, 64, size=(2, 8)))
        assert student.head.act_quantizer._initialized
        assert float(student.head.act_quantizer.scale.data) != default_scale

    def test_full_quantized_load_marks_all_quantizers(self, tmp_path):
        from repro.quant.state import calibration_flags

        model = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        model(np.zeros((1, 4), dtype=np.int64))
        path = nn.save_checkpoint(model, tmp_path / "full")
        fresh = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        nn.load_checkpoint(fresh, path)
        assert all(calibration_flags(fresh).values())


class TestVersionBumpOnLoad:
    def test_load_state_dict_bumps_parameter_versions(self, tmp_path):
        model = nn.Linear(4, 2)
        path = nn.save_checkpoint(model, tmp_path / "m")
        before = model.weight.version
        nn.load_checkpoint(model, path)
        assert model.weight.version > before

    def test_load_over_live_plan_invalidates_weight_codes(self, tmp_path):
        """Loading a checkpoint over a model with a live execution plan
        must force the planner to requantize: the version bump means the
        cache can never serve codes for the pre-load weights."""
        from repro.rae import IntegerExecutionPlan
        from repro.tensor import manual_seed

        manual_seed(0)
        model = quantize_model(
            BertTiny(BertConfig(num_layers=1)), apsq_config(gs=2, pci=8)
        )
        ids = np.random.default_rng(0).integers(0, 64, size=(2, 8))
        model(ids)
        model.eval()
        plan = IntegerExecutionPlan.from_model(model)
        name = plan.layer_names[0]
        stale_codes = plan.weight_codes(name)

        # A second, differently-initialized model provides genuinely new
        # weights; loading it over the live plan must recompute codes.
        manual_seed(1)
        other = quantize_model(
            BertTiny(BertConfig(num_layers=1)), apsq_config(gs=2, pci=8)
        )
        other(ids)
        path = nn.save_checkpoint(other, tmp_path / "other")
        nn.load_checkpoint(model, path)

        fresh_codes = plan.weight_codes(name)
        assert fresh_codes is not stale_codes
        assert not np.array_equal(fresh_codes, stale_codes)
        # And they match what a from-scratch plan derives for the loaded weights.
        reference = IntegerExecutionPlan.from_model(model).weight_codes(name)
        assert np.array_equal(fresh_codes, reference)
