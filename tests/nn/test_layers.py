"""Tests for individual nn layers: Linear, Conv2d, norms, embedding, dropout."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(7)


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed + sum(shape)).normal(size=shape), requires_grad=True)


class TestLinear:
    def test_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(randn(2, 5)).shape == (2, 3)

    def test_matches_manual(self):
        layer = nn.Linear(4, 2)
        x = randn(3, 4)
        expected = x.data @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x).data, expected)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_grad_flows_to_weight(self):
        layer = nn.Linear(3, 2)
        layer(randn(4, 3)).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_batched_3d_input(self):
        layer = nn.Linear(6, 4)
        assert layer(randn(2, 5, 6)).shape == (2, 5, 4)


class TestConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert conv(randn(2, 3, 8, 8)).shape == (2, 8, 4, 4)

    def test_1x1_conv_equals_linear(self):
        conv = nn.Conv2d(4, 6, 1, bias=False)
        x = randn(1, 4, 3, 3)
        out = conv(x)
        ref = np.einsum("nchw,oc->nohw", x.data, conv.weight.data[:, :, 0, 0])
        assert np.allclose(out.data, ref)

    def test_grad_via_gradcheck(self):
        conv = nn.Conv2d(2, 3, 2, bias=True)
        x = randn(1, 2, 4, 4)
        gradcheck(lambda t: conv(t), [x])

    def test_depthwise_groups(self):
        conv = nn.DepthwiseConv2d(4, kernel_size=3, padding=1)
        assert conv.groups == 4
        assert conv(randn(1, 4, 5, 5)).shape == (1, 4, 5, 5)

    def test_depthwise_channel_independence(self):
        conv = nn.DepthwiseConv2d(2, kernel_size=1, padding=0, bias=False)
        conv.weight.data[:] = 1.0
        x = randn(1, 2, 2, 2)
        out = conv(x)
        assert np.allclose(out.data, x.data)

    def test_grouped_conv_matches_split_computation(self):
        conv = nn.Conv2d(4, 4, 1, groups=2, bias=False)
        x = randn(1, 4, 2, 2)
        out = conv(x)
        w = conv.weight.data  # (4, 2, 1, 1)
        ref_g0 = np.einsum("nchw,oc->nohw", x.data[:, :2], w[:2, :, 0, 0])
        ref_g1 = np.einsum("nchw,oc->nohw", x.data[:, 2:], w[2:, :, 0, 0])
        assert np.allclose(out.data, np.concatenate([ref_g0, ref_g1], axis=1))

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)


class TestNorms:
    def test_layernorm_zero_mean_unit_var(self):
        ln = nn.LayerNorm(16)
        out = ln(randn(4, 16))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_grad(self):
        ln = nn.LayerNorm(4)
        gradcheck(lambda x: ln(x), [randn(2, 4)])

    def test_rmsnorm_scale_invariant_direction(self):
        rn = nn.RMSNorm(8)
        x = randn(2, 8)
        assert np.allclose(rn(x).data, rn(x * 10.0).data, atol=1e-4)

    def test_rmsnorm_grad(self):
        rn = nn.RMSNorm(4)
        gradcheck(lambda x: rn(x), [randn(3, 4)])

    def test_batchnorm_train_normalizes(self):
        bn = nn.BatchNorm2d(3)
        x = randn(4, 3, 5, 5)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_batchnorm_running_stats_update(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(3.0, 1.0, size=(8, 2, 4, 4)))
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(size=(8, 2, 4, 4)))
        for _ in range(50):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        bn.train()
        out_train = bn(x)
        assert np.allclose(out_eval.data, out_train.data, atol=0.15)


class TestEmbeddingDropout:
    def test_embedding_shape(self):
        emb = nn.Embedding(10, 4)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_embedding_out_of_range(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))

    def test_dropout_eval_identity(self):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = randn(10, 10)
        assert np.allclose(drop(x).data, x.data)

    def test_dropout_train_zeroes_and_scales(self):
        manual_seed(0)
        drop = nn.Dropout(0.5)
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        zero_frac = (out == 0).mean()
        assert 0.4 < zero_frac < 0.6
        assert np.allclose(out[out != 0], 2.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_dropout_p0_identity_in_train(self):
        drop = nn.Dropout(0.0)
        x = randn(3, 3)
        assert drop(x) is x
