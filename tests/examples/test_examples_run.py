"""Smoke tests: every example script must run to completion.

Heavy examples run under the smoke profile with an isolated cache; the
assertions check for the key output markers, not numbers.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent.parent / "examples"


def run_example(name: str, tmp_path, timeout: int = 420) -> str:
    env = dict(os.environ)
    env["REPRO_PROFILE"] = "smoke"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example("quickstart.py", tmp_path)
        assert "float teacher accuracy" in out
        assert "APSQ" in out
        assert "energy vs INT32-PSUM baseline" in out

    def test_hardware_explorer(self, tmp_path):
        out = run_example("hardware_explorer.py", tmp_path)
        assert "Energy landscape" in out
        assert "Table II" in out
        # Four scalar gs sweeps plus the batched reduce_batch scenario.
        assert out.count("vs Algorithm 1: ok") == 5
        assert "reduce_batch: 32 rows in one pass" in out
        # The model-wide planner section runs and groups layers.
        assert "Model-wide integer execution planner" in out
        # The serving section coalesces a burst bit-identically.
        assert "micro-batched == sequential single-request dispatch: ok" in out
        assert "-> 1 shared engine" in out
        assert "worst mean-relative diff" in out

    def test_nlp_glue(self, tmp_path):
        out = run_example("nlp_glue_apsq.py", tmp_path)
        assert "Baseline" in out
        assert "best APSQ setting" in out

    @pytest.mark.slow
    def test_semantic_segmentation(self, tmp_path):
        out = run_example("semantic_segmentation.py", tmp_path)
        assert "segformer" in out
        assert "efficientvit" in out
        assert "PSUM working set" in out

    @pytest.mark.slow
    def test_llm_reasoning(self, tmp_path):
        out = run_example("llm_reasoning.py", tmp_path)
        assert "BoolQ" in out
        assert "Table IV" in out

    def test_design_space(self, tmp_path):
        out = run_example("design_space.py", tmp_path)
        assert "ofmap buffer" in out
        assert "exact 28 bits" in out
        assert "decode" in out
