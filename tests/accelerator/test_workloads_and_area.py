"""Tests for the model workloads and the Table II area model — including
the paper-shape properties the reproduction must preserve."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AreaModel,
    Dataflow,
    apsq_psum_format,
    area_report,
    baseline_accelerator_area,
    baseline_psum_format,
    bert_base_workload,
    efficientvit_b1_workload,
    llama2_7b_workload,
    llm_config,
    model_energy,
    normalized_energy,
    rae_area,
    segformer_b0_workload,
    total_macs,
)

CFG = AcceleratorConfig()
INT32 = baseline_psum_format(32)


class TestWorkloads:
    def test_bert_shapes(self):
        wl = bert_base_workload(128)
        assert all(layer.repeats == 12 for layer in wl)
        ffn = next(l for l in wl if l.name == "ffn_in")
        assert (ffn.m, ffn.ci, ffn.co) == (128, 768, 3072)

    def test_bert_macs_order_of_magnitude(self):
        # BERT-Base forward ≈ 22 GMACs at 128 tokens (without attention maps).
        assert 1e10 < total_macs(bert_base_workload(128)) < 5e10

    def test_segformer_has_large_token_counts(self):
        wl = segformer_b0_workload(512)
        assert max(l.m for l in wl) == (512 // 4) ** 2  # 16384 tokens

    def test_efficientvit_attention_only_late_stages(self):
        wl = efficientvit_b1_workload(512)
        attn = [l for l in wl if "qkv" in l.name]
        assert len(attn) == 2

    def test_llama_decode_psum_m(self):
        wl = llama2_7b_workload(4096, "decode")
        assert all(l.live_m == 1 for l in wl)
        assert all(l.m == 4096 for l in wl)

    def test_llama_prefill_full_live(self):
        wl = llama2_7b_workload(4096, "prefill")
        assert all(l.live_m == 4096 for l in wl)

    def test_llama_invalid_phase(self):
        with pytest.raises(ValueError):
            llama2_7b_workload(4096, "training")

    def test_llama_weight_bytes_7b_class(self):
        wl = llama2_7b_workload(64, "decode")
        weight_bytes = sum(l.weight_bytes * l.repeats for l in wl)
        assert 5e9 < weight_bytes < 8e9  # ≈ 6.5 GB of INT8 weights


class TestPaperShapes:
    """The qualitative results the paper reports must hold in the model."""

    def test_fig1_psum_share_grows_with_bits(self):
        wl = bert_base_workload(128)
        for df in (Dataflow.IS, Dataflow.WS):
            shares = [
                model_energy(wl, CFG, baseline_psum_format(b), df).psum_share
                for b in (8, 16, 32)
            ]
            assert shares[0] < shares[1] < shares[2]

    def test_fig1_ws_psum_share_dominant_at_int32(self):
        wl = bert_base_workload(128)
        share = model_energy(wl, CFG, INT32, Dataflow.WS).psum_share
        assert share > 0.5  # paper: 69%

    def test_fig1_os_insensitive_to_psum_bits(self):
        wl = bert_base_workload(128)
        totals = [
            model_energy(wl, CFG, baseline_psum_format(b), Dataflow.OS).total
            for b in (8, 16, 32)
        ]
        assert np.allclose(totals, totals[0])

    def test_fig6_bert_ws_uniform_50pct_saving(self):
        wl = bert_base_workload(128)
        ratios = [
            normalized_energy(wl, CFG, apsq_psum_format(gs), Dataflow.WS, INT32)
            for gs in (1, 2, 3, 4)
        ]
        assert np.allclose(ratios, ratios[0])  # gs-independent (short tokens)
        assert 0.4 < ratios[0] < 0.6  # paper: 0.50

    def test_fig6_segformer_ws_crossover_at_gs3(self):
        wl = segformer_b0_workload(512)
        r = {
            gs: normalized_energy(wl, CFG, apsq_psum_format(gs), Dataflow.WS, INT32)
            for gs in (1, 2, 3, 4)
        }
        assert r[1] == r[2] < r[3] == r[4] < 1.0
        assert r[1] < 0.2  # paper: 87% saving
        assert 0.25 < r[3] < 0.45  # paper: 66% saving

    def test_fig6_is_savings_gs_independent(self):
        for wl in (bert_base_workload(), segformer_b0_workload(), efficientvit_b1_workload()):
            ratios = [
                normalized_energy(wl, CFG, apsq_psum_format(gs), Dataflow.IS, INT32)
                for gs in (1, 2, 3, 4)
            ]
            assert np.allclose(ratios, ratios[0])
            assert 0.5 < ratios[0] < 0.9  # paper: 28-42% savings

    def test_table4_ws_order_of_magnitude(self):
        lcfg = llm_config()
        wl_d = llama2_7b_workload(4096, "decode")
        wl_p = llama2_7b_workload(4096, "prefill")

        def total(fmt):
            return (
                model_energy(wl_d, lcfg, fmt, Dataflow.WS).total
                + model_energy(wl_p, lcfg, fmt, Dataflow.WS).total
            )

        base_over_gs1 = total(INT32) / total(apsq_psum_format(1))
        assert base_over_gs1 > 10  # paper: 31.7x
        gs3_over_gs1 = total(apsq_psum_format(3)) / total(apsq_psum_format(1))
        assert 3 < gs3_over_gs1 < base_over_gs1  # paper: 8.42x

    def test_table4_is_no_benefit(self):
        lcfg = llm_config()
        wl_d = llama2_7b_workload(4096, "decode")
        wl_p = llama2_7b_workload(4096, "prefill")

        def total(fmt):
            return (
                model_energy(wl_d, lcfg, fmt, Dataflow.IS).total
                + model_energy(wl_p, lcfg, fmt, Dataflow.IS).total
            )

        ratio = total(INT32) / total(apsq_psum_format(1))
        assert 1.0 <= ratio < 1.2  # paper: 1.02x

    def test_fig5_energy_saturates_below_int8(self):
        wl = bert_base_workload(128)
        e = {
            bits: normalized_energy(wl, CFG, apsq_psum_format(2, bits=bits), Dataflow.WS, INT32)
            for bits in (4, 6, 8)
        }
        assert e[4] < e[6] < e[8]
        # Savings INT8->INT4 much smaller than INT32->INT8 (paper Fig. 5).
        assert (e[8] - e[4]) < (1.0 - e[8]) / 2


class TestAreaModel:
    def test_report_relations(self):
        report = area_report()
        assert report.rae < 0.1 * report.baseline_accelerator
        assert report.accelerator_with_rae > report.baseline_accelerator
        # RAE replaces the old PSUM path: combined < baseline + full RAE.
        assert report.accelerator_with_rae < report.baseline_accelerator + report.rae

    def test_overhead_few_percent(self):
        report = area_report()
        assert 1.0 < report.overhead_percent < 8.0  # paper: 3.21%

    def test_baseline_area_paper_class(self):
        # Paper: 1,873,408 µm² — same order of magnitude.
        area = baseline_accelerator_area()
        assert 1e6 < area < 4e6

    def test_rae_area_paper_class(self):
        # Paper: 86,410 µm².
        assert 3e4 < rae_area() < 3e5

    def test_rae_scales_with_lanes(self):
        small = rae_area(AcceleratorConfig(po=4, pci=8, pco=8))
        big = rae_area(AcceleratorConfig(po=32, pci=8, pco=8))
        assert big > small

    def test_custom_density_model(self):
        dense = AreaModel(sram_bit=0.1)
        assert baseline_accelerator_area(model=dense) < baseline_accelerator_area()
