"""Tests for the analytical energy model (Eqs. 1-6)."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    EnergyTable,
    GemmLayer,
    PsumFormat,
    access_counts,
    apsq_psum_format,
    baseline_psum_format,
    conv_as_gemm,
    layer_energy,
    llm_config,
    model_energy,
    normalized_energy,
    psum_working_set,
    total_macs,
)


class TestEnergyTable:
    def test_defaults_ordered(self):
        t = EnergyTable()
        assert t.e_mac < t.e_sram < t.e_dram

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EnergyTable(e_mac=0.0)

    def test_rejects_inverted_hierarchy(self):
        with pytest.raises(ValueError):
            EnergyTable(e_mac=10.0, e_sram=5.0, e_dram=160.0)


class TestAcceleratorConfig:
    def test_defaults_match_paper(self):
        cfg = AcceleratorConfig()
        assert (cfg.po, cfg.pci, cfg.pco) == (16, 8, 8)
        assert cfg.ifmap_buffer == 256 * 1024
        assert cfg.weight_buffer == 128 * 1024

    def test_llm_config(self):
        cfg = llm_config()
        assert (cfg.po, cfg.pci, cfg.pco) == (1, 32, 32)

    def test_num_macs(self):
        assert AcceleratorConfig().num_macs == 16 * 8 * 8

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(po=0)


class TestPsumFormat:
    def test_beta_int32(self):
        assert baseline_psum_format(32).beta == 4.0

    def test_beta_fractional(self):
        assert PsumFormat(bits=4).beta == 0.5

    def test_capacity_rounds_to_bytes(self):
        # Sub-byte PSUMs still occupy a byte in byte-addressed buffers.
        assert PsumFormat(bits=4, additive=True).capacity_factor == 1.0

    def test_apsq_capacity_scales_with_gs(self):
        assert apsq_psum_format(gs=3).capacity_factor == 3.0
        assert apsq_psum_format(gs=1).capacity_factor == 1.0

    def test_apsq_beta_independent_of_gs(self):
        """Grouping keeps access traffic constant (Sec. III-B)."""
        assert apsq_psum_format(gs=1).beta == apsq_psum_format(gs=4).beta

    def test_invalid(self):
        with pytest.raises(ValueError):
            PsumFormat(bits=0)
        with pytest.raises(ValueError):
            PsumFormat(group_size=0)


class TestGemmLayer:
    def test_sizes(self):
        g = GemmLayer("x", 128, 768, 3072)
        assert g.ifmap_bytes == 128 * 768
        assert g.weight_bytes == 768 * 3072
        assert g.ofmap_bytes == 128 * 3072
        assert g.macs == 128 * 768 * 3072

    def test_conv_as_gemm(self):
        g = conv_as_gemm("c", 16, 16, 64, 128, kernel=3)
        assert g.m == 256
        assert g.ci == 64 * 9

    def test_live_m_default_and_decode(self):
        assert GemmLayer("x", 64, 8, 8).live_m == 64
        assert GemmLayer("x", 64, 8, 8, psum_m=1).live_m == 1

    def test_psum_m_validation(self):
        with pytest.raises(ValueError):
            GemmLayer("x", 4, 8, 8, psum_m=5)

    def test_scaled_preserves_psum_m(self):
        g = GemmLayer("x", 64, 8, 8, psum_m=1).scaled(3)
        assert g.repeats == 3
        assert g.live_m == 1

    def test_total_macs(self):
        layers = [GemmLayer("a", 2, 4, 8), GemmLayer("b", 2, 4, 8, repeats=2)]
        assert total_macs(layers) == 3 * 2 * 4 * 8


class TestWorkingSet:
    CFG = AcceleratorConfig()

    def test_ws_scales_with_m(self):
        small = GemmLayer("s", 128, 768, 768)
        big = GemmLayer("b", 16384, 768, 768)
        f = baseline_psum_format(32)
        assert psum_working_set(big, self.CFG, f, Dataflow.WS) > psum_working_set(
            small, self.CFG, f, Dataflow.WS
        )

    def test_is_scales_with_co(self):
        f = baseline_psum_format(32)
        narrow = GemmLayer("n", 128, 768, 64)
        wide = GemmLayer("w", 128, 768, 4096)
        assert psum_working_set(wide, self.CFG, f, Dataflow.IS) > psum_working_set(
            narrow, self.CFG, f, Dataflow.IS
        )

    def test_os_zero(self):
        g = GemmLayer("g", 128, 768, 768)
        assert psum_working_set(g, self.CFG, baseline_psum_format(32), Dataflow.OS) == 0

    def test_decode_live_m(self):
        g = GemmLayer("g", 4096, 4096, 4096, psum_m=1)
        f = baseline_psum_format(32)
        ws = psum_working_set(g, llm_config(), f, Dataflow.WS)
        assert ws == 4 * 1 * 32  # capacity * live_m * pco


class TestAccessCounts:
    CFG = AcceleratorConfig()

    def test_psum_rounds_formula(self):
        """N_p = 2(ceil(Ci/Pci) - 1) when the working set fits (Eqs. 3, 5)."""
        g = GemmLayer("g", 16, 64, 8)  # np = 8
        for df in (Dataflow.IS, Dataflow.WS):
            c = access_counts(g, self.CFG, apsq_psum_format(1), df)
            assert c.psum_sram == 2 * (8 - 1)
            assert c.psum_dram == 0

    def test_psum_spill_doubles_sram_adds_dram(self):
        g = GemmLayer("g", 100_000, 64, 8)  # WS working set huge
        f = baseline_psum_format(32)
        c = access_counts(g, self.CFG, f, Dataflow.WS)
        assert c.psum_sram == 4 * (8 - 1)
        assert c.psum_dram == 2 * (8 - 1)

    def test_is_weight_refetch_when_too_big(self):
        g = GemmLayer("g", 128, 768, 3072)  # Sw = 2.3 MB > 128 KB
        c = access_counts(g, self.CFG, baseline_psum_format(32), Dataflow.IS)
        input_tiles = -(-128 // self.CFG.po)
        assert c.weight_dram == input_tiles
        assert c.weight_sram == 2 * input_tiles

    def test_is_weight_fits_single_dram_load(self):
        g = GemmLayer("g", 128, 64, 64)  # Sw = 4 KB
        c = access_counts(g, self.CFG, baseline_psum_format(32), Dataflow.IS)
        assert c.weight_dram == 1

    def test_os_no_psum_traffic_any_precision(self):
        g = GemmLayer("g", 1000, 4096, 4096)
        for bits in (8, 16, 32):
            c = access_counts(g, self.CFG, baseline_psum_format(bits), Dataflow.OS)
            assert c.psum_sram == 0
            assert c.psum_dram == 0

    def test_single_tile_reduction_no_psum_traffic(self):
        g = GemmLayer("g", 16, 8, 8)  # np = 1: accumulates in registers
        c = access_counts(g, self.CFG, baseline_psum_format(32), Dataflow.WS)
        assert c.psum_sram == 0


class TestLayerEnergy:
    CFG = AcceleratorConfig()

    def test_components_positive(self):
        e = layer_energy(
            GemmLayer("g", 128, 768, 768), self.CFG, baseline_psum_format(32), Dataflow.WS
        )
        assert min(e.ifmap, e.weight, e.psum, e.ofmap, e.mac) > 0

    def test_psum_energy_linear_in_beta(self):
        g = GemmLayer("g", 128, 768, 768)
        e32 = layer_energy(g, self.CFG, baseline_psum_format(32), Dataflow.WS)
        e8 = layer_energy(g, self.CFG, baseline_psum_format(8), Dataflow.WS)
        assert np.isclose(e32.psum, 4 * e8.psum)
        assert np.isclose(e32.mac, e8.mac)  # MACs unaffected

    def test_repeats_scale_linearly(self):
        g = GemmLayer("g", 128, 768, 768)
        e1 = layer_energy(g, self.CFG, baseline_psum_format(32), Dataflow.WS)
        e3 = layer_energy(g.scaled(3), self.CFG, baseline_psum_format(32), Dataflow.WS)
        assert np.isclose(e3.total, 3 * e1.total)

    def test_breakdown_addition(self):
        g = GemmLayer("g", 16, 64, 64)
        e = layer_energy(g, self.CFG, baseline_psum_format(32), Dataflow.IS)
        double = e + e
        assert np.isclose(double.total, 2 * e.total)

    def test_as_dict_keys(self):
        e = layer_energy(
            GemmLayer("g", 16, 64, 64), self.CFG, baseline_psum_format(32), Dataflow.IS
        )
        assert set(e.as_dict()) == {"ifmap", "weight", "psum", "ofmap", "op"}

    def test_model_energy_sums_layers(self):
        layers = [GemmLayer("a", 16, 64, 64), GemmLayer("b", 16, 64, 64)]
        total = model_energy(layers, self.CFG, baseline_psum_format(32), Dataflow.IS)
        single = layer_energy(layers[0], self.CFG, baseline_psum_format(32), Dataflow.IS)
        assert np.isclose(total.total, 2 * single.total)

    def test_normalized_energy_identity(self):
        layers = [GemmLayer("a", 128, 768, 768)]
        f = baseline_psum_format(32)
        assert normalized_energy(layers, self.CFG, f, Dataflow.WS, f) == 1.0

    def test_apsq_saves_energy_everywhere(self):
        layers = [GemmLayer("a", 128, 768, 3072)]
        ref = baseline_psum_format(32)
        for df in (Dataflow.IS, Dataflow.WS):
            ratio = normalized_energy(layers, self.CFG, apsq_psum_format(2), df, ref)
            assert ratio < 1.0
