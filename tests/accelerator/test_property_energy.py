"""Property-based tests for the analytical energy model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    GemmLayer,
    PsumFormat,
    access_counts,
    apsq_psum_format,
    baseline_psum_format,
    layer_energy,
    model_energy,
)

CFG = AcceleratorConfig()

gemm = st.builds(
    GemmLayer,
    name=st.just("g"),
    m=st.integers(1, 20_000),
    ci=st.integers(1, 4096),
    co=st.integers(1, 4096),
)


class TestEnergyProperties:
    @settings(max_examples=40, deadline=None)
    @given(layer=gemm, bits=st.sampled_from([8, 16, 32]))
    def test_all_components_nonnegative(self, layer, bits):
        for df in Dataflow:
            e = layer_energy(layer, CFG, baseline_psum_format(bits), df)
            assert min(e.ifmap, e.weight, e.psum, e.ofmap, e.mac) >= 0

    @settings(max_examples=40, deadline=None)
    @given(layer=gemm)
    def test_psum_energy_monotone_in_bits(self, layer):
        """More PSUM bits never cost less energy."""
        for df in (Dataflow.IS, Dataflow.WS):
            energies = [
                layer_energy(layer, CFG, baseline_psum_format(b), df).psum
                for b in (8, 16, 32)
            ]
            assert energies[0] <= energies[1] <= energies[2]

    @settings(max_examples=40, deadline=None)
    @given(layer=gemm, gs=st.integers(1, 4))
    def test_apsq_never_beats_free_lunch(self, layer, gs):
        """INT8 APSQ energy <= INT32 baseline, always."""
        for df in (Dataflow.IS, Dataflow.WS):
            apsq = layer_energy(layer, CFG, apsq_psum_format(gs), df).total
            base = layer_energy(layer, CFG, baseline_psum_format(32), df).total
            assert apsq <= base + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(layer=gemm, gs_small=st.integers(1, 3))
    def test_energy_monotone_in_gs(self, layer, gs_small):
        """Larger groups can only add capacity pressure, never remove it."""
        for df in (Dataflow.IS, Dataflow.WS):
            small = layer_energy(layer, CFG, apsq_psum_format(gs_small), df).total
            big = layer_energy(layer, CFG, apsq_psum_format(gs_small + 1), df).total
            assert big >= small - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(layer=gemm)
    def test_os_total_independent_of_psum_format(self, layer):
        totals = {
            bits: layer_energy(layer, CFG, baseline_psum_format(bits), Dataflow.OS).total
            for bits in (8, 32)
        }
        assert np.isclose(totals[8], totals[32])

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(1, 100), co=st.integers(1, 64))
    def test_shallow_reduction_no_psum_traffic(self, m, co):
        """Ci <= Pci means one tile: PSUMs never leave the MAC registers."""
        layer = GemmLayer("g", m, CFG.pci, co)
        for df in (Dataflow.IS, Dataflow.WS):
            counts = access_counts(layer, CFG, baseline_psum_format(32), df)
            assert counts.psum_sram == 0
            assert counts.psum_dram == 0

    @settings(max_examples=30, deadline=None)
    @given(layer=gemm, repeats=st.integers(1, 8))
    def test_repeats_linear(self, layer, repeats):
        one = layer_energy(layer, CFG, baseline_psum_format(32), Dataflow.WS).total
        many = layer_energy(layer.scaled(repeats), CFG, baseline_psum_format(32), Dataflow.WS).total
        assert np.isclose(many, repeats * one)

    @settings(max_examples=30, deadline=None)
    @given(
        layers=st.lists(gemm, min_size=1, max_size=5),
        bits=st.sampled_from([8, 32]),
    )
    def test_model_energy_is_sum(self, layers, bits):
        fmt = baseline_psum_format(bits)
        total = model_energy(layers, CFG, fmt, Dataflow.IS).total
        parts = sum(layer_energy(l, CFG, fmt, Dataflow.IS).total for l in layers)
        assert np.isclose(total, parts)
