"""Tests for per-layer dataflow selection and attention workloads."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    GemmLayer,
    baseline_psum_format,
    bert_base_workload,
    best_dataflow,
    dataflow_histogram,
    layer_energy,
    llm_config,
    model_energy,
    reconfigurable_model_energy,
    total_macs,
)

CFG = AcceleratorConfig()
INT32 = baseline_psum_format(32)


class TestBestDataflow:
    def test_picks_minimum(self):
        layer = GemmLayer("g", 128, 768, 3072)
        choice = best_dataflow(layer, CFG, INT32)
        assert choice.alternatives[choice.dataflow.name] == min(
            choice.alternatives.values()
        )

    def test_alternatives_complete(self):
        choice = best_dataflow(GemmLayer("g", 64, 64, 64), CFG, INT32)
        assert set(choice.alternatives) == {"IS", "WS", "OS"}

    def test_restricted_candidates(self):
        layer = GemmLayer("g", 128, 768, 3072)
        choice = best_dataflow(layer, CFG, INT32, candidates=(Dataflow.IS,))
        assert choice.dataflow is Dataflow.IS

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            best_dataflow(GemmLayer("g", 4, 4, 4), CFG, INT32, candidates=())

    def test_os_wins_for_deep_reduction_small_operands(self):
        """Deep reduction with on-chip-resident operands: OS avoids all
        PSUM traffic without paying DRAM re-streaming."""
        layer = GemmLayer("g", 64, 4096, 16)  # Sw 64 KiB, Si 256 KiB: both fit
        choice = best_dataflow(layer, CFG, INT32)
        assert choice.dataflow is Dataflow.OS


class TestReconfigurableEnergy:
    def test_never_worse_than_fixed(self):
        workload = bert_base_workload(128)
        total, _ = reconfigurable_model_energy(workload, CFG, INT32)
        for df in Dataflow:
            fixed = model_energy(workload, CFG, INT32, df).total
            assert total.total <= fixed + 1e-6

    def test_histogram_counts_layers(self):
        workload = bert_base_workload(128)
        _, choices = reconfigurable_model_energy(workload, CFG, INT32)
        histogram = dataflow_histogram(choices)
        assert sum(histogram.values()) == len(workload)

    def test_equals_sum_of_choices(self):
        workload = bert_base_workload(128)
        total, choices = reconfigurable_model_energy(workload, CFG, INT32)
        assert np.isclose(total.total, sum(c.energy.total for c in choices))


class TestAttentionWorkload:
    def test_flag_adds_attention_gemms(self):
        plain = bert_base_workload(128)
        full = bert_base_workload(128, include_attention=True)
        names = {l.name for l in full} - {l.name for l in plain}
        assert names == {"attn_scores", "attn_values"}

    def test_attention_macs_match_formula(self):
        full = bert_base_workload(128, include_attention=True)
        scores = next(l for l in full if l.name == "attn_scores")
        # 12 layers x 12 heads of a (seq x head_dim x seq) GEMM.
        assert scores.macs * scores.repeats == 128 * 64 * 128 * 144

    def test_attention_small_fraction_at_short_seq(self):
        plain = total_macs(bert_base_workload(128))
        full = total_macs(bert_base_workload(128, include_attention=True))
        assert 1.0 < full / plain < 1.2  # ~4% at 128 tokens

    def test_attention_grows_quadratically(self):
        def attn_macs(seq):
            wl = bert_base_workload(seq, include_attention=True)
            return sum(
                l.macs * l.repeats for l in wl if l.name.startswith("attn_score")
            )

        assert attn_macs(256) == pytest.approx(4 * attn_macs(128))

    def test_energy_model_accepts_attention_layers(self):
        wl = bert_base_workload(128, include_attention=True)
        e = model_energy(wl, CFG, INT32, Dataflow.WS)
        assert e.total > 0
