"""Tests for per-layer energy reports and design-space sweeps."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    GemmLayer,
    apsq_psum_format,
    baseline_psum_format,
    bert_base_workload,
    format_report,
    format_sweep,
    hotspots,
    layer_report,
    llama2_7b_workload,
    segformer_b0_workload,
    sweep_ofmap_buffer,
    sweep_pci,
    sweep_psum_bits,
    sweep_sequence_length,
)

CFG = AcceleratorConfig()
INT32 = baseline_psum_format(32)


class TestLayerReport:
    def test_one_row_per_layer(self):
        wl = bert_base_workload(128)
        rows = layer_report(wl, CFG, INT32, Dataflow.WS)
        assert len(rows) == len(wl)

    def test_tile_counts(self):
        wl = bert_base_workload(128)
        rows = {r.name: r for r in layer_report(wl, CFG, INT32, Dataflow.WS)}
        assert rows["ffn_out"].num_tiles == 3072 // CFG.pci

    def test_spill_flag_matches_fig6(self):
        """Segformer stage-1 layers spill under WS/INT32; BERT never does."""
        seg_rows = layer_report(segformer_b0_workload(), CFG, INT32, Dataflow.WS)
        assert any(r.psum_spills for r in seg_rows)
        bert_rows = layer_report(bert_base_workload(), CFG, INT32, Dataflow.WS)
        assert not any(r.psum_spills for r in bert_rows)

    def test_no_spill_with_apsq_gs1(self):
        rows = layer_report(
            segformer_b0_workload(), CFG, apsq_psum_format(1), Dataflow.WS
        )
        assert not any(r.psum_spills for r in rows)

    def test_totals_match_model_energy(self):
        from repro.accelerator import model_energy

        wl = bert_base_workload(128)
        rows = layer_report(wl, CFG, INT32, Dataflow.IS)
        total = sum(r.total_energy for r in rows)
        assert np.isclose(total, model_energy(wl, CFG, INT32, Dataflow.IS).total)

    def test_hotspots_sorted(self):
        rows = layer_report(bert_base_workload(), CFG, INT32, Dataflow.WS)
        top = hotspots(rows, top=3)
        assert len(top) == 3
        assert top[0].total_energy >= top[1].total_energy >= top[2].total_energy

    def test_hotspots_invalid_top(self):
        with pytest.raises(ValueError):
            hotspots([], top=0)

    def test_format_contains_headers(self):
        rows = layer_report(bert_base_workload(), CFG, INT32, Dataflow.WS)
        text = format_report(rows, top=2)
        assert "psum WS" in text
        assert len(text.splitlines()) == 3

    def test_psum_share_bounded(self):
        rows = layer_report(bert_base_workload(), CFG, INT32, Dataflow.WS)
        assert all(0.0 <= r.psum_share <= 1.0 for r in rows)


class TestSweeps:
    def test_ofmap_buffer_monotone(self):
        wl = segformer_b0_workload()
        results = sweep_ofmap_buffer(wl, [64, 256, 1024], apsq_psum_format(4), Dataflow.WS)
        values = list(results.values())
        assert values[0] >= values[1] >= values[2]

    def test_psum_bits_monotone_and_normalized(self):
        wl = bert_base_workload()
        results = sweep_psum_bits(wl, [4, 8, 16, 32], Dataflow.WS)
        values = list(results.values())
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)  # INT32 == baseline

    def test_pci_reduces_psum_rounds(self):
        wl = bert_base_workload()
        results = sweep_pci(wl, [4, 8, 32], INT32, Dataflow.WS)
        assert results[32] < results[8] < results[4]

    def test_sequence_length_grows_energy(self):
        results = sweep_sequence_length(
            lambda s: bert_base_workload(s), [64, 128, 256], INT32, Dataflow.WS
        )
        assert results[64] < results[128] < results[256]

    def test_llm_decode_sweep_runs(self):
        results = sweep_sequence_length(
            lambda s: llama2_7b_workload(s, "prefill"), [256, 1024], INT32, Dataflow.WS
        )
        assert results[256] < results[1024]

    def test_format_sweep(self):
        text = format_sweep({64: 1.0, 128: 2.0}, "KiB")
        assert "KiB" in text
        assert len(text.splitlines()) == 3
