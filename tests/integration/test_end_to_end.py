"""End-to-end integration tests across packages.

These exercise the full pipeline the experiments use: data generation ->
float pretraining -> quantization surgery -> QAT with distillation ->
evaluation -> hardware cross-checks.
"""

import numpy as np
import pytest

from repro import nn
from repro.data import make_glue_task
from repro.models import BertConfig, BertTiny
from repro.quant import (
    QATConfig,
    QATTrainer,
    apsq_config,
    evaluate,
    psum_accumulators,
    quantize_model,
    quantized_layers,
)
from repro.tensor import Tensor, manual_seed, no_grad


@pytest.fixture(scope="module")
def trained_pair():
    """A float teacher and an APSQ student fine-tuned on tiny QNLI."""
    manual_seed(0)
    task = make_glue_task("QNLI", n_train=128, n_eval=96)
    teacher = BertTiny(BertConfig(num_classes=2))
    QATTrainer(
        teacher, nn.cross_entropy, config=QATConfig(epochs=8, lr=2e-3)
    ).fit(task.train_x, task.train_y)
    student = quantize_model(BertTiny(BertConfig(num_classes=2)), apsq_config(gs=2, pci=8))
    student.load_state_dict(teacher.state_dict(), strict=False)
    QATTrainer(
        student, nn.cross_entropy, teacher=teacher, config=QATConfig(epochs=2, lr=5e-4)
    ).fit(task.train_x, task.train_y)
    return task, teacher, student


class TestQuantizedBertPipeline:
    def test_student_beats_chance(self, trained_pair):
        task, _, student = trained_pair
        acc = evaluate(student, task.eval_x, task.eval_y, task.metric_fn)
        assert acc > 0.55

    def test_student_tracks_teacher(self, trained_pair):
        task, teacher, student = trained_pair
        teacher_acc = evaluate(teacher, task.eval_x, task.eval_y, task.metric_fn)
        student_acc = evaluate(student, task.eval_x, task.eval_y, task.metric_fn)
        assert abs(teacher_acc - student_acc) < 0.25

    def test_all_linears_quantized(self, trained_pair):
        _, _, student = trained_pair
        names = [n for n, _ in quantized_layers(student)]
        # qkv/out per attention + 2 FFN per layer + pooler + head
        assert len(names) >= 2 * 6 + 2

    def test_psum_scales_are_po2_after_training(self, trained_pair):
        _, _, student = trained_pair
        for _, acc in psum_accumulators(student):
            for q in acc.quantizers:
                log2 = np.log2(q.effective_scale)
                assert np.isclose(log2, np.round(log2))

    def test_eval_deterministic(self, trained_pair):
        task, _, student = trained_pair
        student.eval()
        with no_grad():
            out1 = student(task.eval_x[:8]).data
            out2 = student(task.eval_x[:8]).data
        assert np.array_equal(out1, out2)

    def test_state_dict_roundtrip_exact(self, trained_pair):
        task, _, student = trained_pair
        clone = quantize_model(BertTiny(BertConfig(num_classes=2)), apsq_config(gs=2, pci=8))
        clone.load_state_dict(student.state_dict())
        # Mark quantizers as calibrated (scales came from the state dict).
        for module in clone.modules():
            if hasattr(module, "_initialized"):
                module._initialized = True
        student.eval()
        clone.eval()
        with no_grad():
            expected = student(task.eval_x[:8]).data
            actual = clone(task.eval_x[:8]).data
        assert np.allclose(expected, actual)

    def test_psum_write_stats_match_tile_counts(self, trained_pair):
        task, _, student = trained_pair
        from repro.quant import reset_psum_stats

        reset_psum_stats(student)
        student.eval()
        with no_grad():
            student(task.eval_x[:4])
        for _, acc in psum_accumulators(student):
            # One forward call -> one write round per tile.
            assert acc.psum_writes == acc.num_tiles


class TestFailureInjection:
    def test_nan_inputs_surface_not_crash(self):
        model = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        # Token ids must be valid; corrupt an embedding weight instead.
        model.token_embedding.weight.data[0] = np.nan
        out = model(np.zeros((1, 4), dtype=np.int64))
        assert np.isnan(out.data).any()  # NaNs propagate visibly, no crash

    def test_extreme_activations_saturate(self):
        from repro.quant import LSQQuantizer, INT8

        q = LSQQuantizer(INT8)
        q.initialize_from(np.ones(8))
        q.eval()
        out = q(Tensor(np.array([1e9, -1e9])))
        bound = 128 * q.effective_scale
        assert np.abs(out.data).max() <= bound

    def test_mis_sized_state_dict_rejected(self):
        student = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        bad = student.state_dict()
        bad["head.weight"] = np.zeros((7, 7))
        fresh = quantize_model(BertTiny(BertConfig()), apsq_config(gs=2))
        with pytest.raises(ValueError):
            fresh.load_state_dict(bad)
