"""integer_execution context + the activation-code cache (serving PR)."""

import numpy as np
import pytest

from repro import nn
from repro.models import BertConfig, BertTiny
from repro.quant import PsumQuantizedLinear, apsq_config, quantize_model
from repro.rae import IntegerExecutionPlan, integer_execution
from repro.tensor import Tensor, manual_seed, no_grad


@pytest.fixture(scope="module")
def bert():
    manual_seed(0)
    config = BertConfig(num_classes=2, num_layers=1, hidden=32, max_seq_len=16)
    model = quantize_model(BertTiny(config), apsq_config(gs=2, pci=8))
    tokens = np.random.default_rng(0).integers(0, config.vocab_size, size=(4, 8))
    model(tokens)  # calibrate
    model.eval()
    return model, tokens


def make_layer(seed=0, in_features=64, out_features=8):
    manual_seed(seed)
    layer = PsumQuantizedLinear(
        nn.Linear(in_features, out_features), apsq_config(gs=2, pci=8)
    )
    layer(Tensor(np.random.default_rng(seed).normal(size=(4, in_features))))
    layer.eval()
    return layer


class TestIntegerExecutionContext:
    def test_forward_is_batch_invariant(self, bert):
        model, tokens = bert
        with integer_execution(model) as plan:
            batched = model(tokens).data
            singles = [model(tokens[i : i + 1]).data for i in range(tokens.shape[0])]
        assert len(plan.layer_names) > 0
        for i, single in enumerate(singles):
            assert np.array_equal(batched[i : i + 1], single)

    def test_patch_restored_after_context(self, bert):
        model, tokens = bert
        with no_grad():
            before = model(tokens).data
        with integer_execution(model):
            integer = model(tokens).data
        with no_grad():
            after = model(tokens).data
        assert np.array_equal(before, after)  # fake-quant path restored
        # The integer datapath is a genuinely different computation
        # (shift-requantized) — byte equality with fake-quant would mean
        # the patch never took effect.
        assert integer.shape == before.shape

    def test_planned_layer_routes_through_plan(self):
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        x = np.random.default_rng(1).normal(size=(5, 64))
        expected = plan.run_layer("fc", x)

        class Wrapper(nn.Module):
            def __init__(self, inner):
                super().__init__()
                self.fc = inner

            def forward(self, t):
                return self.fc(t)

        model = Wrapper(layer)
        model.eval()
        with integer_execution(model, plan):
            out = model(Tensor(x)).data
        assert np.array_equal(out, expected)

    def test_foreign_plan_rejected(self, bert):
        model, _ = bert
        other = IntegerExecutionPlan([("fc", make_layer(seed=3))])
        with pytest.raises(KeyError):
            with integer_execution(model, other):
                pass  # pragma: no cover

    def test_pinned_plan_reuses_weight_codes(self, bert):
        model, tokens = bert
        plan = IntegerExecutionPlan.from_model(model)
        with integer_execution(model, plan) as bound:
            assert bound is plan
            model(tokens)
        name = plan.layer_names[0]
        codes = plan.weight_codes(name)
        with integer_execution(model, plan):
            model(tokens)
        assert plan.weight_codes(name) is codes  # version-checked, not rebuilt


class TestActivationCodeCache:
    def test_repeat_input_hits(self):
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        x = np.random.default_rng(2).normal(size=(6, 64))
        first = plan.run_layer("fc", x)
        assert plan.act_cache_stats() == {"hits": 0, "misses": 1}
        second = plan.run_layer("fc", x)
        assert plan.act_cache_stats() == {"hits": 1, "misses": 1}
        assert np.array_equal(first, second)

    def test_different_input_misses(self):
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        rng = np.random.default_rng(3)
        plan.run_layer("fc", rng.normal(size=(6, 64)))
        plan.run_layer("fc", rng.normal(size=(6, 64)))
        assert plan.act_cache_stats() == {"hits": 0, "misses": 2}

    def test_scale_bump_invalidates(self):
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        x = np.random.default_rng(4).normal(size=(6, 64))
        plan.run_layer("fc", x)
        layer.act_quantizer.scale.data = layer.act_quantizer.scale.data * 2.0
        plan.run_layer("fc", x)
        assert plan.act_cache_stats()["misses"] == 2  # version key changed

    def test_requant_mode_sweep_quantizes_once(self):
        """The satellite's target: shift → exact sweeps share the codes."""
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        x = np.random.default_rng(5).normal(size=(6, 64))
        shift_runner = plan.runner("fc", requant="shift")
        exact_runner = plan.runner("fc", requant="exact")
        shift_out = shift_runner.run(x)
        exact_out = exact_runner.run(x)
        stats = plan.act_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] >= 1
        assert shift_out.shape == exact_out.shape

    def test_bypass_flag_skips_cache(self):
        """Serving endpoints disable the cache — no digests, no retention."""
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        plan.cache_activations = False
        x = np.random.default_rng(8).normal(size=(6, 64))
        first = plan.run_layer("fc", x)
        second = plan.run_layer("fc", x)
        assert plan.act_cache_stats() == {"hits": 0, "misses": 0}
        assert plan.entry("fc")._act_rows is None  # nothing retained
        assert np.array_equal(first, second)

    def test_cached_rows_bit_identical_to_fresh_plan(self):
        layer = make_layer()
        plan = IntegerExecutionPlan([("fc", layer)])
        x = np.random.default_rng(6).normal(size=(6, 64))
        plan.run_layer("fc", x)
        cached = plan.run_layer("fc", x)  # served from the cache
        fresh = IntegerExecutionPlan([("fc", layer)]).run_layer("fc", x)
        assert np.array_equal(cached, fresh)
