"""Integration: the RAE hardware datapath must reproduce the QAT-time
fake-quantized accumulation (TiledPsumAccumulator in eval mode) exactly,
given the same power-of-two scales.

This is the functional-equivalence property the paper's RTL must satisfy;
here it connects the algorithm side (repro.quant) to the hardware side
(repro.rae).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import TiledPsumAccumulator, apsq_config
from repro.rae import RAEngine, reference_apsq_reduce
from repro.tensor import Tensor


def run_both(tile_values, gs, exponents, lanes):
    """Run float accumulator and integer RAE on the same data."""
    np_tiles = len(tile_values)
    # Float side: tiles are exact float copies of the integers; quantizer
    # scales pinned to 2^e.
    acc = TiledPsumAccumulator(np_tiles, apsq_config(gs=gs))
    for q, e in zip(acc.quantizers, exponents):
        q.scale.data = np.array(float(2**e))
        q._initialized = True
    acc.eval()
    float_out = acc([Tensor(t.astype(float)) for t in tile_values])

    engine = RAEngine(gs=gs, lanes=lanes)
    codes, out_exp = engine.reduce(tile_values, exponents)
    int_out = codes.astype(np.float64) * (2.0**out_exp)
    return float_out.data, int_out


class TestRAEMatchesQATSimulation:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("np_tiles", [2, 4, 5, 7])
    def test_exact_match(self, gs, np_tiles):
        rng = np.random.default_rng(gs * 10 + np_tiles)
        lanes = 16
        tiles = [rng.integers(-2000, 2000, size=lanes) for _ in range(np_tiles)]
        exponents = [5] * np_tiles
        float_out, int_out = run_both(tiles, gs, exponents, lanes)
        assert np.array_equal(float_out, int_out)

    def test_exact_match_mixed_exponents(self):
        rng = np.random.default_rng(42)
        lanes = 8
        tiles = [rng.integers(-30_000, 30_000, size=lanes) for _ in range(6)]
        exponents = [7, 8, 8, 9, 9, 10]
        float_out, int_out = run_both(tiles, 3, exponents, lanes)
        assert np.array_equal(float_out, int_out)

    @settings(max_examples=30, deadline=None)
    @given(
        gs=st.integers(1, 4),
        np_tiles=st.integers(1, 10),
        seed=st.integers(0, 1000),
        exponent=st.integers(2, 10),
    )
    def test_property_equivalence(self, gs, np_tiles, seed, exponent):
        """Property-based: equivalence holds for arbitrary configurations."""
        rng = np.random.default_rng(seed)
        lanes = 4
        tiles = [rng.integers(-5000, 5000, size=lanes) for _ in range(np_tiles)]
        exponents = [exponent] * np_tiles
        float_out, int_out = run_both(tiles, gs, exponents, lanes)
        assert np.array_equal(float_out, int_out)

    @settings(max_examples=20, deadline=None)
    @given(gs=st.integers(1, 4), np_tiles=st.integers(1, 12), seed=st.integers(0, 100))
    def test_engine_matches_reference_property(self, gs, np_tiles, seed):
        rng = np.random.default_rng(seed)
        tiles = [rng.integers(-10_000, 10_000, size=8) for _ in range(np_tiles)]
        exponents = list(rng.integers(3, 9, size=np_tiles))
        engine = RAEngine(gs=gs, lanes=8)
        codes, exp = engine.reduce(tiles, exponents)
        ref_codes, ref_exp = reference_apsq_reduce(tiles, exponents, gs=gs)
        assert exp == ref_exp
        assert np.array_equal(codes, ref_codes)
