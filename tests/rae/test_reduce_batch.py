"""Property-style coverage for the batched RAE datapath.

``RAEngine.reduce_batch`` must be integer-exact against the scalar
``reference_apsq_reduce`` oracle row-by-row for every supported group
size, both rounding modes, ragged last groups and a range of batch sizes,
and its activity statistics must equal the schedule's analytical counts
scaled by the number of rows.
"""

import numpy as np
import pytest

from repro.rae import (
    PsumBank,
    RAEngine,
    ReductionSchedule,
    ShiftQuantizer,
    reference_apsq_reduce,
    shift_round,
)

LANES = 16


def make_batch(num_tiles, rows, lanes=LANES, seed=0, scale=20_000):
    rng = np.random.default_rng(seed)
    return rng.integers(-scale, scale, size=(num_tiles, rows, lanes))


class TestReduceBatchEquality:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("rounding", ["half_even", "half_up"])
    @pytest.mark.parametrize("num_tiles", [1, 2, 3, 5, 7, 9, 12])
    @pytest.mark.parametrize("rows", [1, 7, 64])
    def test_rowwise_integer_exact(self, gs, rounding, num_tiles, rows):
        """Every row of the batch matches the scalar oracle bit-for-bit.

        ``num_tiles`` values not divisible by ``gs`` exercise ragged last
        groups (the final fold reads a partial group).
        """
        tiles = make_batch(num_tiles, rows, seed=gs * 1000 + num_tiles * 10 + rows)
        rng = np.random.default_rng(num_tiles)
        exponents = list(rng.integers(4, 9, size=num_tiles))
        engine = RAEngine(gs=gs, lanes=LANES, rounding=rounding)
        codes, exp = engine.reduce_batch(tiles, exponents)
        assert codes.shape == (rows, LANES)
        assert exp == exponents[-1]
        for row in range(rows):
            ref, ref_exp = reference_apsq_reduce(
                list(tiles[:, row]), exponents, gs=gs, rounding=rounding
            )
            assert ref_exp == exp
            assert np.array_equal(codes[row], ref), f"row {row} diverged"

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    def test_batch_matches_scalar_reduce(self, gs):
        """reduce_batch(tiles)[r] == reduce(tiles[:, r]) on the same engine."""
        tiles = make_batch(6, 5, seed=gs)
        exponents = [5, 6, 6, 7, 7, 8]
        batch_engine = RAEngine(gs=gs, lanes=LANES)
        codes, _ = batch_engine.reduce_batch(tiles, exponents)
        for row in range(5):
            scalar_engine = RAEngine(gs=gs, lanes=LANES)
            scalar_codes, _ = scalar_engine.reduce(list(tiles[:, row]), exponents)
            assert np.array_equal(codes[row], scalar_codes)

    def test_negative_exponents(self):
        """Sub-LSB scales left-shift exactly in both paths."""
        tiles = make_batch(4, 3, seed=9, scale=50)
        exponents = [-1, 0, 1, 2]
        engine = RAEngine(gs=2, lanes=LANES)
        codes, _ = engine.reduce_batch(tiles, exponents)
        for row in range(3):
            ref, _ = reference_apsq_reduce(list(tiles[:, row]), exponents, gs=2)
            assert np.array_equal(codes[row], ref)


class TestPerRowExponents:
    """Per-row exponent vectors: the per-channel / planner batching form.

    A batched reduction where every row carries its own shifts must equal
    the scalar oracle driven row by row with that row's exponent column —
    across group sizes, both rounding modes, ragged last groups, negative
    (sub-LSB) exponents, and both accepted input forms.
    """

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("rounding", ["half_even", "half_up"])
    @pytest.mark.parametrize("num_tiles", [1, 2, 3, 5, 7, 9])
    @pytest.mark.parametrize("rows", [1, 7, 33])
    def test_matrix_matches_per_row_scalar_reduce(self, gs, rounding, num_tiles, rows):
        tiles = make_batch(num_tiles, rows, seed=gs * 777 + num_tiles * 13 + rows)
        rng = np.random.default_rng(num_tiles * 31 + rows)
        matrix = rng.integers(3, 10, size=(num_tiles, rows))
        engine = RAEngine(gs=gs, lanes=LANES, rounding=rounding)
        codes, exp = engine.reduce_batch(tiles, matrix)
        assert np.array_equal(exp, matrix[-1])
        for row in range(rows):
            ref, ref_exp = reference_apsq_reduce(
                list(tiles[:, row]), list(matrix[:, row]), gs=gs, rounding=rounding
            )
            assert ref_exp == matrix[-1, row]
            assert np.array_equal(codes[row], ref), f"row {row} diverged"

    @pytest.mark.parametrize("rounding", ["half_even", "half_up"])
    def test_negative_per_row_exponents(self, rounding):
        """Sub-LSB scales in a per-row matrix left-shift exactly."""
        tiles = make_batch(5, 6, seed=42, scale=60)
        rng = np.random.default_rng(7)
        matrix = rng.integers(-3, 4, size=(5, 6))
        engine = RAEngine(gs=2, lanes=LANES, rounding=rounding)
        codes, _ = engine.reduce_batch(tiles, matrix)
        for row in range(6):
            ref, _ = reference_apsq_reduce(
                list(tiles[:, row]), list(matrix[:, row]), gs=2, rounding=rounding
            )
            assert np.array_equal(codes[row], ref)

    def test_mixed_scalar_and_vector_entries(self):
        """A list mixing shared scalars and per-row vectors is accepted."""
        tiles = make_batch(4, 5, seed=11)
        rng = np.random.default_rng(11)
        vector = rng.integers(4, 9, size=5)
        exponents = [6, vector, 7, 5]
        engine = RAEngine(gs=2, lanes=LANES)
        codes, exp = engine.reduce_batch(tiles, exponents)
        assert exp == 5
        for row in range(5):
            per_row = [6, int(vector[row]), 7, 5]
            ref, _ = reference_apsq_reduce(list(tiles[:, row]), per_row, gs=2)
            assert np.array_equal(codes[row], ref)

    def test_constant_vector_equals_scalar(self):
        """A constant per-row vector is bit-identical to the scalar form."""
        tiles = make_batch(6, 9, seed=5)
        exponents = [5, 6, 6, 7, 7, 8]
        matrix = np.broadcast_to(np.asarray(exponents)[:, None], (6, 9))
        scalar_codes, scalar_exp = RAEngine(gs=3, lanes=LANES).reduce_batch(
            tiles, exponents
        )
        vector_codes, vector_exp = RAEngine(gs=3, lanes=LANES).reduce_batch(
            tiles, matrix
        )
        assert np.array_equal(scalar_codes, vector_codes)
        assert np.all(vector_exp == scalar_exp)

    def test_bad_matrix_shape_rejected(self):
        engine = RAEngine(gs=2, lanes=LANES)
        with pytest.raises(ValueError):
            engine.reduce_batch(np.zeros((4, 3, LANES)), np.zeros((4, 5), dtype=int))

    def test_bad_vector_length_rejected(self):
        engine = RAEngine(gs=2, lanes=LANES)
        exponents = [5, 5, 5, np.zeros(7, dtype=int)]  # rows is 3
        with pytest.raises(ValueError):
            engine.reduce_batch(np.zeros((4, 3, LANES)), exponents)

    def test_stats_unaffected_by_exponent_form(self):
        tiles = make_batch(6, 8, seed=2)
        matrix = np.full((6, 8), 5, dtype=np.int64)
        engine = RAEngine(gs=2, lanes=LANES)
        engine.reduce_batch(tiles, matrix)
        activity = ReductionSchedule.for_reduction(6, 2).activity
        assert engine.stats.bank_writes == activity.bank_writes * 8


class TestBankRowResize:
    def test_banks_shrink_after_smaller_batch(self):
        """A shared engine must release peak-size words (planner reuse)."""
        engine = RAEngine(gs=2, lanes=LANES)
        engine.reduce_batch(make_batch(4, 64, seed=1), [5] * 4)
        peak = sum(b.storage_nbytes for b in engine.banks)
        engine.reduce_batch(make_batch(4, 2, seed=2), [5] * 4)
        small = sum(b.storage_nbytes for b in engine.banks)
        assert small < peak
        assert small == peak // 32  # 64 rows -> 2 rows

    def test_resize_preserves_access_counters(self):
        """Bank counters feed the energy cross-check; resizing keeps them."""
        engine = RAEngine(gs=2, lanes=LANES)
        engine.reduce_batch(make_batch(4, 8, seed=3), [5] * 4)
        writes_before = [b.writes for b in engine.banks]
        assert sum(writes_before) > 0
        engine.reduce_batch(make_batch(4, 2, seed=4), [5] * 4)
        for bank, before in zip(engine.banks, writes_before):
            assert bank.writes >= before

    def test_resize_invalidates_stored_words(self):
        bank = PsumBank(4, lanes=8, rows=3)
        bank.write(0, np.zeros((3, 8)))
        bank.resize_rows(5)
        with pytest.raises(ValueError):
            bank.read(0)

    def test_resize_rejects_zero_rows(self):
        bank = PsumBank(4, lanes=8, rows=3)
        with pytest.raises(ValueError):
            bank.resize_rows(0)


class TestReduceBatchStats:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_tiles", [2, 5, 8])
    @pytest.mark.parametrize("rows", [1, 7, 64])
    def test_stats_are_schedule_times_rows(self, gs, num_tiles, rows):
        engine = RAEngine(gs=gs, lanes=LANES)
        engine.reduce_batch(make_batch(num_tiles, rows, seed=3), [5] * num_tiles)
        activity = ReductionSchedule.for_reduction(num_tiles, gs).activity
        assert engine.stats.bank_writes == activity.bank_writes * rows
        assert engine.stats.bank_reads == activity.bank_reads * rows
        assert engine.stats.apsq_steps == activity.apsq_steps * rows
        assert engine.stats.psq_steps == activity.psq_steps * rows
        assert engine.stats.adder_ops == activity.adder_ops * rows

    def test_stats_accumulate_across_calls(self):
        engine = RAEngine(gs=2, lanes=LANES)
        engine.reduce_batch(make_batch(4, 3, seed=1), [5] * 4)
        engine.reduce_batch(make_batch(4, 3, seed=2), [5] * 4)
        activity = ReductionSchedule.for_reduction(4, 2).activity
        assert engine.stats.bank_writes == activity.bank_writes * 6


class TestReduceBatchValidation:
    def test_wrong_rank(self):
        engine = RAEngine(gs=2, lanes=LANES)
        with pytest.raises(ValueError):
            engine.reduce_batch(np.zeros((4, LANES)), [0] * 4)

    def test_wrong_lanes(self):
        engine = RAEngine(gs=2, lanes=LANES)
        with pytest.raises(ValueError):
            engine.reduce_batch(np.zeros((4, 2, LANES + 1)), [0] * 4)

    def test_exponent_count(self):
        engine = RAEngine(gs=2, lanes=LANES)
        with pytest.raises(ValueError):
            engine.reduce_batch(np.zeros((4, 2, LANES)), [0] * 3)

    def test_zero_rows_is_noop(self):
        engine = RAEngine(gs=2, lanes=LANES)
        codes, exp = engine.reduce_batch(np.zeros((4, 0, LANES)), [5, 5, 5, 6])
        assert codes.shape == (0, LANES)
        assert exp == 6
        assert engine.stats.bank_writes == 0

    def test_overflow_detected(self):
        engine = RAEngine(gs=1, lanes=LANES)
        with pytest.raises(OverflowError):
            engine.reduce_batch(np.full((1, 2, LANES), 2**33), [0])

    def test_scalar_and_batch_interleave(self):
        """Switching word shapes reallocates banks but keeps computing."""
        engine = RAEngine(gs=2, lanes=LANES)
        tiles = make_batch(4, 3, seed=4)
        codes_b, _ = engine.reduce_batch(tiles, [5] * 4)
        codes_s, _ = engine.reduce(list(tiles[:, 0]), [5] * 4)
        assert np.array_equal(codes_b[0], codes_s)
        codes_b2, _ = engine.reduce_batch(tiles, [5] * 4)
        assert np.array_equal(codes_b2, codes_b)


class TestBatchedBank:
    def test_2d_word_roundtrip(self):
        bank = PsumBank(4, lanes=8, rows=3)
        codes = np.arange(24).reshape(3, 8) - 12
        bank.write(1, codes)
        assert np.array_equal(bank.read(1), codes)
        assert bank.word_shape == (3, 8)

    def test_wrong_word_shape_rejected(self):
        bank = PsumBank(4, lanes=8, rows=3)
        with pytest.raises(ValueError):
            bank.write(0, np.zeros(8))

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            PsumBank(4, lanes=8, rows=0)


class TestVectorizedShifter:
    @pytest.mark.parametrize("rounding", ["half_even", "half_up"])
    def test_array_exponents_match_scalar(self, rounding):
        rng = np.random.default_rng(0)
        x = rng.integers(-100_000, 100_000, size=(6, 5, 8))
        exps = np.array([-2, 0, 1, 3, 5, 8]).reshape(6, 1, 1)
        vec = shift_round(x, exps, rounding)
        for i, e in enumerate([-2, 0, 1, 3, 5, 8]):
            assert np.array_equal(vec[i], shift_round(x[i], e, rounding))

    def test_array_exponent_bad_mode(self):
        with pytest.raises(ValueError):
            shift_round(np.zeros(4), np.zeros(4, dtype=int), "stochastic")

    def test_quantizer_stack(self):
        q = ShiftQuantizer(bits=8)
        rng = np.random.default_rng(1)
        x = rng.integers(-50_000, 50_000, size=(3, 4, 8))
        exps = np.array([4, 6, 9]).reshape(3, 1, 1)
        stacked = q.quantize(x, exps)
        for i, e in enumerate([4, 6, 9]):
            assert np.array_equal(stacked[i], q.quantize(x[i], e))

    def test_dequantize_array_exponents(self):
        q = ShiftQuantizer(bits=8)
        codes = np.array([[3, -3], [5, -5]])
        exps = np.array([[2], [-1]])
        out = q.dequantize(codes, exps)
        assert np.array_equal(out[0], q.dequantize(codes[0], 2))
        assert np.array_equal(out[1], q.dequantize(codes[1], -1))
