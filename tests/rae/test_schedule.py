"""Tests for the shared ReductionSchedule — the single source of truth for
Algorithm 1's control flow and its analytical activity counts."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, Dataflow, access_counts, apsq_psum_format
from repro.accelerator.layers import GemmLayer
from repro.rae import (
    RAEngine,
    ReductionSchedule,
    StepKind,
    reference_apsq_reduce,
    s2_schedule,
)


class TestScheduleStructure:
    def test_single_tile_has_no_activity(self):
        sched = ReductionSchedule.for_reduction(1, 4)
        assert len(sched) == 1
        step = sched.steps[0]
        assert step.kind is StepKind.FINAL
        assert not step.writes_bank
        assert sched.activity.total_bank_accesses == 0
        assert sched.activity.adder_ops == 0

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_tiles", [2, 3, 5, 7, 8, 12])
    def test_one_step_per_tile(self, gs, num_tiles):
        sched = ReductionSchedule.for_reduction(num_tiles, gs)
        assert [s.index for s in sched.steps] == list(range(num_tiles))
        assert sched.steps[-1].kind is StepKind.FINAL

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    def test_s2_sequence_matches_config_table(self, gs):
        sched = ReductionSchedule.for_reduction(9, gs)
        assert sched.s2_sequence() == s2_schedule(gs, 9)
        # The per-step view must agree with the sequence view.
        assert [s.s2 for s in sched.steps] == s2_schedule(gs, 9)

    def test_group_structure_gs3_np7(self):
        """Fig. 4 walkthrough: APSQ at t0/t3/t6, final fold at t6."""
        sched = ReductionSchedule.for_reduction(7, 3)
        kinds = [s.kind for s in sched.steps]
        assert kinds[0] is StepKind.APSQ
        assert kinds[3] is StepKind.APSQ
        assert kinds[6] is StepKind.FINAL
        assert not sched.steps[6].folds_stored  # t6 is a group boundary
        assert sched.group_starts == (0, 3, 6)
        assert [list(r) for r in sched.plain_of_group] == [[1, 2], [4, 5], []]

    def test_final_mid_group_folds_stored(self):
        sched = ReductionSchedule.for_reduction(8, 4)
        final = sched.steps[-1]
        assert final.folds_stored  # t7 sits at slot 3 of the second group
        assert sched.steps[3].closes_group
        assert not sched.steps[7].closes_group

    def test_bank_assignment_within_active_banks(self):
        for gs in (1, 2, 3, 4):
            sched = ReductionSchedule.for_reduction(10, gs)
            assert all(0 <= s.bank < gs for s in sched.steps)

    def test_large_gs_allowed_for_qat(self):
        """The QAT accumulator schedules groups beyond the Fig. 2 table."""
        sched = ReductionSchedule.for_reduction(4, 8)
        assert sched.mode is None
        assert [s.kind for s in sched.steps[:3]] == [
            StepKind.APSQ,
            StepKind.PSQ,
            StepKind.PSQ,
        ]
        assert sched.steps[3].folds_stored

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ReductionSchedule(0, 2)
        with pytest.raises(ValueError):
            ReductionSchedule(4, 0)

    def test_factory_caches(self):
        a = ReductionSchedule.for_reduction(6, 2)
        b = ReductionSchedule.for_reduction(6, 2)
        assert a is b


class TestScheduleActivity:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_tiles", [2, 3, 5, 7, 8, 12])
    def test_writes_once_per_tile_reads_all_but_final(self, gs, num_tiles):
        """Sec. III-B: one write per tile regardless of gs; every stored
        tile is read back exactly once."""
        activity = ReductionSchedule.for_reduction(num_tiles, gs).activity
        assert activity.bank_writes == num_tiles
        assert activity.bank_reads == num_tiles - 1

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_tiles", [2, 5, 8, 12])
    def test_activity_matches_engine_stats(self, gs, num_tiles):
        """The analytical counts equal what the datapath actually does."""
        rng = np.random.default_rng(gs * 17 + num_tiles)
        tiles = [rng.integers(-1000, 1000, size=8) for _ in range(num_tiles)]
        engine = RAEngine(gs=gs, lanes=8)
        engine.reduce(tiles, [5] * num_tiles)
        activity = ReductionSchedule.for_reduction(num_tiles, gs).activity
        assert engine.stats.bank_writes == activity.bank_writes
        assert engine.stats.bank_reads == activity.bank_reads
        assert engine.stats.apsq_steps == activity.apsq_steps
        assert engine.stats.psq_steps == activity.psq_steps
        assert engine.stats.adder_ops == activity.adder_ops
        # The per-bank SRAM counters agree with the schedule totals too.
        assert sum(b.writes for b in engine.banks) == activity.bank_writes
        assert sum(b.reads for b in engine.banks) == activity.bank_reads

    def test_apsq_psq_split(self):
        activity = ReductionSchedule.for_reduction(8, 4).activity
        assert activity.apsq_steps == 3  # t0, t4 boundaries + t7 final fold
        assert activity.psq_steps == 5

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("ci", [16, 64, 120])
    def test_cross_check_against_eq2_access_model(self, gs, ci):
        """Eq. 2's PSUM traffic accounting and the schedule must agree.

        The analytical model prices ``2·(np − 1)`` PSUM access rounds per
        reduction (np − 1 stores + np − 1 loads; the final quantized tile
        is the ofmap write, priced separately).  The schedule's activity
        is exactly that: writes = np (incl. the To write), reads = np − 1.
        """
        config = AcceleratorConfig()
        layer = GemmLayer("probe", m=config.po, ci=ci, co=config.pco)
        counts = access_counts(layer, config, apsq_psum_format(gs), Dataflow.WS)
        np_tiles = -(-ci // config.pci)
        activity = ReductionSchedule.for_reduction(np_tiles, gs).activity
        assert counts.psum_sram == 2 * (np_tiles - 1)
        assert activity.bank_writes - 1 + activity.bank_reads == counts.psum_sram
        # One bank access per tile per round is gs-independent — the
        # property that makes APSQ's traffic β·baseline in Eq. 2.
        assert activity.total_bank_accesses == 2 * np_tiles - 1

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_tiles", [1, 2, 5, 9])
    def test_schedule_walk_reproduces_reference(self, gs, num_tiles):
        """A minimal schedule walk is the reference oracle, integer-exactly."""
        from repro.rae import ShiftQuantizer

        rng = np.random.default_rng(num_tiles * 7 + gs)
        tiles = [rng.integers(-4000, 4000, size=8) for _ in range(num_tiles)]
        exponents = list(rng.integers(3, 8, size=num_tiles))
        q = ShiftQuantizer()
        sched = ReductionSchedule.for_reduction(num_tiles, gs)
        prev, stored, out = None, [], None
        for step in sched.steps:
            t, e = tiles[step.index], exponents[step.index]
            if step.kind is StepKind.FINAL:
                acc = sum(c << ce for c, ce in stored) if step.folds_stored else prev
                out = q.quantize(t if acc is None else acc + t, e)
                break
            value = t if step.kind is StepKind.PSQ or prev is None else prev + t
            stored.append((q.quantize(value, e), e))
            if step.closes_group:
                prev = sum(c << ce for c, ce in stored)
                stored = []
        ref, _ = reference_apsq_reduce(tiles, exponents, gs=gs)
        assert np.array_equal(out, ref)
