"""Tests for the RAE functional simulator: shifters, banks, config, engine."""

import numpy as np
import pytest

from repro.rae import (
    CONFIG_TABLE,
    PsumBank,
    RAEngine,
    ShiftQuantizer,
    mode_for_gs,
    reference_apsq_reduce,
    s2_schedule,
    shift_round,
)


class TestShiftRound:
    def test_positive_exponent(self):
        assert shift_round(np.array([8]), 2)[0] == 2
        assert shift_round(np.array([10]), 2)[0] == 2  # 2.5 -> 2 (half-even)
        assert shift_round(np.array([12]), 2)[0] == 3

    def test_half_even_ties(self):
        # 6/4 = 1.5 -> 2 (even); 10/4 = 2.5 -> 2 (even)
        assert shift_round(np.array([6]), 2, "half_even")[0] == 2
        assert shift_round(np.array([10]), 2, "half_even")[0] == 2

    def test_half_up_ties(self):
        assert shift_round(np.array([6]), 2, "half_up")[0] == 2
        assert shift_round(np.array([10]), 2, "half_up")[0] == 3

    def test_matches_numpy_round(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-10_000, 10_000, size=1000)
        for e in (1, 3, 5):
            expected = np.round(x / 2**e).astype(np.int64)
            assert np.array_equal(shift_round(x, e, "half_even"), expected)

    def test_negative_exponent_left_shift(self):
        assert shift_round(np.array([3]), -2)[0] == 12

    def test_zero_exponent_identity(self):
        x = np.array([-5, 0, 7])
        assert np.array_equal(shift_round(x, 0), x)

    def test_negative_values(self):
        # -10 / 4 = -2.5 -> -2 (half-even, numpy)
        assert shift_round(np.array([-10]), 2, "half_even")[0] == np.round(-2.5)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            shift_round(np.array([1]), 1, "stochastic")


class TestShiftQuantizer:
    def test_saturation(self):
        q = ShiftQuantizer(bits=8)
        codes = q.quantize(np.array([100_000, -100_000]), 2)
        assert codes[0] == 127
        assert codes[1] == -128

    def test_roundtrip_exact_on_grid(self):
        q = ShiftQuantizer(bits=8)
        x = np.array([-512, -4, 0, 4, 504])
        assert np.array_equal(q.dequantize(q.quantize(x, 2), 2), x)

    def test_dequantize_shifts(self):
        q = ShiftQuantizer(bits=8)
        assert q.dequantize(np.array([3]), 4)[0] == 48

    def test_saturation_fraction(self):
        q = ShiftQuantizer(bits=8)
        x = np.array([0, 1000, -1000, 4])
        assert q.saturation_fraction(x, 0) == 0.5

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ShiftQuantizer(bits=1)


class TestPsumBank:
    def test_write_read_roundtrip(self):
        bank = PsumBank(4, lanes=8)
        codes = np.arange(8) - 4
        bank.write(1, codes)
        assert np.array_equal(bank.read(1), codes)

    def test_counts_accesses(self):
        bank = PsumBank(4, lanes=2)
        bank.write(0, np.zeros(2))
        bank.read(0)
        bank.read(0)
        assert bank.writes == 1
        assert bank.reads == 2
        assert bank.access_count == 3

    def test_rejects_out_of_range_codes(self):
        bank = PsumBank(4, lanes=2, bits=8)
        with pytest.raises(OverflowError):
            bank.write(0, np.array([200, 0]))

    def test_rejects_bad_address(self):
        bank = PsumBank(2, lanes=2)
        with pytest.raises(IndexError):
            bank.write(2, np.zeros(2))
        with pytest.raises(IndexError):
            bank.read(-1)

    def test_uninitialised_read_rejected(self):
        bank = PsumBank(2, lanes=2)
        with pytest.raises(ValueError):
            bank.read(0)

    def test_wrong_lane_count(self):
        bank = PsumBank(2, lanes=4)
        with pytest.raises(ValueError):
            bank.write(0, np.zeros(3))

    def test_reset(self):
        bank = PsumBank(2, lanes=2)
        bank.write(0, np.zeros(2))
        bank.reset()
        assert bank.writes == 0
        with pytest.raises(ValueError):
            bank.read(0)


class TestConfigTable:
    def test_fig2_encodings(self):
        assert CONFIG_TABLE[1].s0 == "00"
        assert CONFIG_TABLE[2].s0 == "01"
        assert CONFIG_TABLE[3].s0 == "10"
        assert CONFIG_TABLE[3].s1 == "0"
        assert CONFIG_TABLE[4].s0 == "10"
        assert CONFIG_TABLE[4].s1 == "1"

    def test_active_banks_match_gs(self):
        for gs, mode in CONFIG_TABLE.items():
            assert mode.active_banks == gs

    def test_unsupported_gs(self):
        with pytest.raises(ValueError):
            mode_for_gs(5)

    def test_s2_schedule_gs1_all_apsq(self):
        assert s2_schedule(1, 5) == [1, 1, 1, 1, 1]

    def test_s2_schedule_gs4(self):
        # APSQ at every group boundary, PSQ inside (paper Sec. III-C).
        assert s2_schedule(4, 8) == [1, 0, 0, 0, 1, 0, 0, 0]

    def test_s2_out_of_group(self):
        with pytest.raises(ValueError):
            CONFIG_TABLE[2].s2_for_tile(2)


def make_tiles(num, lanes=16, seed=0, scale=1000):
    rng = np.random.default_rng(seed)
    return [rng.integers(-scale, scale, size=lanes) for _ in range(num)]


class TestRAEngine:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_tiles", [1, 2, 3, 5, 7, 8, 12])
    def test_integer_exact_vs_reference(self, gs, num_tiles):
        """The engine datapath must match Algorithm 1 bit-for-bit."""
        tiles = make_tiles(num_tiles, seed=gs * 100 + num_tiles)
        exponents = [4] * num_tiles
        engine = RAEngine(gs=gs, lanes=16)
        codes, exp = engine.reduce(tiles, exponents)
        ref_codes, ref_exp = reference_apsq_reduce(tiles, exponents, gs=gs)
        assert exp == ref_exp
        assert np.array_equal(codes, ref_codes)

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    def test_varying_exponents(self, gs):
        tiles = make_tiles(6, seed=5, scale=20_000)
        exponents = [5, 6, 6, 7, 7, 8]
        engine = RAEngine(gs=gs, lanes=16)
        codes, _ = engine.reduce(tiles, exponents)
        ref_codes, _ = reference_apsq_reduce(tiles, exponents, gs=gs)
        assert np.array_equal(codes, ref_codes)

    def test_output_close_to_exact_sum(self):
        tiles = make_tiles(6, seed=1, scale=1000)
        exact = sum(tiles)
        engine = RAEngine(gs=2, lanes=16)
        codes, exp = engine.reduce(tiles, [6] * 6)
        approx = codes.astype(np.int64) << exp
        rel = np.abs(approx - exact).mean() / (np.abs(exact).mean() + 1e-9)
        assert rel < 0.2

    def test_single_tile(self):
        engine = RAEngine(gs=4, lanes=16)
        tiles = make_tiles(1)
        codes, exp = engine.reduce(tiles, [3])
        ref, _ = reference_apsq_reduce(tiles, [3], gs=4)
        assert np.array_equal(codes, ref)

    def test_write_count_equals_num_tiles(self):
        """One bank write per tile, independent of gs (Sec. III-B)."""
        for gs in (1, 2, 3, 4):
            engine = RAEngine(gs=gs, lanes=16)
            engine.reduce(make_tiles(8, seed=gs), [5] * 8)
            assert engine.stats.bank_writes == 8

    def test_bank_usage_matches_mode(self):
        engine = RAEngine(gs=3, lanes=16)
        engine.reduce(make_tiles(9, seed=2), [5] * 9)
        used = [i for i, b in enumerate(engine.banks) if b.writes > 0]
        assert used == [0, 1, 2]  # bank 3 idle in gs=3 mode

    def test_gs1_single_bank(self):
        engine = RAEngine(gs=1, lanes=16)
        engine.reduce(make_tiles(6, seed=3), [5] * 6)
        assert engine.banks[0].writes == 6
        assert all(b.writes == 0 for b in engine.banks[1:])

    def test_stats_apsq_vs_psq_steps(self):
        engine = RAEngine(gs=4, lanes=16)
        engine.reduce(make_tiles(8, seed=4), [5] * 8)
        # Tiles 0 and 4 are APSQ boundaries; tile 7 is the final fold.
        assert engine.stats.apsq_steps == 3
        assert engine.stats.psq_steps == 5

    def test_overflow_detection(self):
        engine = RAEngine(gs=1, lanes=4)
        huge = [np.full(4, 2**33)]
        with pytest.raises(OverflowError):
            engine.reduce(huge, [0])

    def test_shape_validation(self):
        engine = RAEngine(gs=2, lanes=8)
        with pytest.raises(ValueError):
            engine.reduce([np.zeros(4)], [0])
        with pytest.raises(ValueError):
            engine.reduce([np.zeros(8)], [0, 1])
        with pytest.raises(ValueError):
            engine.reduce([], [])

    def test_reset(self):
        engine = RAEngine(gs=2, lanes=16)
        engine.reduce(make_tiles(4, seed=6), [5] * 4)
        engine.reset()
        assert engine.stats.bank_writes == 0
        assert all(b.access_count == 0 for b in engine.banks)

    def test_half_up_rounding_mode(self):
        tiles = make_tiles(4, seed=7)
        e1 = RAEngine(gs=2, lanes=16, rounding="half_up")
        codes, _ = e1.reduce(tiles, [4] * 4)
        ref, _ = reference_apsq_reduce(tiles, [4] * 4, gs=2, rounding="half_up")
        assert np.array_equal(codes, ref)
