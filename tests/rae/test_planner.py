"""Tests for the model-wide integer execution planner."""

import numpy as np
import pytest

from repro import nn
from repro.models import BertConfig, BertTiny
from repro.quant import PsumQuantizedLinear, apsq_config, quantize_model
from repro.quant.qlayers import PsumQuantizedConv2d
from repro.rae import (
    IntegerExecutionPlan,
    IntegerGemmRunner,
    ReductionShape,
    capture_layer_inputs,
    verify_against_per_layer,
)
from repro.tensor import Tensor, manual_seed, no_grad


def make_linear(in_features=32, out_features=8, gs=2, seed=0, po2=True):
    manual_seed(seed)
    layer = PsumQuantizedLinear(
        nn.Linear(in_features, out_features), apsq_config(gs=gs, pci=8)
    )
    rng = np.random.default_rng(seed)
    layer(Tensor(rng.normal(size=(8, in_features))))
    if po2:
        layer.act_quantizer.scale.data = np.array(2.0**-4)
        layer.weight_quantizer.scale.data = np.array(2.0**-5)
        for i, q in enumerate(layer.accumulator.quantizers):
            q.scale.data = np.array(2.0 ** (-6 + (i % 2)))
    layer.eval()
    return layer


def make_quantized_bert(num_layers=2, hidden=64, gs=2, seed=0):
    manual_seed(seed)
    config = BertConfig(num_classes=2, num_layers=num_layers, hidden=hidden)
    model = quantize_model(BertTiny(config), apsq_config(gs=gs, pci=8))
    tokens = np.random.default_rng(seed).integers(0, config.vocab_size, size=(2, 16))
    model(tokens)
    model.eval()
    return model, tokens


class TestPlanConstruction:
    def test_groups_by_reduction_shape(self):
        model, _ = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        assert len(plan.layer_names) == 14
        groups = plan.groups
        assert len(groups) == 4
        # q/k/v/out of both blocks plus the pooler share one shape.
        big = groups[ReductionShape(num_tiles=8, gs=2, lanes=64, bits=8)]
        assert len(big) == 9

    def test_shared_engine_per_group(self):
        model, _ = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        shape = ReductionShape(num_tiles=8, gs=2, lanes=64, bits=8)
        assert plan.engine_for(shape) is plan.engine_for(shape)
        other = ReductionShape(num_tiles=32, gs=2, lanes=64, bits=8)
        assert plan.engine_for(shape) is not plan.engine_for(other)

    def test_untiled_layer_rejected(self):
        layer = PsumQuantizedLinear(nn.Linear(8, 4), apsq_config(gs=2, pci=8))
        with pytest.raises(ValueError):
            IntegerExecutionPlan([("small", layer)])

    def test_duplicate_name_rejected(self):
        layer = make_linear()
        with pytest.raises(ValueError):
            IntegerExecutionPlan([("a", layer), ("a", layer)])

    def test_model_without_quantized_layers_rejected(self):
        with pytest.raises(ValueError):
            IntegerExecutionPlan.from_model(nn.Linear(8, 4))

    def test_unknown_layer_name(self):
        plan = IntegerExecutionPlan([("layer", make_linear())])
        with pytest.raises(KeyError):
            plan.entry("other")
        with pytest.raises(KeyError):
            plan.run_model({"other": np.zeros((2, 32))})


class TestModelExecution:
    def test_bit_identical_to_per_layer_runners(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        inputs = capture_layer_inputs(model, plan.layer_names, tokens)
        outputs = plan.run_model(inputs)
        for name in plan.layer_names:
            runner = IntegerGemmRunner(model.get_submodule(name))
            x = inputs[name].reshape(-1, inputs[name].shape[-1])
            reference = runner.run(x)
            assert np.array_equal(outputs[name].reshape(reference.shape), reference), name

    def test_verify_against_per_layer_helper(self):
        """The shared sign-off recipe reports every layer bit-exact."""
        model, tokens = make_quantized_bert()
        results = verify_against_per_layer(model, tokens)
        plan = IntegerExecutionPlan.from_model(model)
        assert set(results) == set(plan.layer_names)
        assert all(results.values())

    def test_partial_inputs_run_partially(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        inputs = capture_layer_inputs(model, plan.layer_names, tokens)
        subset = dict(list(inputs.items())[:3])
        outputs = plan.run_model(subset)
        assert set(outputs) == set(subset)

    def test_linear_output_shape_preserved(self):
        layer = make_linear()
        plan = IntegerExecutionPlan([("layer", layer)])
        out = plan.run_model({"layer": np.random.default_rng(0).normal(size=(2, 5, 32))})
        assert out["layer"].shape == (2, 5, 8)

    def test_repeated_runs_are_deterministic(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        inputs = capture_layer_inputs(model, plan.layer_names, tokens)
        first = plan.run_model(inputs)
        second = plan.run_model(inputs)
        for name, value in first.items():
            assert np.array_equal(value, second[name])

    def test_compare_with_fake_quant_po2_exact(self):
        layer = make_linear()
        plan = IntegerExecutionPlan([("layer", layer)])
        x = np.random.default_rng(3).normal(size=(4, 32)) * 0.5
        report = plan.compare_with_fake_quant({"layer": x})
        assert report["layer"]["exponent_snap_bits"] == 0.0
        assert report["layer"]["max_abs_diff"] < 1e-9


class TestConvExecution:
    def make_conv(self, seed=0):
        manual_seed(seed)
        conv = PsumQuantizedConv2d(
            nn.Conv2d(8, 6, 3, stride=1, padding=1), apsq_config(gs=2, pci=8)
        )
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 8, 6, 6))
        conv(Tensor(x))
        conv.act_quantizer.scale.data = np.array(2.0**-4)
        conv.weight_quantizer.scale.data = np.array(2.0**-5)
        for i, q in enumerate(conv.accumulator.quantizers):
            q.scale.data = np.array(2.0 ** (-6 + (i % 2)))
        conv.eval()
        return conv, x

    def test_conv_matches_fake_quant(self):
        conv, x = self.make_conv()
        plan = IntegerExecutionPlan([("conv", conv)])
        out = plan.run_model({"conv": x})["conv"]
        with no_grad():
            fake = conv(Tensor(x)).data
        assert out.shape == fake.shape
        assert np.abs(out - fake).max() < 1e-9

    def test_conv_groups_by_out_channels(self):
        conv, _ = self.make_conv()
        plan = IntegerExecutionPlan([("conv", conv)])
        (shape,) = plan.groups
        assert shape.lanes == 6
        assert shape.num_tiles == conv.num_tiles

    def test_conv_rejects_non_4d_input(self):
        conv, _ = self.make_conv()
        plan = IntegerExecutionPlan([("conv", conv)])
        with pytest.raises(ValueError):
            plan.run_model({"conv": np.zeros((8, 6, 6))})


class TestWeightCodeCache:
    def test_cache_hit_is_same_object(self):
        plan = IntegerExecutionPlan([("layer", make_linear())])
        first = plan.weight_codes("layer")
        assert plan.weight_codes("layer") is first

    def test_weight_rebind_invalidates(self):
        layer = make_linear()
        plan = IntegerExecutionPlan([("layer", layer)])
        first = plan.weight_codes("layer")
        layer.weight.data = layer.weight.data * 2.0  # bumps the version
        second = plan.weight_codes("layer")
        assert second is not first
        assert not np.array_equal(first, second)

    def test_inplace_mutation_with_bump(self):
        layer = make_linear()
        plan = IntegerExecutionPlan([("layer", layer)])
        first = plan.weight_codes("layer")
        layer.weight.data[:] = layer.weight.data * 2.0
        layer.weight.bump_version()
        assert plan.weight_codes("layer") is not first

    def test_weight_scale_change_invalidates(self):
        layer = make_linear()
        plan = IntegerExecutionPlan([("layer", layer)])
        first = plan.weight_codes("layer")
        layer.weight_quantizer.scale.data = np.array(2.0**-3)
        assert plan.weight_codes("layer") is not first

    def test_qat_step_keeps_runner_correct(self):
        """End-to-end: after a parameter update the plan output tracks it."""
        layer = make_linear()
        runner = IntegerGemmRunner(layer)
        x = np.random.default_rng(5).normal(size=(4, 32)) * 0.5
        before = runner.run(x)
        layer.weight.data = layer.weight.data + 0.25
        after = runner.run(x)
        assert not np.array_equal(before, after)
        report = runner.compare_with_fake_quant(x)
        assert report["max_abs_diff"] < 1e-9


class TestScalePlanCache:
    def test_plan_object_cached(self):
        plan = IntegerExecutionPlan([("layer", make_linear())])
        assert plan.scale_plan_for("layer") is plan.scale_plan_for("layer")

    def test_scale_rebind_invalidates(self):
        layer = make_linear()
        plan = IntegerExecutionPlan([("layer", layer)])
        first = plan.scale_plan_for("layer")
        layer.act_quantizer.scale.data = np.array(2.0**-3)
        second = plan.scale_plan_for("layer")
        assert second is not first
        assert second.product_scale == pytest.approx(2.0**-3 * 2.0**-5)


class TestRunnerView:
    def test_runner_from_plan_shares_engine(self):
        model, _ = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        names = plan.groups[ReductionShape(num_tiles=8, gs=2, lanes=64, bits=8)][:2]
        runners = [plan.runner(n) for n in names]
        assert runners[0].engine is runners[1].engine
        assert runners[0].execution_plan is plan

    def test_standalone_runner_builds_private_plan(self):
        layer = make_linear()
        a, b = IntegerGemmRunner(layer), IntegerGemmRunner(layer)
        assert a.execution_plan is not b.execution_plan
        assert a.engine is not b.engine

    def test_runner_rejects_mismatched_plan_entry(self):
        plan = IntegerExecutionPlan([("layer", make_linear(seed=1))])
        with pytest.raises(ValueError):
            IntegerGemmRunner(make_linear(seed=2), plan=plan, layer_name="layer")


class TestCaptureInputs:
    def test_captures_every_planned_layer(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        inputs = capture_layer_inputs(model, plan.layer_names, tokens)
        assert set(inputs) == set(plan.layer_names)
        for name, x in inputs.items():
            layer = model.get_submodule(name)
            assert x.shape[-1] == layer.in_features

    def test_forward_restored_after_capture(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        capture_layer_inputs(model, plan.layer_names, tokens)
        for name in plan.layer_names:
            assert "forward" not in vars(model.get_submodule(name))

    def test_restored_on_forward_error(self):
        model, _ = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        with pytest.raises(ValueError):
            capture_layer_inputs(
                model, plan.layer_names, np.zeros((1, 999), dtype=np.int64)
            )
        for name in plan.layer_names:
            assert "forward" not in vars(model.get_submodule(name))


class TestExportImport:
    """Artifact hooks: exported plan state reloads without requantization."""

    def test_export_state_covers_every_layer(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        state = plan.export_state()
        assert set(state) == set(plan.layer_names)
        for name, arrays in state.items():
            entry = plan.entry(name)
            assert arrays["weight_codes"].shape[0] == entry.shape.lanes
            assert arrays["exponents"].shape == (entry.shape.num_tiles,)
            assert arrays["alphas"].shape == (entry.shape.num_tiles,)

    def test_import_seeds_caches_without_quantization(self):
        model, tokens = make_quantized_bert()
        source = IntegerExecutionPlan.from_model(model)
        state = source.export_state()
        target = IntegerExecutionPlan.from_model(model)
        target.import_state(state)
        for name in target.layer_names:
            entry = target.entry(name)
            assert np.array_equal(entry._w_codes, source.weight_codes(name))
            assert entry._plan_key is not None
        # Imported caches are *live-keyed*: the first run reuses them.
        inputs = capture_layer_inputs(model, target.layer_names, tokens)
        name = target.layer_names[0]
        imported_codes = target.entry(name)._w_codes
        target.run_layer(name, inputs[name])
        assert target.entry(name)._w_codes is imported_codes

    def test_imported_plan_is_bit_identical(self):
        model, tokens = make_quantized_bert()
        source = IntegerExecutionPlan.from_model(model)
        inputs = capture_layer_inputs(model, source.layer_names, tokens)
        expected = source.run_model(inputs)
        target = IntegerExecutionPlan.from_model(model)
        target.import_state(source.export_state())
        actual = target.run_model(inputs)
        for name in source.layer_names:
            assert np.array_equal(expected[name], actual[name])

    def test_import_invalidates_on_later_weight_change(self):
        model, tokens = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        state = plan.export_state()
        name = plan.layer_names[0]
        layer = plan.entry(name).layer
        plan.import_state(state)
        imported = plan.entry(name)._w_codes
        layer.weight.data = layer.weight.data * 0.5  # bumps the version
        fresh = plan.weight_codes(name)
        assert fresh is not imported

    def test_import_rejects_unknown_layers_and_bad_shapes(self):
        model, _ = make_quantized_bert()
        plan = IntegerExecutionPlan.from_model(model)
        state = plan.export_state()
        with pytest.raises(KeyError):
            plan.import_state({"nope": next(iter(state.values()))})
        name = plan.layer_names[0]
        bad = dict(state[name])
        bad["weight_codes"] = bad["weight_codes"][:1]
        with pytest.raises(ValueError):
            plan.import_layer_state(name, bad)
        bad = dict(state[name])
        bad["exponents"] = bad["exponents"][:1]
        with pytest.raises(ValueError):
            plan.import_layer_state(name, bad)
