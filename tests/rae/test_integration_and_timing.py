"""Tests for integer-only layer execution (quant -> RAE bridge) and the
RAE timing model."""

import numpy as np
import pytest

from repro import nn
from repro.quant import apsq_config, PsumQuantizedLinear
from repro.rae import (
    IntegerGemmRunner,
    RAETiming,
    layer_scales,
    reduction_cycles,
    shift_exponent_error,
    shift_exponents,
    throughput_report,
)
from repro.tensor import Tensor, manual_seed


def make_layer(gs=2, in_features=32, out_features=8, pci=8, po2_everything=True, seed=0):
    """A calibrated PsumQuantizedLinear; optionally with po2 scales all round."""
    manual_seed(seed)
    layer = PsumQuantizedLinear(nn.Linear(in_features, out_features), apsq_config(gs=gs, pci=pci))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(16, in_features))
    layer(Tensor(x))  # calibrate all quantizers
    if po2_everything:
        layer.act_quantizer.scale.data = np.array(2.0**-4)
        layer.weight_quantizer.scale.data = np.array(2.0**-5)
        for i, q in enumerate(layer.accumulator.quantizers):
            q.scale.data = np.array(2.0 ** (-6 + (i % 2)))
    return layer


class TestLayerExport:
    def test_scales_extracted(self):
        layer = make_layer()
        s_x, s_w, alphas = layer_scales(layer)
        assert s_x > 0 and s_w > 0
        assert len(alphas) == layer.num_tiles

    def test_uncalibrated_rejected(self):
        layer = PsumQuantizedLinear(nn.Linear(16, 4), apsq_config(gs=2, pci=8))
        with pytest.raises(RuntimeError):
            layer_scales(layer)

    def test_shift_exponents_integer_for_po2_scales(self):
        layer = make_layer(po2_everything=True)
        assert shift_exponent_error(layer) == 0.0
        exps = shift_exponents(layer)
        assert all(isinstance(e, int) for e in exps)

    def test_snap_error_bounded_half_bit(self):
        layer = make_layer(po2_everything=False)
        assert 0.0 <= shift_exponent_error(layer) <= 0.5


class TestIntegerGemmRunner:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    def test_shift_path_matches_fake_quant_exactly(self, gs):
        """With po2 scales everywhere the integer RAE path is bit-exact."""
        layer = make_layer(gs=gs, seed=gs)
        runner = IntegerGemmRunner(layer, requant="shift")
        rng = np.random.default_rng(gs + 10)
        x = rng.normal(size=(4, 32)) * 0.5
        report = runner.compare_with_fake_quant(x)
        assert report["exponent_snap_bits"] == 0.0
        assert report["max_abs_diff"] < 1e-9

    def test_exact_path_matches_fake_quant(self):
        layer = make_layer(gs=2, po2_everything=False, seed=3)
        runner = IntegerGemmRunner(layer, requant="exact")
        rng = np.random.default_rng(13)
        x = rng.normal(size=(4, 32)) * 0.5
        report = runner.compare_with_fake_quant(x)
        assert report["mean_rel_diff"] < 0.05

    def test_shift_path_bounded_error_free_scales(self):
        """Without po2 product scales, snapping adds bounded extra error."""
        layer = make_layer(gs=2, po2_everything=False, seed=4)
        runner = IntegerGemmRunner(layer, requant="shift")
        rng = np.random.default_rng(14)
        x = rng.normal(size=(4, 32)) * 0.5
        report = runner.compare_with_fake_quant(x)
        assert report["mean_rel_diff"] < 0.5

    def test_untiled_layer_rejected(self):
        layer = PsumQuantizedLinear(nn.Linear(8, 4), apsq_config(gs=2, pci=8))
        with pytest.raises(ValueError):
            IntegerGemmRunner(layer)

    def test_bad_requant_mode(self):
        with pytest.raises(ValueError):
            IntegerGemmRunner(make_layer(), requant="approximate")

    def test_input_shape_validated(self):
        runner = IntegerGemmRunner(make_layer())
        with pytest.raises(ValueError):
            runner.run(np.zeros((2, 3, 32)))

    def test_bias_included(self):
        layer = make_layer(seed=5)
        layer.bias.data[:] = 10.0
        runner = IntegerGemmRunner(layer)
        out = runner.run(np.zeros((1, 32)))
        assert np.all(np.abs(out - 10.0) < 1.0)

    def test_exact_path_supports_large_qat_gs(self):
        """requant='exact' never touches the RAE, so gs beyond the Fig. 2
        hardware table (QAT-only group sizes) must keep working."""
        layer = make_layer(gs=8, seed=8)
        runner = IntegerGemmRunner(layer, requant="exact")
        out = runner.run(np.random.default_rng(8).normal(size=(3, 32)) * 0.5)
        assert out.shape == (3, 8)
        with pytest.raises(ValueError):
            IntegerGemmRunner(layer, requant="shift").engine  # hardware path rejects

    def test_plan_tracks_scale_changes(self):
        """The cached ScalePlan must refresh when the layer keeps training."""
        layer = make_layer(seed=7)
        runner = IntegerGemmRunner(layer)
        first = runner.plan
        assert runner.plan is first  # unchanged scales -> cached object
        layer.act_quantizer.scale.data = np.array(2.0**-3)
        second = runner.plan
        assert second is not first
        assert second.product_scale == pytest.approx(2.0**-3 * 2.0**-5)
        # And the run output reflects the *new* scales end-to-end.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 32)) * 0.5
        report = runner.compare_with_fake_quant(x)
        assert report["exponent_snap_bits"] == 0.0
        assert report["max_abs_diff"] < 1e-9

    def test_integer_tiles_are_integers(self):
        runner = IntegerGemmRunner(make_layer(seed=6))
        tiles, product_scale = runner.integer_tiles(np.random.default_rng(0).normal(size=(2, 32)))
        assert len(tiles) == 4
        for t in tiles:
            assert t.dtype in (np.int64, np.int32)
        assert product_scale > 0


class TestRAETiming:
    def test_defaults_valid(self):
        t = RAETiming()
        assert t.tree_stages == 2

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            RAETiming(bank_read=0)

    def test_pipelined_one_tile_per_cycle(self):
        """Sustained throughput is gs-independent (the co-design claim)."""
        report = throughput_report(num_tiles=1000)
        for gs in (1, 2, 3, 4):
            assert report[gs]["pipelined_cycles_per_tile"] < 1.02

    def test_serial_slower_than_pipelined(self):
        for gs in (1, 2, 3, 4):
            assert reduction_cycles(64, gs, pipelined=False) > reduction_cycles(
                64, gs, pipelined=True
            )

    def test_serial_gs1_most_expensive(self):
        """gs=1 runs the full APSQ step every tile: worst serial latency."""
        serial = {gs: reduction_cycles(60, gs, pipelined=False) for gs in (1, 2, 3, 4)}
        assert serial[1] > serial[2] > serial[4]

    def test_single_tile(self):
        assert reduction_cycles(1, 4) >= 1

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            reduction_cycles(0, 1)

    def test_invalid_gs(self):
        with pytest.raises(ValueError):
            reduction_cycles(8, 5)
