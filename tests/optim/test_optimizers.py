"""Tests for optimizers and LR schedulers."""

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(11)


def quadratic_param(start=5.0):
    return nn.Parameter(np.array([start]))


def loss_of(p):
    return (p * p).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = optim.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = quadratic_param()
            opt = optim.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss_of(p).backward()
                opt.step()
            losses[momentum] = abs(p.data[0])
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = quadratic_param(1.0)
        opt = optim.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        loss_of(p).backward()
        grad_no_decay = p.grad.copy()
        opt.step()
        # With decay the effective step is larger than from the gradient alone.
        assert p.data[0] < 1.0 - 0.1 * grad_no_decay[0] + 1e-12

    def test_skips_param_without_grad(self):
        p = quadratic_param()
        opt = optim.SGD([p], lr=0.1)
        opt.step()  # no grad yet — must not crash
        assert p.data[0] == 5.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            optim.SGD([quadratic_param()], lr=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = optim.Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_bias_correction_first_step(self):
        p = quadratic_param(1.0)
        opt = optim.Adam([p], lr=0.1)
        opt.zero_grad()
        loss_of(p).backward()
        opt.step()
        # First Adam step magnitude ~ lr regardless of gradient scale.
        assert np.isclose(abs(1.0 - p.data[0]), 0.1, atol=1e-3)

    def test_adamw_decoupled_decay(self):
        p = nn.Parameter(np.array([1.0]))
        opt = optim.AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        # Zero gradient: m_hat = 0 so only decay acts.
        opt.step()
        assert np.isclose(p.data[0], 1.0 * (1 - 0.1 * 0.5))

    def test_adam_l2_vs_adamw_differ(self):
        p1 = nn.Parameter(np.array([2.0]))
        p2 = nn.Parameter(np.array([2.0]))
        o1 = optim.Adam([p1], lr=0.1, weight_decay=0.5)
        o2 = optim.AdamW([p2], lr=0.1, weight_decay=0.5)
        for opt, p in ((o1, p1), (o2, p2)):
            p.grad = np.array([1.0])
            opt.step()
        assert not np.isclose(p1.data[0], p2.data[0])


class TestClipGradNorm:
    def test_clips_large(self):
        p = nn.Parameter(np.array([1.0, 1.0]))
        p.grad = np.array([3.0, 4.0])
        norm = optim.clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small(self):
        p = nn.Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        optim.clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(p.grad[0], 0.5)

    def test_no_grads(self):
        p = nn.Parameter(np.array([1.0]))
        assert optim.clip_grad_norm([p], 1.0) == 0.0


class TestSchedulers:
    def test_step_lr(self):
        p = quadratic_param()
        opt = optim.SGD([p], lr=1.0)
        sched = optim.StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 1.0, 0.1, 0.1])

    def test_cosine_endpoints(self):
        p = quadratic_param()
        opt = optim.SGD([p], lr=1.0)
        sched = optim.CosineAnnealingLR(opt, t_max=10, min_lr=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] < 0.03
        assert lrs[0] > 0.9

    def test_cosine_clamps_past_tmax(self):
        opt = optim.SGD([quadratic_param()], lr=1.0)
        sched = optim.CosineAnnealingLR(opt, t_max=5, min_lr=0.1)
        for _ in range(10):
            lr = sched.step()
        assert np.isclose(lr, 0.1)

    def test_warmup_cosine(self):
        opt = optim.SGD([quadratic_param()], lr=1.0)
        sched = optim.WarmupCosineLR(opt, warmup=5, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert np.isclose(lrs[0], 0.2)  # 1/5 through warmup
        assert np.isclose(lrs[4], 1.0)  # warmup done
        assert lrs[-1] < 0.05

    def test_scheduler_updates_optimizer(self):
        opt = optim.SGD([quadratic_param()], lr=1.0)
        sched = optim.StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0  # first step completes at base LR
        sched.step()
        assert opt.lr == 0.5
