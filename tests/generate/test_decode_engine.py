"""The decode engine's anchor invariant, pinned against the full pass.

N-token generation through the KV-code cache must be **bit-identical**
to N full-context ``next_token_logprobs`` passes over the grown prompt —
no tolerance, no approximation.  These tests pin that anchor for single
sequences, ragged batches, and the version-keyed cache's resync after a
QAT-style scale bump, and tie the decode step's GEMM shapes back to the
accelerator workload model (Table IV's M=1 decode phase).
"""

import numpy as np
import pytest

from repro.generate import DecodeEngine, KVCodeCache, decode_step
from repro.serve import build_endpoint


def oracle_logprobs(endpoint, context: np.ndarray) -> np.ndarray:
    """Full-context recompute: one ``next_token_logprobs`` pass, no cache.

    Must be called inside the endpoint's engine context so the model
    runs the same integer datapath the decode engine executes through.
    """
    return endpoint.model.next_token_logprobs(
        np.asarray(context, dtype=np.int64)[None]
    )[0]


def prompts_for(endpoint, lengths, seed=0):
    rng = np.random.default_rng(seed)
    vocab = endpoint.model.config.vocab_size
    return [rng.integers(0, vocab, size=n) for n in lengths]


# ----------------------------------------------------------------------
# The anchor: N generated tokens == N full-context passes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("prompt_len,new_tokens", [(1, 6), (5, 8), (12, 4)])
def test_generation_matches_full_context_oracle(prompt_len, new_tokens):
    endpoint = build_endpoint("llama-gen")
    (prompt,) = prompts_for(endpoint, [prompt_len], seed=prompt_len)
    with endpoint.engines.engine() as plan:
        tokens, rows, state = endpoint.decoder.generate(plan, prompt, new_tokens)
        assert tokens.shape[0] == rows.shape[0] == new_tokens
        for k in range(new_tokens):
            context = np.concatenate([prompt, tokens[:k]])
            expected = oracle_logprobs(endpoint, context)
            assert np.array_equal(rows[k], expected), (
                f"step {k}: cached decode drifted from the full-context pass"
            )
            assert tokens[k] == expected.argmax()
        # The state's final context is the prompt plus everything kept.
        assert np.array_equal(state.tokens, np.concatenate([prompt, tokens[:-1]]))


def test_decode_step_matches_full_context_pass():
    """The ``decode_step(plan, cache, token)`` form of the same anchor."""
    endpoint = build_endpoint("llama-gen")
    (prompt,) = prompts_for(endpoint, [4], seed=3)
    with endpoint.engines.engine() as plan:
        state = endpoint.decoder.prefill(plan, [prompt])[0]
        assert np.array_equal(state.logprobs, oracle_logprobs(endpoint, prompt))
        context = prompt
        for _ in range(5):
            token = int(state.logprobs.argmax())
            logp = decode_step(plan, state, token)
            context = np.concatenate([context, [token]])
            assert np.array_equal(logp, oracle_logprobs(endpoint, context))
            assert logp is not state.logprobs or np.array_equal(logp, state.logprobs)
            assert np.array_equal(state.logprobs, logp)


def test_ragged_batch_decode_matches_single_sequence():
    """Batched decode over ragged contexts == each sequence decoded alone."""
    endpoint = build_endpoint("llama-gen")
    lengths = [1, 3, 7, 12]
    prompts = prompts_for(endpoint, lengths, seed=11)
    with endpoint.engines.engine() as plan:
        batched = endpoint.decoder.prefill(plan, prompts)
        singles = [endpoint.decoder.prefill(plan, [p])[0] for p in prompts]
        for b, s in zip(batched, singles):
            assert np.array_equal(b.logprobs, s.logprobs)
        for _ in range(4):
            tokens = np.array(
                [int(s.logprobs.argmax()) for s in batched], dtype=np.int64
            )
            endpoint.decoder.decode(plan, batched, tokens)
            for row, single in enumerate(singles):
                endpoint.decoder.decode(
                    plan, [single], tokens[row : row + 1]
                )
                assert np.array_equal(batched[row].logprobs, single.logprobs), (
                    f"row {row}: ragged-batch decode drifted from solo decode"
                )


def test_decode_refuses_exhausted_and_foreign_state():
    endpoint = build_endpoint("llama-gen")
    max_len = endpoint.model.config.max_seq_len
    (prompt,) = prompts_for(endpoint, [max_len], seed=5)
    with endpoint.engines.engine() as plan:
        state = endpoint.decoder.prefill(plan, [prompt])[0]
        assert state.exhausted
        with pytest.raises(ValueError, match="context window full"):
            endpoint.decoder.decode(plan, [state], np.array([0]))
        other = DecodeEngine(endpoint.model)
        (short,) = prompts_for(endpoint, [2], seed=5)
        fresh = endpoint.decoder.prefill(plan, [short])[0]
        with pytest.raises(ValueError, match="different DecodeEngine"):
            other.decode(plan, [fresh], np.array([0]))


def test_prefill_rejects_bad_prompts():
    endpoint = build_endpoint("llama-gen")
    max_len = endpoint.model.config.max_seq_len
    vocab = endpoint.model.config.vocab_size
    with endpoint.engines.engine() as plan:
        with pytest.raises(ValueError, match="1-D"):
            endpoint.decoder.prefill(plan, [np.zeros((2, 2), dtype=np.int64)])
        with pytest.raises(ValueError, match="1-D"):
            endpoint.decoder.prefill(
                plan, [np.zeros(max_len + 1, dtype=np.int64)]
            )
        with pytest.raises(ValueError, match="token ids"):
            endpoint.decoder.prefill(plan, [np.array([vocab], dtype=np.int64)])


# ----------------------------------------------------------------------
# Version-keyed cache: a QAT-style scale bump resyncs, never staleness
# ----------------------------------------------------------------------


def test_cache_rederives_after_scale_rebind_same_values():
    """Rebinding a scale Parameter (version bump, same values) forces a
    re-derivation that reproduces the original floats bit for bit."""
    endpoint = build_endpoint("llama-gen")
    (prompt,) = prompts_for(endpoint, [6], seed=7)
    layer = endpoint.model.layers[0].attention.k_proj
    with endpoint.engines.engine() as plan:
        state = endpoint.decoder.prefill(plan, [prompt])[0]
        names = endpoint.decoder._names[0]
        before_k, before_v = state.cache.ensure_derived(
            0, plan, names["k"], names["v"], endpoint.decoder.rope
        )
        before_k, before_v = before_k.copy(), before_v.copy()
        key_before = plan.scale_key(names["k"])
        layer.act_quantizer.scale.data = layer.act_quantizer.scale.data.copy()
        assert plan.scale_key(names["k"]) != key_before
        after_k, after_v = state.cache.ensure_derived(
            0, plan, names["k"], names["v"], endpoint.decoder.rope
        )
        # Same constants => the re-derived context is bit-identical.
        assert np.array_equal(after_k, before_k)
        assert np.array_equal(after_v, before_v)
        assert state.cache._derived[0] == state.cache.length


def test_derived_floats_resync_after_qat_scale_change():
    """A real scale *change* mid-sequence: the derived context is re-
    derived under the new constants — exactly what the current plan
    dequantizes the stored codes to, never the pre-change floats.  (The
    stored *codes* are the sequence's history under the model that
    produced them; a QAT step changes how they dequantize, and the
    version key is what keeps the float buffers honest about it.)"""
    from repro.nn.attention import apply_rope_at

    endpoint = build_endpoint("llama-gen")
    (prompt,) = prompts_for(endpoint, [5], seed=9)
    quantizer = endpoint.model.layers[0].attention.k_proj.accumulator.quantizers[-1]
    original = quantizer.scale.data.copy()
    with endpoint.engines.engine() as plan:
        state = endpoint.decoder.prefill(plan, [prompt])[0]
        names = endpoint.decoder._names[0]
        rope = endpoint.decoder.rope
        before_k, _ = state.cache.ensure_derived(0, plan, names["k"], names["v"], rope)
        before_k = before_k.copy()
        try:
            # The QAT-step analogue: rebind with doubled output scales
            # (the accumulator's final alpha IS the dequant constant).
            quantizer.scale.data = original * 2.0
            after_k, after_v = state.cache.ensure_derived(
                0, plan, names["k"], names["v"], rope
            )
            assert not np.array_equal(after_k, before_k), (
                "scale bump did not invalidate the derived float context"
            )
            # The resynced floats are the pure function of the stored
            # codes and the *current* plan constants.
            cache = state.cache
            m, heads, hd = cache.length, cache.num_heads, cache.head_dim
            raw_k = plan.dequantize_codes(
                names["k"], cache.k_codes[0][:m], (m, cache.hidden)
            ).reshape(m, heads, hd).transpose(1, 0, 2)
            raw_v = plan.dequantize_codes(
                names["v"], cache.v_codes[0][:m], (m, cache.hidden)
            ).reshape(m, heads, hd).transpose(1, 0, 2)
            cos, sin = rope
            positions = np.arange(m, dtype=np.int64)
            expected_k = apply_rope_at(raw_k[None], cos, sin, positions[None])[0]
            assert np.array_equal(after_k, expected_k)
            assert np.array_equal(after_v, raw_v)
        finally:
            quantizer.scale.data = original


def test_cache_overflow_raises():
    cache = KVCodeCache(num_blocks=1, max_ctx=4, hidden=8, num_heads=2)
    cache.append(0, np.zeros((3, 8), dtype=np.int64), np.zeros((3, 8), dtype=np.int64))
    cache.advance(3)
    with pytest.raises(ValueError, match="overflow"):
        cache.append(
            0, np.zeros((2, 8), dtype=np.int64), np.zeros((2, 8), dtype=np.int64)
        )


# ----------------------------------------------------------------------
# Decode shape groups vs the accelerator workload model (Table IV)
# ----------------------------------------------------------------------


def test_decode_shape_groups_match_accelerator_decode_phase():
    """The planner's decode-step GEMM descriptors are the serving-scale
    mirror of ``llama2_7b_workload(phase="decode")``: every projection
    runs M=1 per new token (the workload model's ``psum_m=1`` decode
    phase), with the same per-role (K, N) structure — q/k/v and attn_out
    square in hidden, gate/up hidden→FFN, down FFN→hidden."""
    from repro.accelerator.workloads import llama2_7b_workload

    endpoint = build_endpoint("llama-gen")
    config = endpoint.model.config
    hidden, ffn = config.hidden, config.hidden * config.ffn_mult
    groups = endpoint.plan.decode_shape_groups()
    gemms = {g.name: g for group in groups.values() for g in group}

    # Every decode-path projection of every block is present, at M=1.
    roles = {
        "attention.q_proj": (hidden, hidden),
        "attention.k_proj": (hidden, hidden),
        "attention.v_proj": (hidden, hidden),
        "attention.out_proj": (hidden, hidden),
        "ffn.gate_proj": (hidden, ffn),
        "ffn.up_proj": (hidden, ffn),
        "ffn.down_proj": (ffn, hidden),
    }
    for i in range(config.num_layers):
        for role, (k, n) in roles.items():
            gemm = gemms[f"layers.{i}.{role}"]
            assert gemm.m == 1, f"{gemm.name}: decode GEMM must be M=1"
            assert (gemm.k, gemm.n) == (k, n)
    assert gemms["lm_head"].m == 1
    assert (gemms["lm_head"].k, gemms["lm_head"].n) == (hidden, config.vocab_size)

    # Grouping is consistent with the plan's reduction-shape groups: a
    # descriptor's tile count is its group key's.
    for shape, group in groups.items():
        for gemm in group:
            assert gemm.num_tiles == shape.num_tiles

    # The full-size workload model agrees on the phase semantics: decode
    # keeps one output row's PSUMs live (psum_m=1) for every projection —
    # the same M=1-per-token shape the planner descriptors report — and
    # covers the same projection roles (qkv fused, attn_out, gate/up/down).
    workload = llama2_7b_workload(seq_len=64, phase="decode")
    assert {g.name for g in workload} == {
        "qkv_proj", "attn_out", "gate_proj", "up_proj", "down_proj"
    }
    assert all(g.psum_m == 1 for g in workload)
    qkv = next(g for g in workload if g.name == "qkv_proj")
    assert qkv.co == 3 * qkv.ci  # fused q/k/v == the planner's three squares
