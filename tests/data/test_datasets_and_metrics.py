"""Tests for synthetic datasets and metrics."""

import numpy as np
import pytest

from repro import data
from repro.data import glue, reasoning


class TestMetrics:
    def test_accuracy_from_logits(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert data.accuracy(logits, np.array([1, 0])) == 1.0

    def test_accuracy_from_labels(self):
        assert data.accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_f1_perfect(self):
        preds = np.array([1, 0, 1, 0])
        assert data.f1_binary(preds, preds.copy()) == 1.0

    def test_f1_no_positives(self):
        assert data.f1_binary(np.zeros(4, dtype=int), np.ones(4, dtype=int)) == 0.0

    def test_matthews_perfect_and_inverted(self):
        y = np.array([0, 1, 0, 1])
        assert data.matthews_corr(y, y) == 1.0
        assert data.matthews_corr(1 - y, y) == -1.0

    def test_matthews_random_near_zero(self):
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 2, 2000)
        targets = rng.integers(0, 2, 2000)
        assert abs(data.matthews_corr(preds, targets)) < 0.1

    def test_matthews_degenerate(self):
        assert data.matthews_corr(np.zeros(4, dtype=int), np.zeros(4, dtype=int)) == 0.0

    def test_pearson_linear(self):
        x = np.linspace(0, 1, 20)
        assert data.pearson_corr(2 * x + 1, x) == pytest.approx(1.0)

    def test_pearson_constant_output(self):
        assert data.pearson_corr(np.ones(5), np.arange(5.0)) == 0.0

    def test_spearman_monotonic(self):
        x = np.linspace(0, 1, 20)
        assert data.spearman_corr(np.exp(x), x) == pytest.approx(1.0)

    def test_miou_perfect(self):
        mask = np.random.default_rng(1).integers(0, 3, size=(2, 8, 8))
        assert data.mean_iou(mask, mask, num_classes=3) == 1.0

    def test_miou_from_logits(self):
        targets = np.array([[0, 1], [1, 0]])
        logits = np.zeros((2, 2, 2))
        logits[..., 1] = (targets == 1) * 10.0
        logits[..., 0] = (targets == 0) * 10.0
        assert data.mean_iou(logits, targets) == 1.0

    def test_miou_absent_class_excluded(self):
        preds = np.zeros((4, 4), dtype=int)
        targets = np.zeros((4, 4), dtype=int)
        # class 1 and 2 absent everywhere -> mean over class 0 only
        assert data.mean_iou(preds, targets, num_classes=3) == 1.0

    def test_miou_half_overlap(self):
        targets = np.zeros((2, 4), dtype=int)
        targets[:, 2:] = 1
        preds = np.zeros((2, 4), dtype=int)
        preds[:, 1:3] = 1
        # class1: inter 2, union 6 -> 1/3; class0: inter 2, union 6 -> 1/3
        assert data.mean_iou(preds, targets, num_classes=2) == pytest.approx(1 / 3)


class TestGlueTasks:
    def test_all_tasks_generate(self):
        tasks = data.all_glue_tasks()
        assert set(tasks) == set(data.GLUE_TASK_NAMES)

    def test_deterministic(self):
        t1 = data.make_glue_task("QNLI")
        t2 = data.make_glue_task("QNLI")
        assert np.array_equal(t1.train_x, t2.train_x)
        assert np.array_equal(t1.eval_y, t2.eval_y)

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            data.make_glue_task("SST-2")

    def test_token_range(self):
        for task in data.all_glue_tasks().values():
            assert task.train_x.min() >= 0
            assert task.train_x.max() < data.VOCAB_SIZE

    def test_shapes(self):
        task = data.make_glue_task("MNLI")
        assert task.train_x.shape[1] == data.SEQ_LEN
        assert task.num_classes == 3
        assert set(np.unique(task.train_y)) <= {0, 1, 2}

    def test_stsb_regression_range(self):
        task = data.make_glue_task("STS-B")
        assert task.regression
        assert task.train_y.min() >= 0.0
        assert task.train_y.max() <= 5.0
        assert len(np.unique(task.train_y)) == 5

    def test_cola_uses_matthews(self):
        task = data.make_glue_task("CoLA")
        assert task.metric_name == "matthews"

    def test_pair_structure_has_sep(self):
        task = data.make_glue_task("RTE")
        assert (task.train_x == glue.SEP).sum(axis=None) >= len(task.train_x)
        assert (task.train_x[:, 0] == glue.CLS).all()

    def test_pair_label_balance(self):
        task = data.make_glue_task("QNLI")
        pos_frac = task.train_y.mean()
        assert 0.3 < pos_frac < 0.7

    def test_pattern_is_learnable_by_rule(self):
        """A perfect cross-segment key matcher beats chance despite label noise."""
        task = data.make_glue_task("QNLI")
        sep_pos = (data.SEQ_LEN - 2) // 2 + 1
        correct = 0
        for x, y in zip(task.eval_x, task.eval_y):
            seg1 = set(x[1:sep_pos]) & set(range(glue.KEY_BASE, glue.NOISE_BASE))
            seg2 = set(x[sep_pos + 1 :]) & set(range(glue.KEY_BASE, glue.NOISE_BASE))
            pred = 1 if seg1 & seg2 else 0
            correct += pred == y
        assert correct / len(task.eval_y) > 0.85

    def test_task_sizes(self):
        task = data.make_glue_task("RTE")
        assert task.sizes["train"] == 384

    def test_size_overrides(self):
        task = data.make_glue_task("RTE", n_train=32, n_eval=16)
        assert task.sizes == {"train": 32, "eval": 16}


class TestSegmentationTask:
    def test_generation_shapes(self):
        task = data.make_segmentation_task()
        assert task.train_x.shape[1:] == (3, 32, 32)
        assert task.train_y.shape[1:] == (16, 16)

    def test_mask_classes_in_range(self):
        task = data.make_segmentation_task()
        assert task.train_y.min() >= 0
        assert task.train_y.max() < task.num_classes

    def test_deterministic(self):
        t1 = data.make_segmentation_task()
        t2 = data.make_segmentation_task()
        assert np.array_equal(t1.train_x, t2.train_x)

    def test_images_correlate_with_masks(self):
        """Class colours must be recoverable from images (learnable)."""
        task = data.make_segmentation_task()
        img = task.train_x[0]
        mask = task.train_y[0]
        up_mask = mask.repeat(2, 0).repeat(2, 1)
        # red channel mean should differ between background and class 1 areas
        if (up_mask == 1).any():
            red_fg = img[0][up_mask == 1].mean()
            red_bg = img[0][up_mask == 0].mean()
            assert abs(red_fg - red_bg) > 0.2

    def test_background_present(self):
        task = data.make_segmentation_task()
        assert (task.train_y == 0).mean() > 0.2


class TestReasoningTasks:
    def test_chain_step_full_cycle(self):
        seen = set()
        t = 0
        for _ in range(reasoning.VOCAB_SIZE):
            seen.add(t)
            t = int(reasoning.chain_step(np.asarray(t)))
        assert len(seen) == reasoning.VOCAB_SIZE

    def test_corpus_shapes(self):
        x, y = data.make_lm_corpus(n_sequences=10, seq_len=12)
        assert x.shape == (10, 12)
        assert y.shape == (10, 12)
        assert np.array_equal(x[:, 1:], y[:, :-1])

    def test_sample_chain_mostly_follows_rule(self):
        rng = np.random.default_rng(0)
        seqs = reasoning.sample_chain(rng, 50, 20, eps=0.1)
        follows = reasoning.chain_step(seqs[:, :-1]) == seqs[:, 1:]
        assert 0.8 < follows.mean() < 0.97

    def test_all_tasks_generate(self):
        tasks = data.all_zcsr_tasks()
        assert set(tasks) == set(data.ZCSR_TASK_NAMES)
        assert len(tasks) == 7

    def test_example_structure(self):
        task = data.make_zcsr_task("HellaSwag")
        ex = task.examples[0]
        assert ex.choices.shape == (4, 3)
        assert 0 <= ex.answer < 4

    def test_answer_positions_shuffled(self):
        task = data.make_zcsr_task("Arc-e")
        answers = [ex.answer for ex in task.examples]
        assert len(set(answers)) > 1

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            data.make_zcsr_task("SQuAD")

    def test_oracle_chain_scorer_beats_chance(self):
        """An oracle scoring by chain-consistency gets high accuracy."""
        task = data.make_zcsr_task("PIQA")

        class Oracle:
            def sequence_logprob(self, tokens, prefix_len):
                scores = []
                for row in tokens:
                    matches = (
                        reasoning.chain_step(row[prefix_len - 1 : -1]) == row[prefix_len:]
                    ).sum()
                    scores.append(float(matches))
                return np.array(scores)

        acc = task.evaluate(Oracle())
        assert acc > 0.8

    def test_random_scorer_near_chance(self):
        task = data.make_zcsr_task("HellaSwag")
        rng = np.random.default_rng(0)

        class Random:
            def sequence_logprob(self, tokens, prefix_len):
                return rng.random(len(tokens))

        acc = task.evaluate(Random())
        assert 0.1 < acc < 0.45
