"""InferenceService tests: dispatch, backpressure, drain, failures."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BackpressureError,
    BatchPolicy,
    EndpointRegistry,
    InferenceService,
    ServiceClosedError,
    default_registry,
)


def response_bits(result):
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise AssertionError(f"no raw output on {type(result).__name__}")


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class StubEndpoint:
    """Duck-typed endpoint whose inference can be blocked or made to fail."""

    def __init__(self, name="stub", fail=False):
        self.name = name
        self.fail = fail
        self.release = threading.Event()
        self.release.set()
        self.calls = []
        self.lock = threading.RLock()

    def request_payload(self, request):
        return np.asarray(request, dtype=float)

    def coalesce_key(self, payload):
        return (self.name, payload.shape)

    def infer_batch(self, payloads):
        self.release.wait(5.0)
        if self.fail:
            raise RuntimeError("stub inference failure")
        self.calls.append(len(payloads))
        return [float(p.sum()) for p in payloads]


def stub_registry(**kwargs):
    registry = EndpointRegistry()
    endpoint = StubEndpoint(**kwargs)
    registry.register(endpoint)
    return registry, endpoint


class TestDispatch:
    def test_burst_equals_sequential_oracle(self, registry):
        endpoint = registry.get("bert")
        rng = np.random.default_rng(0)
        requests = [endpoint.synth_request(rng) for _ in range(10)]
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002)
        ) as service:
            futures = [service.submit("bert", r) for r in requests]
            responses = [f.result(30.0) for f in futures]
        for request, response in zip(requests, responses):
            single = endpoint.serve_one(request)
            assert np.array_equal(response.result.logits, single.logits)

    def test_multi_worker_mixed_scenarios(self, registry):
        rng = np.random.default_rng(1)
        requests = [
            (name, registry.get(name).synth_request(rng))
            for name in ("bert", "llama", "segformer")
            for _ in range(3)
        ]
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002), workers=3
        ) as service:
            futures = [service.submit(name, r) for name, r in requests]
            responses = [f.result(60.0) for f in futures]
        for (name, request), response in zip(requests, responses):
            assert response.endpoint == name
            single = registry.get(name).serve_one(request)
            assert np.array_equal(
                response_bits(response.result), response_bits(single)
            )

    def test_request_ids_and_timing_fields(self, registry):
        endpoint = registry.get("bert")
        rng = np.random.default_rng(2)
        with InferenceService(registry) as service:
            response = service.serve("bert", endpoint.synth_request(rng), timeout=30.0)
        assert response.timing.batch_size >= 1
        assert response.timing.latency_s >= response.timing.queue_s >= 0.0

    def test_coalescing_happens(self, registry):
        """A burst under a generous delay coalesces into few batches."""
        endpoint = registry.get("bert")
        rng = np.random.default_rng(3)
        requests = [endpoint.synth_request(rng) for _ in range(8)]
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=8, max_delay_s=0.200)
        ).start()
        try:
            futures = [service.submit("bert", r) for r in requests]
            responses = [f.result(30.0) for f in futures]
        finally:
            metrics = service.drain()
        assert max(r.timing.batch_size for r in responses) >= 2
        stats = metrics["endpoints"]["bert"]
        assert stats["batches"] < len(requests)


class TestBackpressure:
    def test_queue_full_rejects(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()  # park the worker mid-batch
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            queue_limit=2,
        ).start()
        try:
            service.submit("stub", [1.0])  # picked up by the worker
            time.sleep(0.05)  # the worker is now blocked inside infer_batch
            service.submit("stub", [2.0])
            service.submit("stub", [3.0])
            with pytest.raises(BackpressureError):
                service.submit("stub", [4.0])
            assert service.metrics.rejected == 1
        finally:
            endpoint.release.set()
            service.drain()

    def test_block_on_full_waits_for_space(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            queue_limit=1,
            block_on_full=True,
        ).start()
        try:
            first = service.submit("stub", [1.0])
            time.sleep(0.05)
            second = service.submit("stub", [2.0])  # fills the queue
            unblocked = []

            def blocked_submit():
                unblocked.append(service.submit("stub", [3.0]))

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            time.sleep(0.05)
            assert not unblocked  # still waiting for queue space
            endpoint.release.set()
            thread.join(5.0)
            assert unblocked
            assert first.result(5.0).result == 1.0
            assert second.result(5.0).result == 2.0
            assert unblocked[0].result(5.0).result == 3.0
        finally:
            endpoint.release.set()
            service.drain()


class TestShutdown:
    def test_drain_flushes_partial_batches(self):
        """Queued requests under a huge delay still complete on drain."""
        registry, _ = stub_registry()
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=64, max_delay_s=60.0)
        ).start()
        futures = [service.submit("stub", [float(i)]) for i in range(5)]
        metrics = service.drain()
        assert [f.result(5.0).result for f in futures] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert metrics["completed"] == 5

    def test_submit_after_drain_raises(self, registry):
        endpoint = registry.get("bert")
        request = endpoint.synth_request(np.random.default_rng(5))
        service = InferenceService(registry).start()
        service.drain()
        with pytest.raises(ServiceClosedError):
            service.submit("bert", request)

    def test_drain_idempotent(self, registry):
        service = InferenceService(registry).start()
        service.drain()
        assert service.drain()["completed"] == 0

    def test_abort_rejects_queued(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=1, max_delay_s=0.0), queue_limit=8
        ).start()
        in_flight = service.submit("stub", [1.0])
        time.sleep(0.05)  # the worker is now blocked inside infer_batch
        queued = [service.submit("stub", [2.0]), service.submit("stub", [3.0])]
        # Abort while the worker is parked: the queued requests are
        # rejected before the in-flight batch can come back for them.
        aborter = threading.Thread(target=service.abort)
        aborter.start()
        for future in queued:
            with pytest.raises(ServiceClosedError):
                future.result(5.0)
        endpoint.release.set()
        aborter.join(5.0)
        assert not aborter.is_alive()
        in_flight.result(5.0)  # the batch already executing completes

    def test_invalid_construction(self, registry):
        with pytest.raises(ValueError):
            InferenceService(registry, workers=0)
        with pytest.raises(ValueError):
            InferenceService(registry, queue_limit=0)


class TestFailures:
    def test_batch_failure_rejects_requests_and_service_survives(self):
        registry, endpoint = stub_registry(fail=True)
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=2, max_delay_s=0.0)
        ).start()
        try:
            future = service.submit("stub", [1.0])
            with pytest.raises(RuntimeError, match="stub inference failure"):
                future.result(5.0)
            endpoint.fail = False
            ok = service.submit("stub", [2.0]).result(5.0)
            assert ok.result == 2.0
            assert service.metrics.failed == 1
        finally:
            service.drain()

    def test_invalid_request_rejected_at_submit(self, registry):
        with InferenceService(registry) as service:
            with pytest.raises(TypeError):
                service.submit("bert", object())
            assert service.queue_depth() == 0

    def test_short_result_list_rejects_whole_batch(self):
        """A dispatcher/endpoint returning fewer results than requests
        must reject the batch — not leave the tail futures hanging."""
        registry, _ = stub_registry()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.01),
            dispatcher=lambda endpoint, payloads: payloads[:-1],  # drops one
        ).start()
        try:
            futures = [service.submit("stub", [float(i)]) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match=r"returned \d+ results"):
                    future.result(5.0)
            assert service.metrics.failed == 3
        finally:
            service.drain()

    def test_dispatcher_replaces_endpoint_execution(self):
        registry, endpoint = stub_registry()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=2, max_delay_s=0.0),
            dispatcher=lambda name, payloads: [f"{name}:{p.sum()}" for p in payloads],
        ).start()
        try:
            result = service.submit("stub", [2.0, 3.0]).result(5.0)
            assert result.result == "stub:5.0"
            assert endpoint.calls == []  # endpoint.infer_batch never ran
        finally:
            service.drain()


class TestMetrics:
    def test_snapshot_counts(self, registry):
        endpoint = registry.get("bert")
        rng = np.random.default_rng(4)
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002)
        ) as service:
            futures = [
                service.submit("bert", endpoint.synth_request(rng)) for _ in range(6)
            ]
            for future in futures:
                future.result(30.0)
            snapshot = service.metrics.snapshot()
        assert snapshot["submitted"] == snapshot["completed"] == 6
        assert snapshot["throughput_rps"] > 0
        bert_stats = snapshot["endpoints"]["bert"]
        assert bert_stats["requests"] == 6
        assert bert_stats["latency"]["p95_s"] >= bert_stats["latency"]["p50_s"]
        assert bert_stats["mean_batch"] >= 1.0
