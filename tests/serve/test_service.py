"""InferenceService tests: dispatch, backpressure, drain, failures."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BackpressureError,
    BatchPolicy,
    DeadlineExceeded,
    EndpointRegistry,
    InferenceService,
    ServiceClosedError,
    SLOBudget,
    Shed,
    default_registry,
    slo_budget_from_env,
)
from repro.serve.shm import ArenaExhaustedError
from repro.serve.types import DeadlineMiss, RequestRejected


def response_bits(result):
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise AssertionError(f"no raw output on {type(result).__name__}")


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class StubEndpoint:
    """Duck-typed endpoint whose inference can be blocked or made to fail."""

    def __init__(self, name="stub", fail=False):
        self.name = name
        self.fail = fail
        self.release = threading.Event()
        self.release.set()
        self.calls = []
        self.lock = threading.RLock()

    def request_payload(self, request):
        return np.asarray(request, dtype=float)

    def coalesce_key(self, payload):
        return (self.name, payload.shape)

    def infer_batch(self, payloads):
        self.release.wait(5.0)
        if self.fail:
            raise RuntimeError("stub inference failure")
        self.calls.append(len(payloads))
        return [float(p.sum()) for p in payloads]


def stub_registry(**kwargs):
    registry = EndpointRegistry()
    endpoint = StubEndpoint(**kwargs)
    registry.register(endpoint)
    return registry, endpoint


class TestDispatch:
    def test_burst_equals_sequential_oracle(self, registry):
        endpoint = registry.get("bert")
        rng = np.random.default_rng(0)
        requests = [endpoint.synth_request(rng) for _ in range(10)]
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002)
        ) as service:
            futures = [service.submit("bert", r) for r in requests]
            responses = [f.result(30.0) for f in futures]
        for request, response in zip(requests, responses):
            single = endpoint.serve_one(request)
            assert np.array_equal(response.result.logits, single.logits)

    def test_multi_worker_mixed_scenarios(self, registry):
        rng = np.random.default_rng(1)
        requests = [
            (name, registry.get(name).synth_request(rng))
            for name in ("bert", "llama", "segformer")
            for _ in range(3)
        ]
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002), workers=3
        ) as service:
            futures = [service.submit(name, r) for name, r in requests]
            responses = [f.result(60.0) for f in futures]
        for (name, request), response in zip(requests, responses):
            assert response.endpoint == name
            single = registry.get(name).serve_one(request)
            assert np.array_equal(
                response_bits(response.result), response_bits(single)
            )

    def test_request_ids_and_timing_fields(self, registry):
        endpoint = registry.get("bert")
        rng = np.random.default_rng(2)
        with InferenceService(registry) as service:
            response = service.serve("bert", endpoint.synth_request(rng), timeout=30.0)
        assert response.timing.batch_size >= 1
        assert response.timing.latency_s >= response.timing.queue_s >= 0.0

    def test_coalescing_happens(self, registry):
        """A burst under a generous delay coalesces into few batches."""
        endpoint = registry.get("bert")
        rng = np.random.default_rng(3)
        requests = [endpoint.synth_request(rng) for _ in range(8)]
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=8, max_delay_s=0.200)
        ).start()
        try:
            futures = [service.submit("bert", r) for r in requests]
            responses = [f.result(30.0) for f in futures]
        finally:
            metrics = service.drain()
        assert max(r.timing.batch_size for r in responses) >= 2
        stats = metrics["endpoints"]["bert"]
        assert stats["batches"] < len(requests)


class TestBackpressure:
    def test_queue_full_rejects(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()  # park the worker mid-batch
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            queue_limit=2,
        ).start()
        try:
            service.submit("stub", [1.0])  # picked up by the worker
            time.sleep(0.05)  # the worker is now blocked inside infer_batch
            service.submit("stub", [2.0])
            service.submit("stub", [3.0])
            with pytest.raises(BackpressureError):
                service.submit("stub", [4.0])
            assert service.metrics.rejected == 1
        finally:
            endpoint.release.set()
            service.drain()

    def test_block_on_full_waits_for_space(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            queue_limit=1,
            block_on_full=True,
        ).start()
        try:
            first = service.submit("stub", [1.0])
            time.sleep(0.05)
            second = service.submit("stub", [2.0])  # fills the queue
            unblocked = []

            def blocked_submit():
                unblocked.append(service.submit("stub", [3.0]))

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            time.sleep(0.05)
            assert not unblocked  # still waiting for queue space
            endpoint.release.set()
            thread.join(5.0)
            assert unblocked
            assert first.result(5.0).result == 1.0
            assert second.result(5.0).result == 2.0
            assert unblocked[0].result(5.0).result == 3.0
        finally:
            endpoint.release.set()
            service.drain()


class TestShutdown:
    def test_drain_flushes_partial_batches(self):
        """Queued requests under a huge delay still complete on drain."""
        registry, _ = stub_registry()
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=64, max_delay_s=60.0)
        ).start()
        futures = [service.submit("stub", [float(i)]) for i in range(5)]
        metrics = service.drain()
        assert [f.result(5.0).result for f in futures] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert metrics["completed"] == 5

    def test_submit_after_drain_raises(self, registry):
        endpoint = registry.get("bert")
        request = endpoint.synth_request(np.random.default_rng(5))
        service = InferenceService(registry).start()
        service.drain()
        with pytest.raises(ServiceClosedError):
            service.submit("bert", request)

    def test_drain_idempotent(self, registry):
        service = InferenceService(registry).start()
        service.drain()
        assert service.drain()["completed"] == 0

    def test_abort_rejects_queued(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=1, max_delay_s=0.0), queue_limit=8
        ).start()
        in_flight = service.submit("stub", [1.0])
        time.sleep(0.05)  # the worker is now blocked inside infer_batch
        queued = [service.submit("stub", [2.0]), service.submit("stub", [3.0])]
        # Abort while the worker is parked: the queued requests are
        # rejected before the in-flight batch can come back for them.
        aborter = threading.Thread(target=service.abort)
        aborter.start()
        for future in queued:
            with pytest.raises(ServiceClosedError):
                future.result(5.0)
        endpoint.release.set()
        aborter.join(5.0)
        assert not aborter.is_alive()
        in_flight.result(5.0)  # the batch already executing completes

    def test_invalid_construction(self, registry):
        with pytest.raises(ValueError):
            InferenceService(registry, workers=0)
        with pytest.raises(ValueError):
            InferenceService(registry, queue_limit=0)


class TestFailures:
    def test_batch_failure_rejects_requests_and_service_survives(self):
        registry, endpoint = stub_registry(fail=True)
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=2, max_delay_s=0.0)
        ).start()
        try:
            future = service.submit("stub", [1.0])
            with pytest.raises(RuntimeError, match="stub inference failure"):
                future.result(5.0)
            endpoint.fail = False
            ok = service.submit("stub", [2.0]).result(5.0)
            assert ok.result == 2.0
            assert service.metrics.failed == 1
        finally:
            service.drain()

    def test_invalid_request_rejected_at_submit(self, registry):
        with InferenceService(registry) as service:
            with pytest.raises(TypeError):
                service.submit("bert", object())
            assert service.queue_depth() == 0

    def test_short_result_list_rejects_whole_batch(self):
        """A dispatcher/endpoint returning fewer results than requests
        must reject the batch — not leave the tail futures hanging."""
        registry, _ = stub_registry()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.01),
            dispatcher=lambda endpoint, payloads: payloads[:-1],  # drops one
        ).start()
        try:
            futures = [service.submit("stub", [float(i)]) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match=r"returned \d+ results"):
                    future.result(5.0)
            assert service.metrics.failed == 3
        finally:
            service.drain()

    def test_dispatcher_replaces_endpoint_execution(self):
        registry, endpoint = stub_registry()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=2, max_delay_s=0.0),
            dispatcher=lambda name, payloads: [f"{name}:{p.sum()}" for p in payloads],
        ).start()
        try:
            result = service.submit("stub", [2.0, 3.0]).result(5.0)
            assert result.result == "stub:5.0"
            assert endpoint.calls == []  # endpoint.infer_batch never ran
        finally:
            service.drain()


class TestDeadlines:
    def test_already_dead_submission_fast_fails_typed(self):
        registry, _ = stub_registry()
        with InferenceService(registry) as service:
            future = service.submit("stub", [1.0], deadline_s=0.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                future.result(5.0)
            assert excinfo.value.endpoint == "stub"
            assert excinfo.value.reason == "queued"
            assert isinstance(excinfo.value, RequestRejected)
            snapshot = service.metrics.snapshot()
        assert snapshot["deadline_exceeded"]["total"] == 1
        assert snapshot["deadline_exceeded"]["by_stage"] == {"queued": 1}

    def test_queued_request_expires_while_worker_is_busy(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry, policy=BatchPolicy(max_batch=1, max_delay_s=0.0), queue_limit=8
        ).start()
        try:
            in_flight = service.submit("stub", [1.0])
            time.sleep(0.05)  # worker parked inside infer_batch
            doomed = service.submit("stub", [2.0], deadline_s=0.05)
            time.sleep(0.1)  # the deadline dies while the worker is parked
            endpoint.release.set()
            # The worker finishes the in-flight batch, loops, and must
            # expire the dead request instead of serving it late.
            with pytest.raises(DeadlineExceeded) as excinfo:
                doomed.result(5.0)
            assert excinfo.value.reason in ("queued", "unmeetable")
        finally:
            endpoint.release.set()
            service.drain()
        assert in_flight.result(5.0).result == 1.0  # never lost

    def test_worker_deadline_miss_maps_to_typed_rejection(self):
        """A dispatcher returning ``DeadlineMiss`` markers (the process
        transports' past-due-row skip) rejects exactly those rows."""
        registry, _ = stub_registry()

        def skip_first(endpoint, payloads, meta):
            deadlines = meta["deadlines"]
            assert len(deadlines) == len(payloads)
            return [DeadlineMiss(deadline_at=deadlines[0] or 0.0)] + [
                float(p.sum()) for p in payloads[1:]
            ]

        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.05),
            dispatcher=skip_first,
        ).start()
        try:
            futures = [
                service.submit("stub", [float(i)], deadline_s=30.0) for i in range(3)
            ]
            with pytest.raises(DeadlineExceeded) as excinfo:
                futures[0].result(5.0)
            assert excinfo.value.reason == "worker"
            assert [f.result(5.0).result for f in futures[1:]] == [1.0, 2.0]
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert snapshot["deadline_exceeded"]["by_stage"] == {"worker": 1}
        assert snapshot["completed"] == 2


class TestSLOShedding:
    def test_depth_breach_sheds_incoming_lowest_priority(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            queue_limit=16,
            slo_budgets={"stub": SLOBudget(max_queue_depth=1)},
        ).start()
        try:
            in_flight = service.submit("stub", [1.0])
            time.sleep(0.05)  # worker parked; queue is empty again
            queued = service.submit("stub", [2.0])  # depth 0 -> 1, admitted
            doomed = service.submit("stub", [3.0])  # depth at budget: shed
            with pytest.raises(Shed) as excinfo:
                doomed.result(5.0)
            assert excinfo.value.endpoint == "stub"
            assert excinfo.value.reason == "depth"
            assert isinstance(excinfo.value, RequestRejected)
        finally:
            endpoint.release.set()
            service.drain()
        assert in_flight.result(5.0).result == 1.0
        assert queued.result(5.0).result == 2.0
        snapshot = service.metrics.snapshot()
        assert snapshot["shed"]["total"] == 1
        assert snapshot["shed"]["by_reason"] == {"depth": 1}
        assert snapshot["shed"]["by_endpoint"] == {"stub": 1}

    def test_higher_priority_evicts_queued_lower_priority(self):
        registry, endpoint = stub_registry()
        endpoint.release.clear()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            queue_limit=16,
            slo_budgets={"stub": SLOBudget(max_queue_depth=1)},
        ).start()
        try:
            in_flight = service.submit("stub", [1.0])
            time.sleep(0.05)
            victim = service.submit("stub", [2.0], priority=0)
            vip = service.submit("stub", [3.0], priority=5)  # evicts the victim
            with pytest.raises(Shed):
                victim.result(5.0)
        finally:
            endpoint.release.set()
            service.drain()
        assert in_flight.result(5.0).result == 1.0
        assert vip.result(5.0).result == 3.0  # admitted in the victim's place

    def test_p99_breach_sheds_when_nothing_lower_is_queued(self):
        registry, endpoint = stub_registry()
        slow = 0.02

        original = endpoint.infer_batch

        def slow_infer(payloads):
            time.sleep(slow)
            return original(payloads)

        endpoint.infer_batch = slow_infer
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            slo_budgets={"stub": SLOBudget(p99_target_s=slow / 10.0)},
        ).start()
        try:
            service.submit("stub", [1.0]).result(5.0)  # seeds the rolling p99
            with pytest.raises(Shed) as excinfo:
                service.submit("stub", [2.0]).result(5.0)
            assert excinfo.value.reason == "p99"
        finally:
            service.drain()

    def test_arena_exhaustion_is_a_counted_shed(self):
        """Satellite: arena backpressure surfaces as ``Shed("arena")`` —
        typed, counted, and the service keeps serving the next batch."""
        registry, _ = stub_registry()
        starved = {"done": False}

        def starving_dispatcher(endpoint, payloads):
            if not starved["done"]:
                starved["done"] = True
                raise ArenaExhaustedError("no free slot after 0.0s")
            return [float(p.sum()) for p in payloads]

        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            dispatcher=starving_dispatcher,
        ).start()
        try:
            doomed = service.submit("stub", [1.0])
            with pytest.raises(Shed) as excinfo:
                doomed.result(5.0)
            assert excinfo.value.reason == "arena"
            ok = service.submit("stub", [2.0]).result(5.0)
            assert ok.result == 2.0
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert snapshot["shed"]["by_reason"] == {"arena": 1}
        assert snapshot["failed"] == 0  # backpressure is load, not failure

    def test_budget_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLO_P99_MS", raising=False)
        monkeypatch.delenv("REPRO_SLO_DEPTH", raising=False)
        assert slo_budget_from_env() is None
        monkeypatch.setenv("REPRO_SLO_P99_MS", "250")
        monkeypatch.setenv("REPRO_SLO_DEPTH", "32")
        budget = slo_budget_from_env()
        assert budget == SLOBudget(p99_target_s=0.25, max_queue_depth=32)
        monkeypatch.setenv("REPRO_SLO_P99_MS", "")
        budget = slo_budget_from_env()
        assert budget == SLOBudget(p99_target_s=None, max_queue_depth=32)


class TestDispatchMeta:
    def test_meta_dispatcher_reports_retries_and_hedging(self):
        registry, _ = stub_registry()

        def transport(endpoint, payloads, meta):
            meta["replays"] = 2
            meta["hedged"] = True
            return [float(p.sum()) for p in payloads]

        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=2, max_delay_s=0.0),
            dispatcher=transport,
        ).start()
        try:
            response = service.submit("stub", [1.0]).result(5.0)
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert response.timing.retries == 2
        assert response.timing.hedged is True
        assert snapshot["retried"] == 2
        assert snapshot["hedged"] == 1

    def test_two_argument_dispatchers_keep_working(self):
        registry, _ = stub_registry()
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=2, max_delay_s=0.0),
            dispatcher=lambda endpoint, payloads: [float(p.sum()) for p in payloads],
        ).start()
        try:
            response = service.submit("stub", [4.0], deadline_s=30.0).result(5.0)
        finally:
            service.drain()
        assert response.result == 4.0
        assert response.timing.retries == 0 and response.timing.hedged is False


class TestMetrics:
    def test_snapshot_counts(self, registry):
        endpoint = registry.get("bert")
        rng = np.random.default_rng(4)
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002)
        ) as service:
            futures = [
                service.submit("bert", endpoint.synth_request(rng)) for _ in range(6)
            ]
            for future in futures:
                future.result(30.0)
            snapshot = service.metrics.snapshot()
        assert snapshot["submitted"] == snapshot["completed"] == 6
        assert snapshot["throughput_rps"] > 0
        bert_stats = snapshot["endpoints"]["bert"]
        assert bert_stats["requests"] == 6
        assert bert_stats["latency"]["p95_s"] >= bert_stats["latency"]["p50_s"]
        assert bert_stats["mean_batch"] >= 1.0
