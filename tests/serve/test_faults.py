"""Seeded fault-injection matrix: every named site, every recovery path.

Each test installs a deterministic :class:`FaultPlan` (in the parent, in
the spawned workers via ``REPRO_FAULTS``, or both) and pins the recovery
contract from ISSUE criteria: zero lost non-shed requests, bit-identical
served responses against the in-process oracle, and a *typed* rejection
for everything not served.  The same file runs under both dataplanes in
CI (``REPRO_SHM=0|1``); arena-site tests skip on the pickle leg.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts import ArtifactRegistry, compile_endpoint
from repro.serve import (
    BatchPolicy,
    FaultError,
    FaultPlan,
    FaultRule,
    InferenceService,
    RetryPolicy,
    ServeSupervisor,
    SLOBudget,
    Shed,
    build_endpoint,
    default_registry,
    faults,
    shm_enabled,
    supervised_service,
)
from repro.serve.shm import ArenaExhaustedError, ShmArena
from repro.serve.types import DeadlineExceeded, raw_output as response_bits


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    registry = ArtifactRegistry(tmp_path_factory.mktemp("faults-registry"))
    registry.put(compile_endpoint("bert", seed=0))
    return registry


@pytest.fixture(scope="module")
def artifact_paths(registry):
    (record,) = registry.list()
    return {"bert": registry.resolve(record["digest"])}


@pytest.fixture(autouse=True)
def clean_faults():
    """Every test leaves no plan armed — parent or environment."""
    yield
    faults.install_plan(None)
    os.environ.pop(faults.ENV_FAULTS, None)


def arm_children(monkeypatch, plan):
    """Arm worker processes spawned after this point (env inheritance)."""
    monkeypatch.setenv(faults.ENV_FAULTS, plan.to_json())


def oracle_burst(count, seed=0):
    oracle = build_endpoint("bert", seed=0)
    rng = np.random.default_rng(seed)
    requests = [oracle.synth_request(rng) for _ in range(count)]
    expected = [response_bits(oracle.serve_one(request)) for request in requests]
    return requests, expected


def assert_bits(responses, expected):
    for response, bits in zip(responses, expected):
        assert np.array_equal(response_bits(response.result), bits), (
            "served response drifted from the in-process oracle"
        )


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = (
            FaultPlan(seed=7)
            .rule("worker.batch", "crash", at=(2, 5))
            .rule("service.batch", "slow", prob=0.25, param=0.01, limit=3)
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 7
        assert clone.rules == plan.rules
        assert clone.to_json() == plan.to_json()

    def test_from_env(self, monkeypatch):
        plan = FaultPlan(seed=1).rule("node.loop", "stall", at=1, param=0.5)
        monkeypatch.setenv(faults.ENV_FAULTS, plan.to_json())
        assert FaultPlan.from_env().to_json() == plan.to_json()
        monkeypatch.delenv(faults.ENV_FAULTS)
        assert FaultPlan.from_env() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="worker.batch", kind="meteor")

    def test_at_hits_fire_exactly_once_each(self):
        faults.install_plan(FaultPlan().rule("site.x", "error", at=(2, 4)))
        fired = [faults.fire("site.x") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, False]
        assert faults.site_hits("site.x") == 6

    def test_limit_bounds_probabilistic_fires(self):
        faults.install_plan(
            FaultPlan(seed=3).rule("site.x", "error", prob=1.0, limit=2)
        )
        fired = [faults.fire("site.x") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probabilistic_fires_are_seed_deterministic(self):
        def pattern(seed):
            faults.install_plan(FaultPlan(seed=seed).rule("site.x", "error", prob=0.5))
            return [faults.fire("site.x") is not None for _ in range(32)]

        assert pattern(11) == pattern(11)
        assert pattern(11) != pattern(12)  # astronomically unlikely to tie

    def test_no_plan_is_a_cheap_noop(self):
        faults.install_plan(None)
        assert faults.fire("site.x") is None
        assert faults.site_hits("site.x") == 0
        assert faults.active_plan() is None


class TestWorkerFaults:
    """Injected faults in spawned worker processes (env-armed plans)."""

    def test_worker_crash_mid_batch_replays_bit_identical(
        self, artifact_paths, monkeypatch
    ):
        """Seeded replacement for the ad-hoc kill-9 chaos helper: each
        node exits mid-batch on its 2nd served batch; nothing is lost."""
        requests, expected = oracle_burst(16)
        arm_children(monkeypatch, FaultPlan(seed=0).rule("worker.batch", "crash", at=2))
        supervisor = ServeSupervisor(artifact_paths, nodes=2, backoff_base_s=0.01)
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.002),
            queue_limit=64,
            shutdown_supervisor=True,
        ).start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            responses = [future.result(120.0) for future in futures]
            snapshot = service.metrics.snapshot()
            status = supervisor.status()
        finally:
            service.drain()
        assert_bits(responses, expected)
        assert snapshot["completed"] == len(requests)
        assert snapshot["failed"] == 0
        assert snapshot["retried"] >= 1  # the crashed batches replayed
        assert sum(node["restarts"] for node in status["nodes"].values()) >= 1

    def test_worker_slow_batch_still_serves_bit_identical(
        self, artifact_paths, monkeypatch
    ):
        requests, expected = oracle_burst(8, seed=1)
        arm_children(
            monkeypatch,
            FaultPlan(seed=0).rule("worker.batch", "slow", at=1, param=0.2),
        )
        supervisor = ServeSupervisor(artifact_paths, nodes=1)
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=8, max_delay_s=0.002),
            shutdown_supervisor=True,
        ).start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            responses = [future.result(120.0) for future in futures]
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert_bits(responses, expected)
        assert snapshot["failed"] == 0

    def test_node_loop_crash_respawns_and_serves(self, artifact_paths, monkeypatch):
        """A node dying between batches (not mid-batch) respawns and the
        fleet keeps serving without losing anything."""
        requests, expected = oracle_burst(8, seed=2)
        arm_children(monkeypatch, FaultPlan(seed=0).rule("node.loop", "crash", at=8))
        supervisor = ServeSupervisor(
            artifact_paths,
            nodes=1,
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=0.25,
            backoff_base_s=0.01,
        )
        with supervisor:
            monkeypatch.delenv(faults.ENV_FAULTS)  # respawn comes back clean
            assert wait_until_restarted(supervisor, "node-0")
            service = supervised_service(
                supervisor,
                policy=BatchPolicy(max_batch=4, max_delay_s=0.002),
                shutdown_supervisor=False,
            ).start()
            try:
                futures = [service.submit("bert", request) for request in requests]
                responses = [future.result(120.0) for future in futures]
            finally:
                service.drain()
        assert_bits(responses, expected)

    def test_hedged_dispatch_first_response_wins_bit_identical(
        self, artifact_paths, monkeypatch
    ):
        """A slow primary trips the hedge trigger; the raced response is
        bit-identical and the timing records the hedge."""
        requests, expected = oracle_burst(4, seed=3)
        arm_children(
            monkeypatch,
            FaultPlan(seed=0).rule("worker.batch", "slow", at=1, param=0.4),
        )
        supervisor = ServeSupervisor(
            artifact_paths,
            nodes=2,
            retry_policy=RetryPolicy(hedge=True, hedge_min_s=0.05),
        )
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.002),
            shutdown_supervisor=True,
        ).start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            responses = [future.result(120.0) for future in futures]
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert_bits(responses, expected)
        assert any(response.timing.hedged for response in responses)
        assert snapshot["hedged"] >= 1
        assert snapshot["failed"] == 0


def wait_until_restarted(supervisor, name, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        node = supervisor.status()["nodes"][name]
        if node["restarts"] >= 1 and node["state"] == "ready":
            return True
        time.sleep(0.02)
    return False


@pytest.mark.skipif(not shm_enabled(), reason="arena sites need the shm dataplane")
class TestArenaFaults:
    """Parent-side arena faults (plans installed in-process, not via env)."""

    def test_arena_exhaustion_raises_typed_backpressure(self):
        faults.install_plan(
            FaultPlan(seed=0).rule("arena.acquire", "arena_exhaust", at=1)
        )
        arena = ShmArena(slots=2, slot_bytes=1 << 12)
        try:
            with pytest.raises(ArenaExhaustedError):
                arena.acquire(timeout=0.01)
            slot = arena.acquire(timeout=1.0)  # hit 2: healthy again
            arena.release(slot)
        finally:
            arena.close()

    def test_arena_exhaustion_sheds_batch_with_typed_rejection(
        self, artifact_paths, monkeypatch
    ):
        """Satellite: ``ArenaExhaustedError`` unifies with the shed path —
        the starved batch gets typed ``Shed(reason="arena")`` rejections
        and a counted metrics block, while later batches serve."""
        monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
        requests, expected = oracle_burst(8, seed=4)
        supervisor = ServeSupervisor(artifact_paths, nodes=1, use_shm=True)
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.002),
            shutdown_supervisor=True,
        ).start()
        faults.install_plan(
            FaultPlan(seed=0).rule("arena.acquire", "arena_exhaust", at=1)
        )
        served, shed = [], 0
        try:
            futures = [service.submit("bert", request) for request in requests]
            for future, bits in zip(futures, expected):
                try:
                    response = future.result(120.0)
                except Shed as rejection:
                    assert rejection.reason == "arena"
                    assert rejection.endpoint == "bert"
                    shed += 1
                else:
                    assert np.array_equal(response_bits(response.result), bits)
                    served.append(response)
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert shed >= 1 and served  # one batch starved, the rest served
        assert shed + len(served) == len(requests)  # zero silent drops
        assert snapshot["shed"]["total"] == shed
        assert snapshot["shed"]["by_reason"] == {"arena": shed}
        assert snapshot["failed"] == 0

    def test_corrupt_descriptor_replays_bit_identical(
        self, artifact_paths, monkeypatch
    ):
        """A torn shm response (digest mismatch on the parent's read) is a
        node fault: the batch replays and every request still serves
        bit-identical."""
        monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
        requests, expected = oracle_burst(8, seed=5)
        supervisor = ServeSupervisor(
            artifact_paths, nodes=2, use_shm=True, backoff_base_s=0.01
        )
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.002),
            shutdown_supervisor=True,
        ).start()
        faults.install_plan(FaultPlan(seed=0).rule("arena.read", "corrupt", at=1))
        try:
            futures = [service.submit("bert", request) for request in requests]
            responses = [future.result(120.0) for future in futures]
            snapshot = service.metrics.snapshot()
        finally:
            service.drain()
        assert_bits(responses, expected)
        assert snapshot["completed"] == len(requests)
        assert snapshot["failed"] == 0
        assert snapshot["retried"] >= 1  # the corrupted batch replayed


class TestServiceFaults:
    """In-process ``service.batch`` faults: typed errors, no silent drops."""

    def test_error_fault_rejects_batch_typed_then_recovers(self):
        registry = default_registry(families=("bert",))
        endpoint = registry.get("bert")
        rng = np.random.default_rng(0)
        first, second = endpoint.synth_request(rng), endpoint.synth_request(rng)
        faults.install_plan(
            FaultPlan(seed=0).rule("service.batch", "error", at=1)
        )
        with InferenceService(
            registry, policy=BatchPolicy(max_batch=1, max_delay_s=0.0)
        ) as service:
            doomed = service.submit("bert", first)
            with pytest.raises(FaultError):
                doomed.result(30.0)
            response = service.serve("bert", second, timeout=30.0)
        single = endpoint.serve_one(second)
        assert np.array_equal(response_bits(response.result), response_bits(single))

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
        ],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fault=st.sampled_from(("none", "slow", "error")),
        priorities=st.lists(
            st.integers(min_value=0, max_value=2), min_size=1, max_size=3
        ),
        deadline_s=st.sampled_from((None, 0.002, 5.0)),
    )
    def test_lifecycle_sweep_served_bits_match_oracle(
        self, seed, fault, priorities, deadline_s
    ):
        """Satellite sweep: any interleaving of priorities x deadlines x
        injected faults yields bit-identical responses to the in-process
        oracle for every request actually served, and a typed terminal
        outcome for every request that is not."""
        registry = default_registry(families=("bert",))
        endpoint = registry.get("bert")
        rng = np.random.default_rng(seed)
        requests = [endpoint.synth_request(rng) for _ in range(10)]
        expected = [response_bits(endpoint.serve_one(r)) for r in requests]
        plan = FaultPlan(seed=seed)
        if fault == "slow":
            plan.rule("service.batch", "slow", prob=0.4, param=0.01)
        elif fault == "error":
            plan.rule("service.batch", "error", prob=0.3)
        faults.install_plan(plan)
        outcomes = {"served": 0, "shed": 0, "deadline_exceeded": 0, "faulted": 0}
        try:
            with InferenceService(
                registry,
                policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
                slo_budgets={"bert": SLOBudget(max_queue_depth=6)},
            ) as service:
                futures = [
                    service.submit(
                        "bert",
                        request,
                        priority=priorities[i % len(priorities)],
                        deadline_s=deadline_s,
                    )
                    for i, request in enumerate(requests)
                ]
                for future, bits in zip(futures, expected):
                    try:
                        response = future.result(60.0)
                    except Shed:
                        outcomes["shed"] += 1
                    except DeadlineExceeded:
                        outcomes["deadline_exceeded"] += 1
                    except FaultError:
                        outcomes["faulted"] += 1
                    else:
                        outcomes["served"] += 1
                        assert np.array_equal(response_bits(response.result), bits)
        finally:
            faults.install_plan(None)
        assert sum(outcomes.values()) == len(requests)  # typed terminal states only
        if fault != "error" and deadline_s is None:
            # No faults that reject and no deadlines: everything either
            # serves or is shed by the depth budget — never lost.  The
            # first ``max_queue_depth`` admissions can never breach, so a
            # served majority is guaranteed, not just likely.
            assert outcomes["deadline_exceeded"] == 0
            assert outcomes["faulted"] == 0
            assert outcomes["served"] >= 6
