"""Supervised serve fleet: crash replay, heartbeats, breakers, deploys.

The chaos discipline mirrors the RAE oracle discipline: after every
failure we inject — SIGKILL mid-batch, wedged serve loop, repeated
crashes, divergent canary — the served bits must equal the in-process
oracle's, and no request may be lost.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts import ArtifactRegistry, compile_endpoint, read_manifest
from repro.serve import (
    BatchPolicy,
    CanaryMismatchError,
    ServeSupervisor,
    SupervisorError,
    build_endpoint,
    response_digest,
    supervised_service,
)
from repro.serve.supervisor import FleetUnavailableError, format_status
from repro.serve.types import raw_output as response_bits


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """A registry holding bert seed-0/seed-1 (same shapes, different bits)
    and llama seed-0."""
    registry = ArtifactRegistry(tmp_path_factory.mktemp("supervised-registry"))
    for family, seed in (("bert", 0), ("bert", 1), ("llama", 0)):
        registry.put(compile_endpoint(family, seed=seed))
    return registry


def digest_of(registry, family, seed):
    for record in registry.list():
        if record["meta"]["family"] == family and record["meta"]["seed"] == seed:
            return record["digest"]
    raise KeyError((family, seed))


@pytest.fixture(scope="module")
def artifact_paths(registry):
    return {
        "bert": registry.resolve(digest_of(registry, "bert", 0)),
        "llama": registry.resolve(digest_of(registry, "llama", 0)),
    }


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def oracle_burst(family, count, seed=0):
    """(requests, expected raw outputs) from the in-process oracle."""
    oracle = build_endpoint(family, seed=0)
    rng = np.random.default_rng(seed)
    requests = [oracle.synth_request(rng) for _ in range(count)]
    expected = [response_bits(oracle.serve_one(request)) for request in requests]
    return requests, expected


class TestFleetLifecycle:
    def test_named_nodes_report_ready_with_pinned_digests(self, artifact_paths, registry):
        with ServeSupervisor(
            artifact_paths, node_names=("alpha", "beta")
        ) as supervisor:
            status = supervisor.status()
            assert set(status["nodes"]) == {"alpha", "beta"}
            expected = digest_of(registry, "bert", 0)[:12]
            for node in status["nodes"].values():
                assert node["state"] == "ready"
                assert node["endpoints"]["bert"] == expected
            assert "alpha" in format_status(status)

    def test_rejects_bad_configuration(self, artifact_paths):
        with pytest.raises(ValueError):
            ServeSupervisor(artifact_paths, nodes=0)
        with pytest.raises(ValueError):
            ServeSupervisor({})
        with pytest.raises(ValueError):
            ServeSupervisor(artifact_paths, node_names=("a", "a"))

    def test_dispatch_unknown_endpoint(self, artifact_paths):
        with ServeSupervisor(artifact_paths, nodes=1) as supervisor:
            with pytest.raises(KeyError):
                supervisor.dispatch("segformer", [])

    def test_latency_tracked_per_node_and_endpoint(self, artifact_paths):
        requests, expected = oracle_burst("bert", 2)
        oracle = build_endpoint("bert")
        with ServeSupervisor(artifact_paths, nodes=1) as supervisor:
            payloads = [oracle.request_payload(r) for r in requests]
            results = supervisor.dispatch("bert", payloads)
            node = supervisor.status()["nodes"]["node-0"]
            assert node["batches_served"] == 1
            assert node["latency"]["bert"]["p50_s"] > 0.0
        for result, bits in zip(results, expected):
            assert np.array_equal(response_bits(result), bits)


class TestCrashRecovery:
    def test_kill9_mid_batch_replays_bit_identical(self, artifact_paths):
        """The chaos property: a worker SIGKILLed while serving loses
        nothing, and every response matches the in-process oracle."""
        requests, expected = oracle_burst("bert", 16, seed=3)
        supervisor = ServeSupervisor(artifact_paths, nodes=2, backoff_base_s=0.01)
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            queue_limit=64,
            block_on_full=True,
            shutdown_supervisor=True,
        ).start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            assert wait_until(lambda: supervisor.busy_nodes(), timeout=30.0)
            busy = supervisor.busy_nodes()
            victim = busy[0] if busy else supervisor.node_names()[0]
            supervisor.kill_node(victim)
            responses = [future.result(timeout=120.0) for future in futures]
        finally:
            metrics = service.drain()
        assert metrics["completed"] == len(requests)  # zero lost requests
        assert metrics["failed"] == 0
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)

    def test_killed_node_respawns_and_serves_again(self, artifact_paths):
        with ServeSupervisor(
            artifact_paths, nodes=1, backoff_base_s=0.01
        ) as supervisor:
            pid = supervisor.status()["nodes"]["node-0"]["pid"]
            supervisor.kill_node("node-0")
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["state"] == "ready"
                and supervisor.status()["nodes"]["node-0"]["pid"] != pid
            )
            node = supervisor.status()["nodes"]["node-0"]
            assert node["restarts"] == 1
            assert node["last_error"]  # "pipe closed" or "process died while idle"
            requests, expected = oracle_burst("bert", 1, seed=5)
            oracle = build_endpoint("bert")
            results = supervisor.dispatch(
                "bert", [oracle.request_payload(requests[0])]
            )
            assert np.array_equal(response_bits(results[0]), expected[0])

    def test_heartbeat_expiry_detected_and_restarted(self, artifact_paths):
        """A wedged (not dead) serve loop stops heartbeating; the watchdog
        must restart it."""
        with ServeSupervisor(
            artifact_paths,
            nodes=1,
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=0.25,
            backoff_base_s=0.01,
        ) as supervisor:
            supervisor.stall_node("node-0", seconds=2.0)
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["restarts"] >= 1
            )
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["state"] == "ready"
            )
            assert "heartbeat expired" in supervisor.status()["nodes"]["node-0"]["last_error"]

    def test_heartbeat_edge_resume_is_never_double_respawned(
        self, artifact_paths, monkeypatch
    ):
        """Edge timing: a worker whose stall ends exactly at heartbeat
        expiry resumes beating just as the watchdog's verdict lands.
        Whichever side wins the race, the node must settle at **at most
        one** restart — a stale heartbeat from the pre-stall process must
        never confuse the watchdog into a second respawn.  The stall is a
        seeded fault-injector rule, not a sleep race on our side."""
        from repro.serve import FaultPlan, faults

        timeout_s = 0.3
        plan = FaultPlan(seed=0).rule("node.loop", "stall", at=3, param=timeout_s)
        monkeypatch.setenv(faults.ENV_FAULTS, plan.to_json())
        with ServeSupervisor(
            artifact_paths,
            nodes=1,
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=timeout_s,
            backoff_base_s=0.01,
        ) as supervisor:
            # Initial spawn inherited the plan; a respawned process must
            # come back clean or it would stall again on ITS 3rd loop.
            monkeypatch.delenv(faults.ENV_FAULTS)
            # First observe the stall itself (heartbeat age growing past
            # half the timeout — normal beats land every 0.02s — or the
            # watchdog already respawned), so the recovery wait below
            # can't be satisfied by the healthy pre-stall node.
            def stall_observed():
                node = supervisor.status()["nodes"]["node-0"]
                return node["last_seen_age_s"] > timeout_s / 2 or node["restarts"] >= 1

            assert wait_until(stall_observed, timeout=10.0 * timeout_s)
            # The stall lasts exactly the heartbeat timeout; wait out the
            # resume-vs-verdict race until the node is beating again.
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["state"] == "ready"
                and supervisor.status()["nodes"]["node-0"]["last_seen_age_s"]
                < timeout_s / 2,
                timeout=10.0 * timeout_s,
            )
            settled = supervisor.status()["nodes"]["node-0"]["restarts"]
            assert settled <= 1  # either outcome of the race, never both
            # No flapping afterwards: the count must hold through several
            # further timeout windows while the node keeps serving.
            time.sleep(3.0 * timeout_s)
            node = supervisor.status()["nodes"]["node-0"]
            assert node["state"] == "ready"
            assert node["restarts"] == settled
            requests, expected = oracle_burst("bert", 2, seed=11)
            oracle = build_endpoint("bert")
            results = supervisor.dispatch(
                "bert", [oracle.request_payload(r) for r in requests]
            )
            for result, bits in zip(results, expected):
                assert np.array_equal(response_bits(result), bits)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_and_resets(self, artifact_paths):
        supervisor = ServeSupervisor(
            artifact_paths,
            nodes=1,
            circuit_threshold=3,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
        ).start()
        try:
            for failures in range(1, 4):
                assert wait_until(
                    lambda: supervisor.status()["nodes"]["node-0"]["state"]
                    in ("ready", "broken")
                )
                if supervisor.status()["nodes"]["node-0"]["state"] == "broken":
                    break
                supervisor.kill_node("node-0")
                # Wait for the watchdog to register THIS failure before the
                # next kill, or we'd re-kill an already-dead pid.
                assert wait_until(
                    lambda: supervisor.status()["nodes"]["node-0"][
                        "consecutive_failures"
                    ]
                    >= failures
                )
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["state"] == "broken"
            )
            assert (
                supervisor.status()["nodes"]["node-0"]["consecutive_failures"] >= 3
            )
            # A broken single-node fleet cannot serve.
            with pytest.raises(FleetUnavailableError):
                supervisor.dispatch("bert", [np.zeros(32, dtype=np.int64)])
            # Manual reset clears the breaker and respawns.
            supervisor.reset_node("node-0")
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["state"] == "ready"
            )
            requests, expected = oracle_burst("bert", 1, seed=9)
            oracle = build_endpoint("bert")
            results = supervisor.dispatch("bert", [oracle.request_payload(requests[0])])
            assert np.array_equal(response_bits(results[0]), expected[0])
        finally:
            supervisor.stop()

    def test_reset_requires_broken_state(self, artifact_paths):
        with ServeSupervisor(artifact_paths, nodes=1) as supervisor:
            with pytest.raises(SupervisorError):
                supervisor.reset_node("node-0")

    def test_successful_batch_resets_failure_count(self, artifact_paths):
        with ServeSupervisor(
            artifact_paths, nodes=1, circuit_threshold=2, backoff_base_s=0.01
        ) as supervisor:
            supervisor.kill_node("node-0")
            assert wait_until(
                lambda: supervisor.status()["nodes"]["node-0"]["state"] == "ready"
            )
            requests, _ = oracle_burst("bert", 1)
            oracle = build_endpoint("bert")
            supervisor.dispatch("bert", [oracle.request_payload(requests[0])])
            assert (
                supervisor.status()["nodes"]["node-0"]["consecutive_failures"] == 0
            )


class TestRollingDeploys:
    def make_fleet(self, registry, **kwargs):
        path = registry.resolve(digest_of(registry, "bert", 0))
        registry.set_pointer("bert", digest_of(registry, "bert", 0))
        return ServeSupervisor({"bert": path}, nodes=2, registry=registry, **kwargs)

    def test_same_digest_deploy_promotes_with_zero_mismatches(self, registry):
        """A recompiled same-version artifact lands on the same digest
        (content addressing) and must promote cleanly."""
        d0 = digest_of(registry, "bert", 0)
        with self.make_fleet(registry) as supervisor:
            report = supervisor.deploy(
                "bert", d0, canary_fraction=0.5, canary_batches=2
            )
            assert report["digest"] == d0
            assert report["canary_mismatches"] == 0
            assert report["probes"] == 2

    def test_canary_mismatch_rolls_back(self, registry):
        d0 = digest_of(registry, "bert", 0)
        d1 = digest_of(registry, "bert", 1)
        with self.make_fleet(registry) as supervisor:
            with pytest.raises(CanaryMismatchError):
                supervisor.deploy("bert", d1, canary_fraction=0.5, canary_batches=2)
            status = supervisor.status()
            route = status["routes"]["bert"]
            assert route["current"] == d0
            assert route["canary"] is None
            assert route["canary_mismatches"] >= 1
            for node in status["nodes"].values():
                assert node["endpoints"]["bert"] == d0[:12]
        assert registry.pointer("bert")["current"] == d0  # pointer untouched

    def test_promote_and_pointer_rollback(self, registry):
        d0 = digest_of(registry, "bert", 0)
        d1 = digest_of(registry, "bert", 1)
        with self.make_fleet(registry) as supervisor:
            supervisor.stage_canary("bert", d1, canary_fraction=0.5)
            report = supervisor.promote("bert")  # skip probes: forced promote
            assert report["digest"] == d1
            assert registry.pointer("bert") == {"current": d1, "previous": d0}
            status = supervisor.status()
            assert all(
                node["endpoints"]["bert"] == d1[:12]
                for node in status["nodes"].values()
            )
            rollback = supervisor.rollback("bert")
            assert rollback["digest"] == d0
            assert registry.pointer("bert")["current"] == d0
            status = supervisor.status()
            assert all(
                node["endpoints"]["bert"] == d0[:12]
                for node in status["nodes"].values()
            )

    def test_live_canary_traffic_mirrors_and_counts(self, registry):
        d0 = digest_of(registry, "bert", 0)
        requests, expected = oracle_burst("bert", 6, seed=11)
        oracle = build_endpoint("bert")
        with self.make_fleet(registry) as supervisor:
            supervisor.stage_canary("bert", d0, canary_fraction=1.0)
            for request, bits in zip(requests, expected):
                results = supervisor.dispatch(
                    "bert", [oracle.request_payload(request)]
                )
                assert np.array_equal(response_bits(results[0]), bits)
            route = supervisor.status()["routes"]["bert"]
            assert route["canary_served"] >= 1
            assert route["canary_matches"] >= 1
            assert route["canary_mismatches"] == 0

    def test_live_canary_mismatch_serves_incumbent_bits(self, registry):
        """A diverging canary must auto-rollback and the caller must still
        receive the incumbent's bits — deploys can't change responses."""
        d1 = digest_of(registry, "bert", 1)
        requests, expected = oracle_burst("bert", 2, seed=13)
        oracle = build_endpoint("bert")
        with self.make_fleet(registry) as supervisor:
            supervisor.stage_canary("bert", d1, canary_fraction=1.0)
            results = supervisor.dispatch(
                "bert", [oracle.request_payload(requests[0])]
            )
            assert np.array_equal(response_bits(results[0]), expected[0])
            route = supervisor.status()["routes"]["bert"]
            assert route["canary"] is None  # auto-rolled back
            assert route["canary_mismatches"] == 1

    def test_deploy_rejects_incompatible_artifact(self, registry, artifact_paths):
        llama_digest = digest_of(registry, "llama", 0)
        with self.make_fleet(registry) as supervisor:
            with pytest.raises(SupervisorError):
                supervisor.stage_canary("bert", llama_digest)

    def test_stage_canary_needs_two_nodes(self, registry):
        path = registry.resolve(digest_of(registry, "bert", 0))
        with ServeSupervisor({"bert": path}, nodes=1, registry=registry) as supervisor:
            with pytest.raises(SupervisorError):
                supervisor.stage_canary("bert", digest_of(registry, "bert", 0))

    def test_drain_then_restart_node(self, registry):
        with self.make_fleet(registry) as supervisor:
            supervisor.drain_node("node-0")
            assert supervisor.status()["nodes"]["node-0"]["state"] == "stopped"
            supervisor.restart_node("node-0")
            supervisor.wait_ready()
            assert supervisor.status()["nodes"]["node-0"]["state"] == "ready"


class TestResponseDigest:
    def test_digest_separates_bits_not_layout(self):
        from repro.serve.types import ClassificationResponse

        a = ClassificationResponse(logits=np.arange(4, dtype=np.int64), label=3)
        b = ClassificationResponse(logits=np.arange(4, dtype=np.int64), label=3)
        c = ClassificationResponse(logits=np.arange(1, 5, dtype=np.int64), label=3)
        assert response_digest([a]) == response_digest([b])
        assert response_digest([a]) != response_digest([c])
        assert response_digest([a, b]) != response_digest([a])


class TestChaosSweep:
    """Hypothesis sweep: crash timing × endpoint family, replay must stay
    bit-identical with zero lost requests."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(["bert", "llama"]),
        kill_after=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_crash_timing_sweep(self, artifact_paths, family, kill_after, seed):
        requests, expected = oracle_burst(family, 8, seed=seed)
        supervisor = ServeSupervisor(artifact_paths, nodes=2, backoff_base_s=0.01)
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=3, max_delay_s=0.001),
            queue_limit=32,
            block_on_full=True,
            shutdown_supervisor=True,
        ).start()
        try:
            futures = []
            for index, request in enumerate(requests):
                futures.append(service.submit(family, request))
                if index == kill_after:
                    # Prefer a mid-batch kill; fall back to any node.
                    busy = supervisor.busy_nodes()
                    victim = busy[0] if busy else supervisor.node_names()[0]
                    supervisor.kill_node(victim)
            responses = [future.result(timeout=120.0) for future in futures]
        finally:
            metrics = service.drain()
        assert metrics["completed"] == len(requests)
        assert metrics["failed"] == 0
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)


class TestSupervisedService:
    def test_service_status_includes_fleet(self, artifact_paths):
        service = supervised_service(
            dict(artifact_paths), nodes=1, policy=BatchPolicy(max_batch=2)
        ).start()
        try:
            status = service.status()
            assert status["state"] == "running"
            assert set(status["fleet"]["nodes"]) == {"node-0"}
        finally:
            service.drain()
        # Owned supervisor is stopped by the drain's shutdown hook.
        assert service.supervisor._running is False

    def test_mixed_traffic_matches_oracle(self, artifact_paths):
        service = supervised_service(
            dict(artifact_paths),
            nodes=2,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            queue_limit=64,
            block_on_full=True,
        ).start()
        rng = np.random.default_rng(17)
        stream = []
        for i in range(10):
            name = ("bert", "llama")[i % 2]
            stream.append((name, service.registry.get(name).synth_request(rng)))
        try:
            futures = [service.submit(name, request) for name, request in stream]
            responses = [future.result(timeout=120.0) for future in futures]
        finally:
            metrics = service.drain()
        assert metrics["completed"] == len(stream)
        for (name, request), response in zip(stream, responses):
            single = build_endpoint(name).serve_one(request)
            assert np.array_equal(
                response_bits(response.result), response_bits(single)
            ), f"{name} drifted through the supervised fleet"
