"""Load generator + serve-bench tests (small, deterministic workloads)."""

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    EndpointRegistry,
    InferenceService,
    LoadSpec,
    bench_microbatch_speedup,
    build_endpoint,
    build_requests,
    format_bench_report,
    run_load,
    serve_bench,
)


@pytest.fixture(scope="module")
def bert_registry():
    registry = EndpointRegistry()
    registry.register(build_endpoint("bert"))
    return registry


class TestLoadSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests": 0},
            {"mode": "bursty"},
            {"concurrency": 0},
            {"rate_hz": 0.0},
            {"mix": ()},
            {"mix": (("bert", -1.0),)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LoadSpec(**kwargs)


class TestBuildRequests:
    def test_deterministic_per_seed(self, bert_registry):
        spec = LoadSpec(requests=6, mix=(("bert", 1.0),), seed=11)
        first = build_requests(bert_registry, spec)
        second = build_requests(bert_registry, spec)
        assert [name for name, _ in first] == [name for name, _ in second]
        for (_, a), (_, b) in zip(first, second):
            assert np.array_equal(a.tokens, b.tokens)

    def test_mix_restricts_endpoints(self, bert_registry):
        spec = LoadSpec(requests=10, mix=(("bert", 1.0),), seed=0)
        assert {name for name, _ in build_requests(bert_registry, spec)} == {"bert"}


class TestRunLoad:
    def test_closed_loop_completes_all(self, bert_registry):
        spec = LoadSpec(requests=8, mix=(("bert", 1.0),), mode="closed", concurrency=4)
        service = InferenceService(
            bert_registry, policy=BatchPolicy(max_batch=4, max_delay_s=0.002)
        ).start()
        try:
            report = run_load(service, spec)
        finally:
            service.drain()
        assert report["mode"] == "closed"
        assert report["completed"] == report["submitted"] == 8
        assert report["rejected"] == 0
        assert report["throughput_rps"] > 0
        assert all(response is not None for response in report["responses"])

    def test_open_loop_counts_rejections(self, bert_registry):
        spec = LoadSpec(
            requests=16, mix=(("bert", 1.0),), mode="open", rate_hz=50_000.0, seed=1
        )
        service = InferenceService(
            bert_registry,
            policy=BatchPolicy(max_batch=2, max_delay_s=0.0),
            queue_limit=1,
            block_on_full=False,
        ).start()
        try:
            report = run_load(service, spec)
        finally:
            service.drain()
        assert report["completed"] + report["rejected"] == 16
        nones = sum(1 for response in report["responses"] if response is None)
        assert nones == report["rejected"]


class TestBench:
    def test_microbatch_speedup_small(self):
        result = bench_microbatch_speedup(
            family="bert", requests=8, max_batch=4, repeats=1
        )
        assert result["t_batch1_s"] > 0 and result["t_microbatch_s"] > 0
        assert result["mean_coalesced_batch"] >= 1.0
        assert result["speedup"] == pytest.approx(
            result["t_batch1_s"] / result["t_microbatch_s"], rel=1e-6
        )

    def test_serve_bench_report_and_merge(self, tmp_path):
        timings = tmp_path / "timings.json"
        result = serve_bench(
            families=("bert",),
            requests=6,
            gate_requests=6,
            max_batch=4,
            workers=1,
            mode="closed",
            concurrency=4,
            timings_path=timings,
        )
        report = format_bench_report(result)
        assert "speedup" in report and "p95" in report
        from repro.experiments.timings import load_timings

        payload = load_timings(timings)
        assert "serve/bert/microbatch" in payload["cells"]
        assert "serve/bert/batch1" in payload["cells"]
        assert "serve/mixed/closed" in payload["cells"]

    def test_serve_bench_from_artifact_records_cold_start(self, tmp_path):
        timings = tmp_path / "timings.json"
        result = serve_bench(
            families=("bert",),
            requests=6,
            gate_requests=6,
            max_batch=4,
            workers=1,
            mode="closed",
            concurrency=4,
            timings_path=timings,
            from_artifact=True,
            artifact_root=tmp_path / "registry",
        )
        assert "artifacts" in result
        assert result["artifacts"]["bert"]["speedup"] > 0
        report = format_bench_report(result)
        assert "cold-start" in report
        from repro.experiments.timings import load_timings

        payload = load_timings(timings)
        assert "artifact/bert/rebuild" in payload["cells"]
        assert "artifact/bert/load" in payload["cells"]

    def test_process_workers_require_artifacts(self):
        with pytest.raises(ValueError):
            serve_bench(families=("bert",), process_workers=2, from_artifact=False)
