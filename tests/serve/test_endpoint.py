"""ModelEndpoint tests: validation, pinned-plan reuse, scenario outputs."""

import numpy as np
import pytest

from repro.serve import (
    ClassificationRequest,
    ClassificationResponse,
    EndpointRegistry,
    ScoringRequest,
    ScoringResponse,
    SegmentationRequest,
    SegmentationResponse,
    build_endpoint,
    clear_endpoint_memo,
    default_registry,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestBuilders:
    def test_memoized_per_process(self):
        first = build_endpoint("bert", seed=0)
        again = build_endpoint("bert", seed=0)
        assert first is again
        assert build_endpoint("bert", seed=1) is not first

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown endpoint family"):
            build_endpoint("resnet")

    def test_clear_memo_rebuilds(self):
        first = build_endpoint("bert", seed=0)
        clear_endpoint_memo()
        rebuilt = build_endpoint("bert", seed=0)
        assert rebuilt is not first

    def test_deterministic_rebuild_serves_identical_bits(self):
        request = build_endpoint("bert", seed=0).synth_request(
            np.random.default_rng(7)
        )
        first = build_endpoint("bert", seed=0).serve_one(request)
        clear_endpoint_memo()
        rebuilt = build_endpoint("bert", seed=0).serve_one(request)
        assert np.array_equal(first.logits, rebuilt.logits)


class TestValidation:
    def test_wrong_request_type(self, registry):
        with pytest.raises(TypeError, match="expects ClassificationRequest"):
            registry.get("bert").request_payload(ScoringRequest(tokens=np.arange(4)))

    def test_token_shape_and_vocab(self, registry):
        bert = registry.get("bert")
        with pytest.raises(ValueError, match="1-D tokens"):
            bert.request_payload(ClassificationRequest(tokens=np.zeros((2, 4), dtype=int)))
        with pytest.raises(ValueError, match="token ids outside"):
            bert.request_payload(ClassificationRequest(tokens=np.array([0, 10_000])))

    def test_image_channels(self, registry):
        seg = registry.get("segformer")
        with pytest.raises(ValueError, match="expected image"):
            seg.request_payload(SegmentationRequest(image=np.zeros((1, 8, 8))))

    def test_mixed_shapes_do_not_stack(self, registry):
        bert = registry.get("bert")
        with pytest.raises(ValueError, match="mixed payload shapes"):
            bert.infer_batch([np.zeros(4, dtype=np.int64), np.zeros(6, dtype=np.int64)])

    def test_coalesce_key_separates_shapes(self, registry):
        bert = registry.get("bert")
        a = bert.coalesce_key(np.zeros(4, dtype=np.int64))
        b = bert.coalesce_key(np.zeros(6, dtype=np.int64))
        assert a != b and a[0] == b[0] == "bert"


class TestScenarioOutputs:
    def test_classification(self, registry):
        endpoint = registry.get("bert")
        response = endpoint.serve_one(endpoint.synth_request(np.random.default_rng(0)))
        assert isinstance(response, ClassificationResponse)
        assert response.logits.shape == (2,)
        assert response.label == int(response.logits.argmax())

    def test_scoring(self, registry):
        endpoint = registry.get("llama")
        response = endpoint.serve_one(endpoint.synth_request(np.random.default_rng(0)))
        assert isinstance(response, ScoringResponse)
        vocab = endpoint.model.config.vocab_size
        assert response.logprobs.shape == (vocab,)
        assert response.top_token == int(response.logprobs.argmax())
        # log-probabilities: sum of exp is 1
        assert np.isclose(np.exp(response.logprobs).sum(), 1.0)

    def test_segmentation(self, registry):
        endpoint = registry.get("segformer")
        response = endpoint.serve_one(endpoint.synth_request(np.random.default_rng(0)))
        assert isinstance(response, SegmentationResponse)
        assert response.logits.ndim == 3
        assert response.class_map.shape == response.logits.shape[:2]
        assert np.array_equal(response.class_map, response.logits.argmax(axis=-1))


class TestPinnedPlan:
    def test_plan_survives_across_calls(self, registry):
        endpoint = registry.get("bert")
        plan = endpoint.plan
        rng = np.random.default_rng(1)
        endpoint.serve_one(endpoint.synth_request(rng))
        endpoint.serve_one(endpoint.synth_request(rng))
        assert endpoint.plan is plan  # pinned, never rebuilt

    def test_weight_codes_cached_by_version(self, registry):
        endpoint = registry.get("bert")
        name = endpoint.plan.layer_names[0]
        codes = endpoint.plan.weight_codes(name)
        assert endpoint.plan.weight_codes(name) is codes  # cache hit
        layer = endpoint.plan.entry(name).layer
        layer.weight.data = layer.weight.data.copy()  # version bump
        assert endpoint.plan.weight_codes(name) is not codes  # revalidated

    def test_conv_layers_planned_for_segformer(self, registry):
        plan = registry.get("segformer").plan
        kinds = {plan.entry(name).kind for name in plan.layer_names}
        assert kinds == {"linear", "conv"}


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = EndpointRegistry()
        registry.register(build_endpoint("bert"))
        with pytest.raises(ValueError, match="duplicate endpoint"):
            registry.register(build_endpoint("bert"))

    def test_unknown_endpoint(self, registry):
        with pytest.raises(KeyError, match="unknown endpoint"):
            registry.get("missing")

    def test_iteration_and_names(self, registry):
        assert registry.names == ("bert", "llama", "segformer")
        assert len(list(registry)) == len(registry) == 3
