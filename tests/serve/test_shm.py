"""The shared-memory dataplane: arena mechanics, transport bit-identity,
backpressure, corruption detection, and crash-safe slot reclamation.

The contract under test, in increasing order of integration:

1. :class:`ShmArena` round-trips arbitrary arrays through aligned slot
   spans and verifies every read against the descriptor digest.
2. ``ProcessEndpointPool`` over shm serves bits identical to the
   in-process oracle (and to its own ``REPRO_SHM=0`` pickle fallback),
   for all three scenario families and variable-length scoring traffic.
3. The arena applies *backpressure* when full (blocking acquire →
   :class:`ArenaExhaustedError` after timeout) and *degrades* (to
   pickle) when a batch outgrows a slot — never wrong bits.
4. ``kill -9`` on a supervised node holding slots mid-batch loses zero
   requests and leaks zero slots: the parent's ``finally`` releases the
   dead worker's in-flight slots the moment the pipe EOF surfaces.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts import compile_endpoint, write_artifact
from repro.serve import (
    ArenaExhaustedError,
    ProcessEndpointPool,
    ServeSupervisor,
    ShmArena,
    ShmError,
    ShmIntegrityError,
    SlotDescriptor,
    SlotOverflowError,
    build_endpoint,
    shm_enabled,
)
from repro.serve.shm import SPAN_ALIGN, pack_results, unpack_results
from repro.serve.types import raw_output as response_bits

FAMILIES = ("bert", "llama", "segformer")


@pytest.fixture(scope="module")
def artifact_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("shm-artifacts")
    paths = {}
    for family in FAMILIES:
        path = root / family
        write_artifact(compile_endpoint(family), path)
        paths[family] = path
    return paths


@pytest.fixture(scope="module")
def shm_pool(artifact_paths):
    with ProcessEndpointPool(artifact_paths, processes=2, use_shm=True) as pool:
        yield pool


def variable_length_payloads(endpoint, rng, lengths):
    return [
        endpoint.request_payload(endpoint.synth_request(rng, length=length))
        for length in lengths
    ]


# ----------------------------------------------------------------------
# 1. Arena mechanics
# ----------------------------------------------------------------------


class TestShmArena:
    def test_roundtrip_preserves_bits_and_alignment(self):
        with ShmArena(slots=2, slot_bytes=8192) as arena:
            arrays = [
                np.arange(7, dtype=np.int64),
                np.random.default_rng(0).normal(size=(3, 5)),
                np.array([[True, False]]),
            ]
            slot = arena.acquire()
            descriptor = arena.write(slot, arrays)
            assert all(offset % SPAN_ALIGN == 0 for _, _, offset, _ in descriptor.spans)
            out = arena.read(descriptor)
            for sent, received in zip(arrays, out):
                assert sent.dtype == received.dtype
                assert np.array_equal(sent, received)
            arena.release(slot)
            assert arena.in_use() == 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shapes=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=4,
        ),
        dtype=st.sampled_from(["float64", "int64", "float32", "int32"]),
    )
    def test_roundtrip_property(self, seed, shapes, dtype):
        rng = np.random.default_rng(seed)
        arrays = [
            (rng.normal(size=shape) * 100).astype(dtype) for shape in shapes
        ]
        with ShmArena(slots=1, slot_bytes=1 << 14) as arena:
            slot = arena.acquire()
            out = arena.read(arena.write(slot, arrays))
            for sent, received in zip(arrays, out):
                assert np.array_equal(sent, received)
            arena.release(slot)

    def test_overflow_raises(self):
        with ShmArena(slots=1, slot_bytes=256) as arena:
            slot = arena.acquire()
            with pytest.raises(SlotOverflowError):
                arena.write(slot, [np.zeros(1024, dtype=np.float64)])
            arena.release(slot)

    def test_exhaustion_blocks_then_raises(self):
        with ShmArena(slots=2, slot_bytes=256) as arena:
            first, second = arena.acquire(), arena.acquire()
            started = time.monotonic()
            with pytest.raises(ArenaExhaustedError):
                arena.acquire(timeout=0.1)
            assert time.monotonic() - started >= 0.09  # it blocked, then failed
            arena.release(first)
            arena.release(second)

    def test_release_unblocks_waiting_acquire(self):
        with ShmArena(slots=1, slot_bytes=256) as arena:
            held = arena.acquire()
            got = []

            def waiter():
                got.append(arena.acquire(timeout=5.0))

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.05)
            arena.release(held)
            thread.join(timeout=5.0)
            assert got == [held]  # backpressure released into the waiter
            arena.release(held)

    def test_refcounts_and_idempotent_release(self):
        with ShmArena(slots=1, slot_bytes=256) as arena:
            slot = arena.acquire()
            arena.retain(slot)
            arena.release(slot)
            assert arena.in_use() == 1  # one reference still out
            arena.release(slot)
            assert arena.in_use() == 0
            arena.release(slot)  # releasing a free slot is a no-op
            assert arena.in_use() == 0

    def test_corrupted_digest_is_detected(self):
        with ShmArena(slots=1, slot_bytes=256) as arena:
            slot = arena.acquire()
            descriptor = arena.write(slot, [np.arange(4, dtype=np.int64)])
            forged = SlotDescriptor(
                slot=descriptor.slot, spans=descriptor.spans, digest="0" * 64
            )
            with pytest.raises(ShmIntegrityError):
                arena.read(forged)
            arena.release(slot)

    def test_torn_write_is_detected(self):
        with ShmArena(slots=1, slot_bytes=256) as arena:
            slot = arena.acquire()
            descriptor = arena.write(slot, [np.arange(4, dtype=np.int64)])
            # Scribble over the slot bytes behind the descriptor's back.
            arena.write(slot, [np.arange(4, 8, dtype=np.int64)])
            with pytest.raises(ShmIntegrityError):
                arena.read(descriptor)
            arena.release(slot)

    def test_bogus_span_geometry_is_rejected(self):
        with ShmArena(slots=1, slot_bytes=256) as arena:
            bad_slot = SlotDescriptor(slot=99, spans=(), digest="0" * 64)
            with pytest.raises(ShmIntegrityError):
                arena.read(bad_slot)
            bad_span = SlotDescriptor(
                slot=0, spans=(("<f8", (1024,), 0, 8192),), digest="0" * 64
            )
            with pytest.raises(ShmIntegrityError):
                arena.read(bad_span)

    def test_attach_sees_owner_writes(self):
        with ShmArena(slots=1, slot_bytes=512) as arena:
            slot = arena.acquire()
            descriptor = arena.write(slot, [np.arange(10, dtype=np.int64)])
            attached = ShmArena.attach(*arena.geometry())
            assert np.array_equal(
                attached.read(descriptor)[0], np.arange(10, dtype=np.int64)
            )
            with pytest.raises(ShmError):
                attached.acquire()  # workers never allocate
            attached.close()
            arena.release(slot)

    def test_pack_unpack_mirror_endpoint_responses(self):
        endpoint = build_endpoint("llama")
        rng = np.random.default_rng(5)
        payloads = variable_length_payloads(endpoint, rng, [4, 9, 9])
        results = endpoint.infer_batch(payloads)
        rebuilt = unpack_results("scoring", pack_results("scoring", results))
        for original, copy in zip(results, rebuilt):
            assert np.array_equal(original.logprobs, copy.logprobs)
            assert original.top_token == copy.top_token


# ----------------------------------------------------------------------
# 2. Pool transport bit-identity (shm vs pickle vs in-process oracle)
# ----------------------------------------------------------------------


class TestPoolDataplane:
    def test_shm_gate_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled()  # default on
        for off in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_SHM", off)
            assert not shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_enabled()

    @pytest.mark.parametrize("family", FAMILIES)
    def test_shm_pool_matches_in_process_oracle(self, shm_pool, family):
        oracle = build_endpoint(family)
        rng = np.random.default_rng(11)
        if family == "llama":
            payloads = variable_length_payloads(oracle, rng, [3, 17, 24, 3])
        else:
            payloads = [
                oracle.request_payload(oracle.synth_request(rng)) for _ in range(4)
            ]
        served = shm_pool.infer_batch(family, payloads)
        expected = oracle.infer_batch(payloads)
        for a, b in zip(served, expected):
            assert type(a).__name__ == type(b).__name__
            assert np.array_equal(response_bits(a), response_bits(b))
        assert shm_pool.dataplane_stats()["shm_batches"] > 0
        assert shm_pool.dataplane_stats()["arena_in_use"] == 0

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(FAMILIES),
        payload_seed=st.integers(min_value=0, max_value=10_000),
        lengths=st.lists(st.integers(min_value=1, max_value=24), min_size=1, max_size=6),
    )
    def test_shm_transport_property(self, shm_pool, family, payload_seed, lengths):
        """Any seeded batch serves bit-identical through the arena."""
        oracle = build_endpoint(family)
        rng = np.random.default_rng(payload_seed)
        if family == "llama":
            payloads = variable_length_payloads(oracle, rng, lengths)
        else:
            payloads = [
                oracle.request_payload(oracle.synth_request(rng)) for _ in lengths
            ]
        served = shm_pool.infer_batch(family, payloads)
        expected = [oracle.infer_batch([p])[0] for p in payloads]
        for a, b in zip(served, expected):
            assert np.array_equal(response_bits(a), response_bits(b))

    def test_pickle_fallback_pool_matches(self, artifact_paths):
        oracle = build_endpoint("llama")
        rng = np.random.default_rng(23)
        payloads = variable_length_payloads(oracle, rng, [5, 12, 24])
        with ProcessEndpointPool(artifact_paths, processes=1, use_shm=False) as pool:
            assert pool.arena is None
            served = pool.infer_batch("llama", payloads)
            stats = pool.dataplane_stats()
        assert stats["pickle_batches"] == 1 and stats["shm_batches"] == 0
        expected = oracle.infer_batch(payloads)
        for a, b in zip(served, expected):
            assert np.array_equal(response_bits(a), response_bits(b))

    def test_oversized_batch_degrades_to_pickle(self, artifact_paths, monkeypatch):
        """A batch bigger than one slot still serves — via pickle."""
        monkeypatch.setenv("REPRO_SHM_SLOT_KB", "1")  # 1 KiB slots
        oracle = build_endpoint("segformer")
        rng = np.random.default_rng(2)
        payloads = [
            oracle.request_payload(oracle.synth_request(rng)) for _ in range(2)
        ]  # each image is ~6 KiB > the 1 KiB slot
        with ProcessEndpointPool(
            {"segformer": artifact_paths["segformer"]}, processes=1
        ) as pool:
            assert pool.arena is not None and pool.arena.slot_bytes == 1024
            served = pool.infer_batch("segformer", payloads)
            stats = pool.dataplane_stats()
        assert stats["shm_fallbacks"] == 1 and stats["pickle_batches"] == 1
        assert stats["arena_in_use"] == 0
        expected = oracle.infer_batch(payloads)
        for a, b in zip(served, expected):
            assert np.array_equal(response_bits(a), response_bits(b))

    def test_arena_exhaustion_backpressure_surfaces(self, artifact_paths, monkeypatch):
        """With every slot held, dispatch blocks then fails loudly."""
        monkeypatch.setenv("REPRO_SHM_SLOTS", "2")
        oracle = build_endpoint("bert")
        payload = oracle.request_payload(
            oracle.synth_request(np.random.default_rng(0))
        )
        with ProcessEndpointPool(
            {"bert": artifact_paths["bert"]}, processes=1
        ) as pool:
            pool.shm_timeout_s = 0.1
            held = [pool.arena.acquire(), pool.arena.acquire()]
            with pytest.raises(ArenaExhaustedError):
                pool.infer_batch("bert", [payload])
            for slot in held:
                pool.arena.release(slot)
            # Capacity restored: the same batch now serves.
            served = pool.infer_batch("bert", [payload])
        assert np.array_equal(
            response_bits(served[0]),
            response_bits(oracle.infer_batch([payload])[0]),
        )


# ----------------------------------------------------------------------
# 3. Supervised fleet: chaos + reclamation + fallback
# ----------------------------------------------------------------------


class TestSupervisorShm:
    def test_kill9_mid_shm_batch_loses_nothing_and_leaks_nothing(self, artifact_paths):
        oracle = build_endpoint("llama")
        rng = np.random.default_rng(31)
        payloads = variable_length_payloads(oracle, rng, [4, 9, 17, 24] * 3)
        expected = oracle.infer_batch(payloads)
        supervisor = ServeSupervisor(
            {"llama": artifact_paths["llama"]}, nodes=2
        ).start()
        try:
            assert supervisor.status()["dataplane"]["transport"] == "shm"
            outcome = {}

            def dispatch():
                outcome["results"] = supervisor.dispatch("llama", payloads)

            thread = threading.Thread(target=dispatch)
            thread.start()
            deadline = time.monotonic() + 5.0
            killed = None
            while killed is None and time.monotonic() < deadline:
                busy = supervisor.busy_nodes()
                if busy:
                    killed = supervisor.kill_node(busy[0])
                else:
                    time.sleep(0.002)
            assert killed is not None, "batch finished before the kill landed"
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            # Zero lost requests, bit-identical to the oracle.
            assert len(outcome["results"]) == len(payloads)
            for a, b in zip(outcome["results"], expected):
                assert np.array_equal(response_bits(a), response_bits(b))
            # Full slot reclamation: the killed node's in-flight slots
            # were released by the parent's finally on pipe EOF.
            dataplane = supervisor.status()["dataplane"]
            assert dataplane["arena_in_use"] == 0
            assert dataplane["shm_batches"] >= 1
        finally:
            supervisor.stop()

    def test_supervisor_pickle_fallback_matches(self, artifact_paths):
        oracle = build_endpoint("llama")
        rng = np.random.default_rng(37)
        payloads = variable_length_payloads(oracle, rng, [6, 13])
        expected = oracle.infer_batch(payloads)
        supervisor = ServeSupervisor(
            {"llama": artifact_paths["llama"]}, nodes=1, use_shm=False
        ).start()
        try:
            results = supervisor.dispatch("llama", payloads)
            dataplane = supervisor.status()["dataplane"]
            assert dataplane["transport"] == "pipe"
            assert dataplane["pickle_batches"] == 1
        finally:
            supervisor.stop()
        for a, b in zip(results, expected):
            assert np.array_equal(response_bits(a), response_bits(b))
