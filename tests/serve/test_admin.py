"""Live admin plane: span tracing, HTTP scrape surface, and hot reload.

The observability discipline mirrors the serving invariant: watching the
service must never change what it serves.  Scrapes run against live
bursts (shm on and off) and every served response is still checked
bit-identical to the in-process oracle; ``POST /reload`` rides the
existing canary deploy path, so a divergent artifact answers 409 with
the incumbent untouched.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.artifacts import ArtifactRegistry, compile_endpoint
from repro.serve import (
    BatchPolicy,
    InferenceService,
    ServeSupervisor,
    ServiceMetrics,
    Tracer,
    build_endpoint,
    default_registry,
    mount_admin,
    supervised_service,
)
from repro.serve.admin import (
    admin_port_from_env,
    fetch_json,
    fetch_text,
    post_reload,
    render_prometheus,
)
from repro.serve.trace import (
    LIFECYCLE_STAGES,
    RequestTrace,
    merge_meta_events,
    sample_period,
    trace_sample_from_env,
)
from repro.serve.types import raw_output as response_bits
from repro.serve.workers import process_service


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """bert seed-0/seed-1 (same shapes, different bits) + llama seed-0."""
    registry = ArtifactRegistry(tmp_path_factory.mktemp("admin-registry"))
    for family, seed in (("bert", 0), ("bert", 1), ("llama", 0)):
        registry.put(compile_endpoint(family, seed=seed))
    return registry


def digest_of(registry, family, seed):
    for record in registry.list():
        if record["meta"]["family"] == family and record["meta"]["seed"] == seed:
            return record["digest"]
    raise KeyError((family, seed))


@pytest.fixture(scope="module")
def artifact_paths(registry):
    return {
        "bert": registry.resolve(digest_of(registry, "bert", 0)),
        "llama": registry.resolve(digest_of(registry, "llama", 0)),
    }


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def oracle_burst(family, count, seed=0):
    oracle = build_endpoint(family, seed=0)
    rng = np.random.default_rng(seed)
    requests = [oracle.synth_request(rng) for _ in range(count)]
    expected = [response_bits(oracle.serve_one(request)) for request in requests]
    return requests, expected


def assert_complete_chain(stages):
    """``stages`` must contain admit→…→respond as an ordered subsequence."""
    cursor = iter(stages)
    for required in LIFECYCLE_STAGES:
        assert any(stage == required for stage in cursor), (
            f"missing or out-of-order stage {required!r} in {stages}"
        )


class TestSnapshotOrdering:
    def test_consecutive_snapshots_are_strictly_ordered(self):
        metrics = ServiceMetrics()
        first = metrics.snapshot()
        second = metrics.snapshot()
        assert first["snapshot_seq"] >= 1
        assert second["snapshot_seq"] == first["snapshot_seq"] + 1
        assert second["ts"] >= first["ts"] > 0.0

    def test_snapshot_markers_lead_the_payload(self):
        keys = list(ServiceMetrics().snapshot())
        assert keys[:2] == ["snapshot_seq", "ts"]


class TestTracerUnit:
    def test_sampling_off_is_a_noop(self):
        tracer = Tracer(sample=0.0)
        assert not tracer.enabled
        assert tracer.begin(1, "bert") is None
        tracer.finish(None, "served")  # None-safe
        assert tracer.counters()["ring"] == 0

    def test_sample_period_math(self):
        assert sample_period(0.0) == 0
        assert sample_period(1.0) == 1
        assert sample_period(0.5) == 2
        assert sample_period(0.25) == 4

    def test_counter_sampling_is_deterministic(self):
        tracer = Tracer(sample=0.5)
        sampled = [tracer.begin(i, "bert") is not None for i in range(8)]
        assert sum(sampled) == 4
        assert sampled == sampled[:2] * 4  # strict every-other cadence

    def test_ring_is_bounded(self):
        tracer = Tracer(sample=1.0, capacity=4)
        for i in range(10):
            tracer.finish(tracer.begin(i, "bert"), "served")
        assert tracer.counters()["ring"] == 4
        assert [t["request_id"] for t in tracer.snapshot()] == [6, 7, 8, 9]

    def test_snapshot_is_json_ready(self):
        tracer = Tracer(sample=1.0)
        trace = tracer.begin(7, "bert")
        trace.event("queue", "depth=1")
        tracer.finish(trace, "served")
        payload = json.loads(json.dumps(tracer.snapshot()))
        assert payload[0]["outcome"] == "served"
        assert payload[0]["spans"][0]["stage"] == "admit"
        assert payload[0]["spans"][0]["dt_ms"] == 0.0

    def test_merge_meta_events_folds_into_every_rider(self):
        traces = [RequestTrace(request_id=i, endpoint="bert") for i in range(2)]
        merge_meta_events(traces, [("node", time.monotonic(), "node-0:primary")])
        for trace in traces:
            assert trace.stages() == ["node"]

    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        assert trace_sample_from_env() == 0.0  # off by default
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.25")
        assert trace_sample_from_env() == 0.25
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "nope")
        with pytest.raises(ValueError):
            trace_sample_from_env()
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1.5")
        with pytest.raises(ValueError):
            trace_sample_from_env()
        monkeypatch.delenv("REPRO_ADMIN_PORT", raising=False)
        assert admin_port_from_env() is None
        monkeypatch.setenv("REPRO_ADMIN_PORT", "0")
        assert admin_port_from_env() == 0
        monkeypatch.setenv("REPRO_ADMIN_PORT", "not-a-port")
        with pytest.raises(ValueError):
            admin_port_from_env()


class TestSpanChains:
    def make_service(self, sample=1.0, families=("bert",)):
        return InferenceService(
            default_registry(families=families, seed=0),
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            workers=1,
            queue_limit=256,
            tracer=Tracer(sample=sample),
        )

    def test_served_chain_is_complete_and_monotonic(self):
        requests, expected = oracle_burst("bert", 12, seed=1)
        service = self.make_service().start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            responses = [future.result(timeout=120.0) for future in futures]
        finally:
            service.drain()
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)
            assert response.timing.spans is not None  # surfaced per response
        traces = service.tracer.snapshot()
        assert len(traces) == len(requests)
        for trace in traces:
            assert trace["outcome"] == "served"
            assert_complete_chain([span["stage"] for span in trace["spans"]])
            times = [span["t_s"] for span in trace["spans"]]
            assert times == sorted(times)  # monotonic within the chain

    def test_tracing_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        requests, _ = oracle_burst("bert", 2, seed=2)
        service = InferenceService(
            default_registry(families=("bert",), seed=0),
            policy=BatchPolicy(max_batch=2, max_delay_s=0.001),
            workers=1,
        ).start()
        try:
            assert not service.tracer.enabled
            responses = [service.submit("bert", r).result(timeout=120.0) for r in requests]
        finally:
            service.drain()
        assert all(response.timing.spans is None for response in responses)
        assert service.tracer.snapshot() == []

    def test_generation_chain_records_decode_steps(self):
        requests, expected = oracle_burst("llama-gen", 3, seed=3)
        service = self.make_service(families=("llama-gen",)).start()
        try:
            futures = [service.submit("llama-gen", request) for request in requests]
            responses = [future.result(timeout=300.0) for future in futures]
        finally:
            service.drain()
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)
        for trace in service.tracer.snapshot():
            stages = [span["stage"] for span in trace["spans"]]
            assert trace["outcome"] == "served"
            assert stages.count("decode_step") >= 1  # one span per live step
            assert stages[-1] == "respond"

    def test_supervised_chain_records_node_and_transport(self, artifact_paths):
        requests, expected = oracle_burst("bert", 8, seed=4)
        service = supervised_service(
            ServeSupervisor({"bert": artifact_paths["bert"]}, nodes=2),
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            queue_limit=64,
            block_on_full=True,
            shutdown_supervisor=True,
            tracer=Tracer(sample=1.0),
        ).start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            responses = [future.result(timeout=120.0) for future in futures]
        finally:
            service.drain()
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)
        for trace in service.tracer.snapshot():
            stages = [span["stage"] for span in trace["spans"]]
            assert_complete_chain(stages)
            assert "node" in stages  # which worker actually served it


@pytest.mark.smoke
class TestAdminHTTP:
    def test_status_metrics_trace_healthz_over_http(self):
        requests, expected = oracle_burst("bert", 8, seed=5)
        service = InferenceService(
            default_registry(families=("bert",), seed=0),
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            workers=1,
            tracer=Tracer(sample=1.0),
        ).start()
        server = mount_admin(service, port=0)
        try:
            responses = [service.submit("bert", r).result(timeout=120.0) for r in requests]
            status = fetch_json(server.url + "/status")
            assert status["metrics"]["snapshot_seq"] >= 1
            assert status["metrics"]["completed"] == len(requests)
            assert status["trace"]["sampled"] == len(requests)
            exposition = fetch_text(server.url + "/metrics")
            assert "repro_serve_up 1" in exposition
            assert f"repro_serve_completed_total {len(requests)}" in exposition
            assert 'repro_serve_requests_total{endpoint="bert"}' in exposition
            ring = fetch_json(server.url + "/trace?limit=2")
            assert len(ring["traces"]) == 2
            assert_complete_chain([s["stage"] for s in ring["traces"][-1]["spans"]])
            assert fetch_json(server.url + "/healthz")["state"] == "running"
            with pytest.raises(urllib.request.HTTPError):
                fetch_json(server.url + "/nope")
        finally:
            service.drain()
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)
        assert server.closed  # drain tears the admin plane down too

    def test_render_prometheus_is_line_parseable(self):
        service = InferenceService(default_registry(families=("bert",), seed=0))
        text = render_prometheus(service.status())
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses as a number
            assert name_and_labels.startswith("repro_serve_")

    @pytest.mark.parametrize("shm", ["0", "1"])
    def test_scrape_during_mixed_burst_never_disturbs_bits(
        self, artifact_paths, monkeypatch, shm
    ):
        """The tentpole property: hammering /status + /metrics + /trace
        from threads during a mixed shm/pickle burst raises nothing,
        deadlocks nothing, and every served response stays bit-identical
        to the in-process oracle."""
        monkeypatch.setenv("REPRO_SHM", shm)
        bert_requests, bert_expected = oracle_burst("bert", 12, seed=6)
        llama_requests, llama_expected = oracle_burst("llama", 12, seed=7)
        service = process_service(
            artifact_paths,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            processes=2,
            queue_limit=256,
            block_on_full=True,
            tracer=Tracer(sample=1.0),
        )
        service.process_pool.warmup()
        service.start()
        server = mount_admin(service, port=0)
        stop = threading.Event()
        errors = []

        def scraper():
            while not stop.is_set():
                try:
                    status = fetch_json(server.url + "/status")
                    assert status["metrics"]["snapshot_seq"] >= 1
                    assert "repro_serve_up 1" in fetch_text(server.url + "/metrics")
                    fetch_json(server.url + "/trace?limit=4")
                except Exception as error:  # surfaces after the burst
                    errors.append(error)
                    return

        threads = [threading.Thread(target=scraper, daemon=True) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            futures = [
                service.submit(family, request)
                for pair in zip(bert_requests, llama_requests)
                for family, request in zip(("bert", "llama"), pair)
            ]
            responses = [future.result(timeout=300.0) for future in futures]
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            metrics = service.drain()
        assert not errors, f"scrape failed mid-burst: {errors[0]}"
        assert not any(thread.is_alive() for thread in threads)
        assert metrics["completed"] == len(futures)
        assert metrics["failed"] == 0
        expected = [
            bits
            for pair in zip(bert_expected, llama_expected)
            for bits in pair
        ]
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)


class TestReload:
    def test_reload_hot_swaps_with_zero_lost_requests(self, registry, artifact_paths):
        """POST /reload mid-burst rides the canary deploy path; every
        in-flight request is still served bit-identically."""
        d0 = digest_of(registry, "bert", 0)
        registry.set_pointer("bert", d0)
        requests, expected = oracle_burst("bert", 16, seed=8)
        supervisor = ServeSupervisor(
            {"bert": artifact_paths["bert"]}, nodes=2, registry=registry
        )
        service = supervised_service(
            supervisor,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            queue_limit=64,
            block_on_full=True,
            shutdown_supervisor=True,
            admin_port=0,
        ).start()
        try:
            futures = [service.submit("bert", request) for request in requests]
            code, payload = post_reload(service.admin.url, d0[:12])
            assert code == 200
            assert payload["deployed"]["digest"] == d0
            assert payload["deployed"]["canary_mismatches"] == 0
            responses = [future.result(timeout=300.0) for future in futures]
            status = fetch_json(service.admin.url + "/status")
            assert status["fleet"]["routes"]["bert"]["current"] == d0
        finally:
            metrics = service.drain()
        assert metrics["completed"] == len(requests)  # zero lost requests
        assert metrics["failed"] == 0
        for response, bits in zip(responses, expected):
            assert np.array_equal(response_bits(response.result), bits)

    def test_reload_divergent_artifact_answers_409_and_rolls_back(
        self, registry, artifact_paths
    ):
        d0 = digest_of(registry, "bert", 0)
        d1 = digest_of(registry, "bert", 1)
        registry.set_pointer("bert", d0)
        supervisor = ServeSupervisor(
            {"bert": artifact_paths["bert"]}, nodes=2, registry=registry
        )
        service = supervised_service(
            supervisor, shutdown_supervisor=True, admin_port=0
        ).start()
        try:
            code, payload = post_reload(
                service.admin.url, d1, canary_fraction=0.5, canary_batches=2
            )
            assert code == 409
            assert payload["rolled_back"] is True
            status = fetch_json(service.admin.url + "/status")
            route = status["fleet"]["routes"]["bert"]
            assert route["current"] == d0  # incumbent untouched
            assert route["canary"] is None
        finally:
            service.drain()
        assert registry.pointer("bert")["current"] == d0

    def test_reload_without_supervisor_answers_503(self):
        service = InferenceService(default_registry(families=("bert",), seed=0)).start()
        server = mount_admin(service, port=0)
        try:
            code, payload = post_reload(server.url, "deadbeef")
            assert code == 503
            assert "supervisor" in payload["error"]
        finally:
            service.drain()

    def test_reload_needs_a_ref(self, artifact_paths):
        service = supervised_service(
            ServeSupervisor({"bert": artifact_paths["bert"]}, nodes=1),
            shutdown_supervisor=True,
            admin_port=0,
        ).start()
        try:
            request = urllib.request.Request(
                service.admin.url + "/reload", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.request.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 400
        finally:
            service.drain()


class TestKilledNodeVisibility:
    def test_status_reflects_killed_node_within_one_heartbeat(self, artifact_paths):
        """The chaos observability property: SIGKILL a node and /status
        must show the casualty (restart or error state) within one
        heartbeat interval of the supervisor noticing."""
        heartbeat_s = 0.05
        service = supervised_service(
            ServeSupervisor(
                {"bert": artifact_paths["bert"]},
                nodes=2,
                heartbeat_interval_s=heartbeat_s,
                backoff_base_s=0.01,
            ),
            shutdown_supervisor=True,
            admin_port=0,
        ).start()
        url = service.admin.url
        try:
            supervisor = service.supervisor
            pid = supervisor.status()["nodes"]["node-0"]["pid"]
            supervisor.kill_node("node-0")

            def casualty_visible():
                node = fetch_json(url + "/status")["fleet"]["nodes"]["node-0"]
                return node["restarts"] >= 1 or node["pid"] != pid or node["state"] != "ready"

            # Generous outer deadline for the kill itself to be detected;
            # the scrape latency bound is asserted separately below.
            assert wait_until(casualty_visible, timeout=30.0, interval=heartbeat_s / 5)
            started = time.monotonic()
            assert casualty_visible()  # one scrape, not a polling race
            assert time.monotonic() - started < heartbeat_s + 1.0
        finally:
            service.drain()


class TestCLI:
    def test_usage_text_names_every_verb(self):
        from repro.__main__ import __doc__ as cli_doc

        assert "serve-admin {status | watch | drain NODE | deploy REF | reload REF" in cli_doc
        for verb in ("watch", "reload REF", "--admin-port"):
            assert verb in cli_doc

    def test_watch_and_reload_over_url(self, capsys):
        from repro.__main__ import main

        service = InferenceService(default_registry(families=("bert",), seed=0)).start()
        server = mount_admin(service, port=0)
        try:
            assert main(["serve-admin", "watch", "--url", server.url, "--count", "2",
                         "--interval", "0.05"]) == 0
            out = capsys.readouterr().out
            assert "service: running" in out
            assert "watched 2 frame(s)" in out
            # reload over HTTP against an unsupervised service: exit 1
            assert main(["serve-admin", "reload", "deadbeef", "--url", server.url]) == 1
            assert "HTTP 503" in capsys.readouterr().out
            assert main(["serve-admin", "reload", "--url", server.url]) == 2
            assert "needs an artifact digest" in capsys.readouterr().out
        finally:
            service.drain()
