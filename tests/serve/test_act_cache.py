"""Endpoint opt-in activation-code cache and its serve-metrics counters."""

import numpy as np
import pytest

from repro.serve import BatchPolicy, InferenceService, EndpointRegistry, build_endpoint
from repro.serve.endpoint import ModelEndpoint


def digest_endpoint(family="bert", seed=0):
    # A fresh plan on the shared model: the memoized endpoint's own plan
    # must keep its cache disabled (other tests rely on the default).
    base = build_endpoint(family, seed=seed)
    return ModelEndpoint(
        f"{family}-cached",
        base.scenario,
        base.model,
        base.request_shape,
        cache_activations="digest",
    )


class TestEndpointOptIn:
    def test_default_endpoint_disables_the_cache(self):
        endpoint = build_endpoint("bert")
        assert endpoint.cache_activations is False
        assert endpoint.plan.cache_activations is False

    def test_invalid_mode_rejected(self):
        base = build_endpoint("bert")
        with pytest.raises(ValueError):
            ModelEndpoint(
                "x", base.scenario, base.model, base.request_shape,
                cache_activations="always",
            )

    def test_digest_mode_hits_on_repeated_identical_requests(self):
        endpoint = digest_endpoint()
        assert endpoint.plan.cache_activations is True
        rng = np.random.default_rng(0)
        request = endpoint.synth_request(rng)
        first = endpoint.serve_one(request)
        before = endpoint.act_cache_stats()
        second = endpoint.serve_one(request)
        after = endpoint.act_cache_stats()
        assert np.array_equal(first.logits, second.logits)
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_distinct_requests_miss(self):
        endpoint = digest_endpoint()
        rng = np.random.default_rng(1)
        endpoint.serve_one(endpoint.synth_request(rng))
        before = endpoint.act_cache_stats()
        endpoint.serve_one(endpoint.synth_request(rng))
        after = endpoint.act_cache_stats()
        assert after["misses"] > before["misses"]


class TestServeMetricsHitRate:
    def test_snapshot_reports_hit_rate(self):
        endpoint = digest_endpoint()
        registry = EndpointRegistry()
        registry.register(endpoint)
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=1, max_delay_s=0.0),
            workers=1,
        ).start()
        try:
            rng = np.random.default_rng(2)
            request = endpoint.synth_request(rng)
            for _ in range(3):  # identical request: the repeat traffic case
                service.serve(endpoint.name, request, timeout=30)
        finally:
            metrics = service.drain()
        stats = metrics["endpoints"][endpoint.name]["act_cache"]
        # First pass misses every layer; the two repeats hit every layer.
        layers = len(endpoint.plan.layer_names)
        assert stats["hits"] == 2 * layers
        assert stats["misses"] == layers
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_default_endpoint_reports_no_cache_block(self):
        endpoint = build_endpoint("bert")
        registry = EndpointRegistry()
        registry.register(endpoint)
        service = InferenceService(registry, workers=1).start()
        try:
            rng = np.random.default_rng(3)
            service.serve("bert", endpoint.synth_request(rng), timeout=30)
        finally:
            metrics = service.drain()
        assert "act_cache" not in metrics["endpoints"]["bert"]
