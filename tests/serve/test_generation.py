"""Continuous batching's load-bearing invariant, as a property test.

Any join/leave schedule the continuous batcher produces — whatever mix of
context lengths, token budgets, priorities and batch capacities — must
emit tokens **bit-identical** to a full-recompute oracle that re-runs
``next_token_logprobs`` over the whole grown context at every step, with
no KV cache anywhere.  Joins, evictions and preemption may change which
sequences share a decode step, never their bits.

The eviction tests pin the lifecycle half of the contract: a sequence
evicted mid-generation ends in **exactly one** typed terminal state —
``DeadlineExceeded(reason="decode")`` for per-token deadline expiry,
``Shed(reason="preempted")`` for priority preemption — and the survivors
keep decoding unperturbed.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    BatchPolicy,
    DeadlineExceeded,
    EndpointRegistry,
    GenerationRequest,
    InferenceService,
    SLOBudget,
    Shed,
    build_endpoint,
)


def full_recompute_oracle(endpoint, request):
    """Greedy generation by repeated full-context passes — no KV cache.

    Mirrors the decode loop's stop conditions (budget reached, or the
    context window full) but recomputes every step from scratch through
    ``next_token_logprobs``; the ISSUE's verification anchor.
    """
    model = endpoint.model
    max_len = model.config.max_seq_len
    context = np.asarray(request.tokens, dtype=np.int64)
    budget = int(request.max_new_tokens)
    tokens, rows = [], []
    with endpoint.engines.engine():
        logp = model.next_token_logprobs(context[None])[0]
        while True:
            tokens.append(int(logp.argmax()))
            rows.append(logp)
            if len(tokens) >= budget or context.shape[0] + len(tokens) - 1 >= max_len:
                break
            grown = np.concatenate([context, np.array(tokens, dtype=np.int64)])
            logp = model.next_token_logprobs(grown[None])[0]
    return np.array(tokens, dtype=np.int64), np.stack(rows)


def generation_service(endpoint, max_batch, **kwargs):
    registry = EndpointRegistry()
    registry.register(endpoint)
    return InferenceService(
        registry,
        policy=BatchPolicy(max_batch=max_batch, max_delay_s=0.001),
        workers=1,
        **kwargs,
    )


# ----------------------------------------------------------------------
# The sweep: join/leave schedules × context lengths × priorities
# ----------------------------------------------------------------------


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seqs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=12),  # prompt length
            st.integers(min_value=1, max_value=5),  # token budget
            st.integers(min_value=0, max_value=2),  # priority
        ),
        min_size=1,
        max_size=6,
    ),
    payload_seed=st.integers(min_value=0, max_value=10_000),
    max_batch=st.integers(min_value=1, max_value=4),
)
def test_any_join_leave_schedule_matches_full_recompute(seqs, payload_seed, max_batch):
    endpoint = build_endpoint("llama-gen")
    rng = np.random.default_rng(payload_seed)
    vocab = endpoint.model.config.vocab_size
    requests = [
        GenerationRequest(
            tokens=rng.integers(0, vocab, size=length), max_new_tokens=budget
        )
        for length, budget, _ in seqs
    ]
    with generation_service(endpoint, max_batch) as service:
        futures = [
            service.submit(endpoint.name, request, priority=priority)
            for request, (_, _, priority) in zip(requests, seqs)
        ]
        responses = [future.result(120.0) for future in futures]
    for index, (request, response) in enumerate(zip(requests, responses)):
        tokens, rows = full_recompute_oracle(endpoint, request)
        assert np.array_equal(response.result.tokens, tokens), (
            f"sequence {index}: tokens drifted from the full-recompute oracle"
        )
        assert np.array_equal(response.result.logprobs, rows), (
            f"sequence {index}: logprobs drifted from the full-recompute oracle"
        )
        assert response.result.steps == len(tokens)


def test_fixed_batch_path_matches_full_recompute():
    """``infer_batch`` (the process-worker / serve_one path) hits the same
    oracle — both execution paths share the decode engine's bits."""
    endpoint = build_endpoint("llama-gen")
    rng = np.random.default_rng(5)
    vocab = endpoint.model.config.vocab_size
    requests = [
        GenerationRequest(tokens=rng.integers(0, vocab, size=n), max_new_tokens=b)
        for n, b in ((1, 5), (7, 3), (12, 4))
    ]
    payloads = [endpoint.request_payload(r) for r in requests]
    batched = endpoint.infer_batch(payloads)
    for request, response in zip(requests, batched):
        tokens, rows = full_recompute_oracle(endpoint, request)
        assert np.array_equal(response.tokens, tokens)
        assert np.array_equal(response.logprobs, rows)


def test_budget_clips_to_context_window():
    """A budget larger than the remaining window stops at exhaustion."""
    endpoint = build_endpoint("llama-gen")
    max_len = endpoint.model.config.max_seq_len
    rng = np.random.default_rng(2)
    vocab = endpoint.model.config.vocab_size
    prompt = rng.integers(0, vocab, size=max_len - 3)
    response = endpoint.serve_one(
        GenerationRequest(tokens=prompt, max_new_tokens=10)
    )
    # Tokens are read at context lengths P .. max_len (the last one from
    # the full window), then no further decode step is possible:
    # max_len - len(prompt) + 1 generated tokens, not 10.
    assert response.steps == max_len - prompt.shape[0] + 1
    tokens, rows = full_recompute_oracle(
        endpoint, GenerationRequest(tokens=prompt, max_new_tokens=10)
    )
    assert np.array_equal(response.tokens, tokens)
    assert np.array_equal(response.logprobs, rows)


# ----------------------------------------------------------------------
# Eviction: exactly one typed terminal state
# ----------------------------------------------------------------------


def _wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for service state")
        time.sleep(0.001)


def test_deadline_eviction_mid_decode_is_single_typed_terminal_state():
    endpoint = build_endpoint("llama-gen", config_overrides={"max_seq_len": 128})
    rng = np.random.default_rng(0)
    vocab = endpoint.model.config.vocab_size
    keeper = GenerationRequest(
        tokens=rng.integers(0, vocab, size=3), max_new_tokens=120
    )
    doomed = GenerationRequest(
        tokens=rng.integers(0, vocab, size=3), max_new_tokens=120
    )
    with generation_service(endpoint, max_batch=2) as service:
        base = endpoint.gen_stats()["prefills"]
        keep_future = service.submit(endpoint.name, keeper)
        # Wait until the keeper's prefill ran, so the doomed request joins
        # a *live* decode loop and its deadline expires mid-decode, never
        # in the queue.
        _wait_for(lambda: endpoint.gen_stats()["prefills"] > base)
        doom_future = service.submit(endpoint.name, doomed, deadline_s=0.08)
        keep_response = keep_future.result(120.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            doom_future.result(120.0)
    assert excinfo.value.reason == "decode"
    assert excinfo.value.endpoint == endpoint.name
    # Exactly one terminal state each: keeper completed, doomed evicted
    # with one typed deadline rejection — nothing shed, nothing failed.
    snapshot = service.metrics.snapshot()
    assert snapshot["completed"] == 1
    assert snapshot["failed"] == 0
    assert snapshot["shed"]["total"] == 0
    assert snapshot["deadline_exceeded"]["total"] == 1
    assert snapshot["deadline_exceeded"]["by_stage"] == {"decode": 1}
    # The survivor's bits are unperturbed by sharing steps with a
    # sequence that was evicted mid-flight.
    oracle = endpoint.serve_one(keeper)
    assert np.array_equal(keep_response.result.tokens, oracle.tokens)
    assert np.array_equal(keep_response.result.logprobs, oracle.logprobs)


def test_preemption_is_single_typed_terminal_state():
    endpoint = build_endpoint("llama-gen", config_overrides={"max_seq_len": 128})
    rng = np.random.default_rng(1)
    vocab = endpoint.model.config.vocab_size
    victim = GenerationRequest(
        tokens=rng.integers(0, vocab, size=3), max_new_tokens=120
    )
    winner = GenerationRequest(
        tokens=rng.integers(0, vocab, size=5), max_new_tokens=4
    )
    with generation_service(
        endpoint,
        max_batch=1,
        slo_budgets={endpoint.name: SLOBudget(max_queue_depth=1)},
    ) as service:
        base = endpoint.gen_stats()["prefills"]
        victim_future = service.submit(endpoint.name, victim, priority=0)
        # The victim must hold the only slot before the winner arrives.
        _wait_for(lambda: endpoint.gen_stats()["prefills"] > base)
        winner_future = service.submit(endpoint.name, winner, priority=1)
        winner_response = winner_future.result(120.0)
        with pytest.raises(Shed) as excinfo:
            victim_future.result(120.0)
    assert excinfo.value.reason == "preempted"
    assert excinfo.value.endpoint == endpoint.name
    snapshot = service.metrics.snapshot()
    assert snapshot["completed"] == 1
    assert snapshot["failed"] == 0
    assert snapshot["deadline_exceeded"]["total"] == 0
    assert snapshot["shed"]["total"] == 1
    assert snapshot["shed"]["by_reason"] == {"preempted": 1}
    # The preempting sequence's bits equal its solo serving.
    oracle = endpoint.serve_one(winner)
    assert np.array_equal(winner_response.result.tokens, oracle.tokens)
    assert np.array_equal(winner_response.result.logprobs, oracle.logprobs)


def test_equal_priority_never_preempts():
    """Preemption requires a *strictly* higher-priority arrival; an equal
    tier waits its turn and both sequences complete."""
    endpoint = build_endpoint("llama-gen")
    rng = np.random.default_rng(3)
    vocab = endpoint.model.config.vocab_size
    first = GenerationRequest(tokens=rng.integers(0, vocab, size=4), max_new_tokens=8)
    second = GenerationRequest(tokens=rng.integers(0, vocab, size=6), max_new_tokens=3)
    with generation_service(
        endpoint,
        max_batch=1,
        slo_budgets={endpoint.name: SLOBudget(max_queue_depth=1)},
    ) as service:
        base = endpoint.gen_stats()["prefills"]
        first_future = service.submit(endpoint.name, first, priority=1)
        _wait_for(lambda: endpoint.gen_stats()["prefills"] > base)
        second_future = service.submit(endpoint.name, second, priority=1)
        responses = [first_future.result(120.0), second_future.result(120.0)]
    snapshot = service.metrics.snapshot()
    assert snapshot["completed"] == 2
    assert snapshot["shed"]["total"] == 0
    for request, response in zip((first, second), responses):
        oracle = endpoint.serve_one(request)
        assert np.array_equal(response.result.tokens, oracle.tokens)


# ----------------------------------------------------------------------
# Generation metrics in status()
# ----------------------------------------------------------------------


def test_generation_metrics_in_status():
    endpoint = build_endpoint("llama-gen")
    rng = np.random.default_rng(9)
    vocab = endpoint.model.config.vocab_size
    requests = [
        GenerationRequest(tokens=rng.integers(0, vocab, size=n), max_new_tokens=b)
        for n, b in ((2, 3), (6, 4), (9, 2), (4, 5))
    ]
    with generation_service(endpoint, max_batch=4) as service:
        futures = [service.submit(endpoint.name, r) for r in requests]
        responses = [f.result(120.0) for f in futures]
        status = service.status()
    gen = status["metrics"]["endpoints"][endpoint.name]["generation"]
    assert gen["sequences"] == len(requests)
    assert gen["tokens"] == sum(r.result.steps for r in responses)
    assert gen["steps"] >= max(r.result.steps for r in responses) - 1
    assert gen["tokens_per_s"] > 0.0
    assert gen["mean_live_batch"] >= 1.0
    counters = status["endpoints"][endpoint.name]["generation"]
    assert counters["sequences"] >= len(requests)
    assert counters["decode_steps"] >= 1
