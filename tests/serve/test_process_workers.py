"""Process-level serve workers: stubs, pool dispatch, determinism."""

import numpy as np
import pytest

from repro.artifacts import compile_endpoint, write_artifact
from repro.serve import (
    ArtifactEndpointStub,
    BatchPolicy,
    ProcessEndpointPool,
    build_endpoint,
    describe_artifacts,
    process_service,
    stub_registry,
)
from repro.serve.types import ClassificationRequest, ScoringRequest
from repro.serve.types import raw_output as response_bits


@pytest.fixture(scope="module")
def artifact_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-artifacts")
    paths = {}
    for family in ("bert", "llama"):
        path = root / family
        write_artifact(compile_endpoint(family), path)
        paths[family] = path
    return paths


class TestArtifactEndpointStub:
    def test_validates_like_the_real_endpoint(self, artifact_paths):
        stub = ArtifactEndpointStub("bert", artifact_paths["bert"])
        real = build_endpoint("bert")
        rng = np.random.default_rng(0)
        request = stub.synth_request(rng)
        assert isinstance(request, ClassificationRequest)
        assert np.array_equal(stub.request_payload(request), real.request_payload(request))
        assert stub.coalesce_key(stub.request_payload(request)) == real.coalesce_key(
            real.request_payload(request)
        )

    def test_rejects_bad_requests(self, artifact_paths):
        stub = ArtifactEndpointStub("bert", artifact_paths["bert"])
        with pytest.raises(TypeError):
            stub.request_payload(ScoringRequest(tokens=np.array([1, 2, 3])))
        with pytest.raises(ValueError):
            stub.request_payload(ClassificationRequest(tokens=np.array([10_000])))

    def test_infer_batch_refuses(self, artifact_paths):
        stub = ArtifactEndpointStub("bert", artifact_paths["bert"])
        with pytest.raises(RuntimeError):
            stub.infer_batch([np.zeros(8, dtype=np.int64)])

    def test_stub_registry_and_describe(self, artifact_paths):
        registry = stub_registry(artifact_paths)
        assert set(registry.names) == {"bert", "llama"}
        text = describe_artifacts(artifact_paths)
        assert "bert" in text and "digest=" in text


class TestProcessEndpointPool:
    def test_pool_serves_bit_identical_batches(self, artifact_paths):
        rng = np.random.default_rng(3)
        oracle = build_endpoint("bert")
        payloads = [
            oracle.request_payload(oracle.synth_request(rng)) for _ in range(4)
        ]
        with ProcessEndpointPool(artifact_paths, processes=2) as pool:
            served = pool.infer_batch("bert", payloads)
        expected = oracle.infer_batch(payloads)
        for a, b in zip(served, expected):
            assert np.array_equal(response_bits(a), response_bits(b))

    def test_unknown_endpoint(self, artifact_paths):
        pool = ProcessEndpointPool(artifact_paths, processes=1)
        try:
            with pytest.raises(KeyError):
                pool.infer_batch("segformer", [])
        finally:
            pool.shutdown()

    def test_rejects_bad_configuration(self, artifact_paths):
        with pytest.raises(ValueError):
            ProcessEndpointPool(artifact_paths, processes=0)
        with pytest.raises(ValueError):
            ProcessEndpointPool({}, processes=1)


class TestProcessService:
    def test_mixed_traffic_matches_sequential_oracle(self, artifact_paths):
        """The serve determinism invariant, across process boundaries."""
        service = process_service(
            artifact_paths,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            processes=2,
            queue_limit=64,
            block_on_full=True,
        )
        service.process_pool.warmup()
        rng = np.random.default_rng(17)
        stream = []
        for i in range(10):
            name = ("bert", "llama")[i % 2]
            stream.append((name, service.registry.get(name).synth_request(rng)))
        service.start()
        try:
            futures = [service.submit(name, request) for name, request in stream]
            responses = [future.result(timeout=60) for future in futures]
        finally:
            metrics = service.drain()
        assert metrics["completed"] == len(stream)
        for (name, request), response in zip(stream, responses):
            single = build_endpoint(name).serve_one(request)
            assert np.array_equal(
                response_bits(response.result), response_bits(single)
            ), f"{name} response drifted across the process boundary"

    def test_parent_registry_holds_only_stubs(self, artifact_paths):
        service = process_service(artifact_paths, processes=1)
        try:
            for endpoint in service.registry:
                assert isinstance(endpoint, ArtifactEndpointStub)
        finally:
            service.process_pool.shutdown()


@pytest.fixture(scope="module")
def new_family_artifact_paths(tmp_path_factory):
    """Compiled artifacts for the two families this PR adds to serving."""
    root = tmp_path_factory.mktemp("serve-gen-artifacts")
    paths = {}
    for family in ("llama-gen", "efficientvit"):
        path = root / family
        write_artifact(compile_endpoint(family), path)
        paths[family] = path
    return paths


class TestGenerationAcrossTransports:
    """The acceptance anchor: generated tokens are bit-identical across
    both process transports (shm descriptors and the pickle pipe).

    Generation responses have ragged row counts (each sequence's budget
    is its own), so under shm the worker transparently falls back to a
    pickled reply when a batch cannot stack — either way the bits must
    equal the in-process fixed-batch oracle.
    """

    @pytest.mark.parametrize("shm", ["1", "0"])
    def test_generation_and_image_bits_survive_transport(
        self, new_family_artifact_paths, monkeypatch, shm
    ):
        monkeypatch.setenv("REPRO_SHM", shm)
        service = process_service(
            new_family_artifact_paths,
            policy=BatchPolicy(max_batch=4, max_delay_s=0.001),
            processes=1,
            queue_limit=64,
            block_on_full=True,
        )
        rng = np.random.default_rng(23)
        stream = []
        for i in range(8):
            name = ("llama-gen", "efficientvit")[i % 2]
            stream.append((name, service.registry.get(name).synth_request(rng)))
        service.start()
        try:
            futures = [service.submit(name, request) for name, request in stream]
            responses = [future.result(timeout=120) for future in futures]
        finally:
            metrics = service.drain()
        assert metrics["completed"] == len(stream)
        for (name, request), response in zip(stream, responses):
            single = build_endpoint(name).serve_one(request)
            assert np.array_equal(
                response_bits(response.result), response_bits(single)
            ), f"{name} response drifted across the {'shm' if shm == '1' else 'pipe'} transport"
            if name == "llama-gen":
                assert np.array_equal(response.result.tokens, single.tokens)
                assert response.result.steps == single.steps
            else:
                assert response.result.label == single.label
