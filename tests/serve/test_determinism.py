"""The serving layer's load-bearing invariant, as a property test.

Any interleaving and any coalescing of N requests must return responses
**bit-identical** to N sequential single-request passes — across all
three scenario families.  This is the batched-vs-scalar oracle
discipline of ``tests/rae/test_reduce_batch.py`` lifted to the service
layer: the oracle is ``ModelEndpoint.serve_one``, the system under test
is whatever batches the :class:`MicroBatcher` decides to form.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import BatchPolicy, MicroBatcher, PendingRequest, build_endpoint

FAMILIES = ("bert", "llama", "segformer")


def response_bits(result):
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise AssertionError(f"no raw output on {type(result).__name__}")


def coalesced_responses(requests, max_batch, order):
    """Serve ``requests`` through MicroBatcher-formed batches in ``order``."""
    batcher = MicroBatcher(BatchPolicy(max_batch=max_batch, max_delay_s=0.0))
    for position, index in enumerate(order):
        family, request = requests[index]
        endpoint = build_endpoint(family)
        payload = endpoint.request_payload(request)
        batcher.put(
            endpoint.coalesce_key(payload),
            PendingRequest(
                request_id=index,
                endpoint=family,
                payload=payload,
                enqueued_at=float(position),
            ),
        )
    outputs = {}
    while True:
        batch = batcher.pop_ready(now=float("inf"), flush=True)
        if batch is None:
            break
        results = build_endpoint(batch.endpoint).infer_batch(
            [pending.payload for pending in batch.requests]
        )
        for pending, result in zip(batch.requests, results):
            outputs[pending.request_id] = result
    return outputs


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    families=st.lists(st.sampled_from(FAMILIES), min_size=1, max_size=5),
    payload_seed=st.integers(min_value=0, max_value=10_000),
    max_batch=st.integers(min_value=1, max_value=4),
    order_seed=st.integers(min_value=0, max_value=10_000),
)
def test_any_coalescing_matches_sequential(families, payload_seed, max_batch, order_seed):
    rng = np.random.default_rng(payload_seed)
    requests = [
        (family, build_endpoint(family).synth_request(rng)) for family in families
    ]
    sequential = [
        build_endpoint(family).serve_one(request) for family, request in requests
    ]
    order = np.random.default_rng(order_seed).permutation(len(requests))
    outputs = coalesced_responses(requests, max_batch, order)
    assert set(outputs) == set(range(len(requests)))
    for index, single in enumerate(sequential):
        assert np.array_equal(
            response_bits(outputs[index]), response_bits(single)
        ), f"request {index} ({requests[index][0]}) drifted under coalescing"


@pytest.mark.parametrize("family", FAMILIES)
def test_full_batch_matches_sequential_per_family(family):
    """Fixed-seed sanity anchor: one full batch per scenario family."""
    endpoint = build_endpoint(family)
    rng = np.random.default_rng(42)
    requests = [endpoint.synth_request(rng) for _ in range(5)]
    payloads = [endpoint.request_payload(r) for r in requests]
    batched = endpoint.infer_batch(payloads)
    for request, coalesced in zip(requests, batched):
        single = endpoint.serve_one(request)
        assert np.array_equal(response_bits(coalesced), response_bits(single))


def test_segmentation_class_maps_match_under_batching():
    """The decoded summary (argmax class map) is batch-invariant too."""
    endpoint = build_endpoint("segformer")
    rng = np.random.default_rng(7)
    requests = [endpoint.synth_request(rng) for _ in range(3)]
    payloads = [endpoint.request_payload(r) for r in requests]
    batched = endpoint.infer_batch(payloads)
    for request, coalesced in zip(requests, batched):
        single = endpoint.serve_one(request)
        assert np.array_equal(coalesced.class_map, single.class_map)
