"""The serving layer's load-bearing invariant, as a property test.

Any interleaving and any coalescing of N requests must return responses
**bit-identical** to N sequential single-request passes — across all
scenario families, autoregressive generation included.  This is the batched-vs-scalar oracle
discipline of ``tests/rae/test_reduce_batch.py`` lifted to the service
layer: the oracle is ``ModelEndpoint.serve_one``, the system under test
is whatever batches the :class:`MicroBatcher` decides to form.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import BatchPolicy, MicroBatcher, PendingRequest, build_endpoint

FAMILIES = ("bert", "llama", "segformer", "efficientvit", "llama-gen")


def response_bits(result):
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise AssertionError(f"no raw output on {type(result).__name__}")


def coalesced_responses(requests, max_batch, order):
    """Serve ``requests`` through MicroBatcher-formed batches in ``order``."""
    batcher = MicroBatcher(BatchPolicy(max_batch=max_batch, max_delay_s=0.0))
    for position, index in enumerate(order):
        family, request = requests[index]
        endpoint = build_endpoint(family)
        payload = endpoint.request_payload(request)
        batcher.put(
            endpoint.coalesce_key(payload),
            PendingRequest(
                request_id=index,
                endpoint=family,
                payload=payload,
                enqueued_at=float(position),
            ),
        )
    outputs = {}
    while True:
        batch = batcher.pop_ready(now=float("inf"), flush=True)
        if batch is None:
            break
        results = build_endpoint(batch.endpoint).infer_batch(
            [pending.payload for pending in batch.requests]
        )
        for pending, result in zip(batch.requests, results):
            outputs[pending.request_id] = result
    return outputs


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    families=st.lists(st.sampled_from(FAMILIES), min_size=1, max_size=5),
    payload_seed=st.integers(min_value=0, max_value=10_000),
    max_batch=st.integers(min_value=1, max_value=4),
    order_seed=st.integers(min_value=0, max_value=10_000),
)
def test_any_coalescing_matches_sequential(families, payload_seed, max_batch, order_seed):
    rng = np.random.default_rng(payload_seed)
    requests = [
        (family, build_endpoint(family).synth_request(rng)) for family in families
    ]
    sequential = [
        build_endpoint(family).serve_one(request) for family, request in requests
    ]
    order = np.random.default_rng(order_seed).permutation(len(requests))
    outputs = coalesced_responses(requests, max_batch, order)
    assert set(outputs) == set(range(len(requests)))
    for index, single in enumerate(sequential):
        assert np.array_equal(
            response_bits(outputs[index]), response_bits(single)
        ), f"request {index} ({requests[index][0]}) drifted under coalescing"


@pytest.mark.parametrize("family", FAMILIES)
def test_full_batch_matches_sequential_per_family(family):
    """Fixed-seed sanity anchor: one full batch per scenario family."""
    endpoint = build_endpoint(family)
    rng = np.random.default_rng(42)
    requests = [endpoint.synth_request(rng) for _ in range(5)]
    payloads = [endpoint.request_payload(r) for r in requests]
    batched = endpoint.infer_batch(payloads)
    for request, coalesced in zip(requests, batched):
        single = endpoint.serve_one(request)
        assert np.array_equal(response_bits(coalesced), response_bits(single))


def test_segmentation_class_maps_match_under_batching():
    """The decoded summary (argmax class map) is batch-invariant too."""
    endpoint = build_endpoint("segformer")
    rng = np.random.default_rng(7)
    requests = [endpoint.synth_request(rng) for _ in range(3)]
    payloads = [endpoint.request_payload(r) for r in requests]
    batched = endpoint.infer_batch(payloads)
    for request, coalesced in zip(requests, batched):
        single = endpoint.serve_one(request)
        assert np.array_equal(coalesced.class_map, single.class_map)


# ----------------------------------------------------------------------
# Bucketed padding: every (length, bucket) pair is bit-identical
# ----------------------------------------------------------------------


def test_padding_tripwire_every_length_and_bucket():
    """Deterministic sweep: each prompt length 1..max_seq_len serves the
    same bits alone (padded to its own bucket) and inside a mixed batch
    padded to the *maximum* bucket.  If someone replaces the causal
    pad-invariant softmax with a plain one, this is the test that snaps.
    """
    endpoint = build_endpoint("llama")
    max_len = endpoint.model.config.max_seq_len
    for seed in (0, 1):
        rng = np.random.default_rng(seed)
        requests = [
            endpoint.synth_request(rng, length=length)
            for length in range(1, max_len + 1)
        ]
        payloads = [endpoint.request_payload(r) for r in requests]
        singles = [endpoint.serve_one(r) for r in requests]
        # One batch holding every length pads everything to the top
        # bucket — the maximal padding any request can ever receive.
        mixed = endpoint.infer_batch(payloads)
        for length, single, padded in zip(range(1, max_len + 1), singles, mixed):
            assert np.array_equal(
                response_bits(padded), response_bits(single)
            ), f"seed {seed}: length {length} drifted when padded to {max_len}"
            assert padded.top_token == single.top_token


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    payload_seed=st.integers(min_value=0, max_value=10_000),
    lengths=st.lists(st.integers(min_value=1, max_value=24), min_size=1, max_size=6),
    pool_size=st.integers(min_value=1, max_value=3),
)
def test_engine_pool_and_buckets_match_sequential(payload_seed, lengths, pool_size):
    """Variable-length scoring through an N-clone engine pool, coalesced
    by bucket, stays bit-identical to the single-request oracle."""
    endpoint = build_endpoint("llama", engine_pool=pool_size)
    try:
        assert endpoint.engines.size == pool_size
        rng = np.random.default_rng(payload_seed)
        requests = [endpoint.synth_request(rng, length=n) for n in lengths]
        singles = [endpoint.serve_one(r) for r in requests]
        outputs = coalesced_responses(
            [("llama", r) for r in requests], max_batch=4, order=range(len(requests))
        )
        for index, single in enumerate(singles):
            assert np.array_equal(response_bits(outputs[index]), response_bits(single))
    finally:
        endpoint.resize_engine_pool(1)  # restore the memoized endpoint


def test_engine_pool_concurrent_batches_match_sequential():
    """N threads hammering one endpoint through N clones: no cross-batch
    state bleed — every response equals its sequential oracle."""
    import threading

    endpoint = build_endpoint("llama", engine_pool=3)
    try:
        rng = np.random.default_rng(13)
        batches = [
            [endpoint.request_payload(endpoint.synth_request(rng, length=n)) for n in lens]
            for lens in ([5, 5, 9], [17, 2], [24], [3, 3, 3, 3], [12, 7])
        ]
        expected = [[endpoint.infer_batch([p])[0] for p in batch] for batch in batches]
        results = [None] * len(batches)

        def run(i):
            results[i] = endpoint.infer_batch(batches[i])

        threads = [threading.Thread(target=run, args=(i,)) for i in range(len(batches))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for batch_out, batch_expected in zip(results, expected):
            for got, want in zip(batch_out, batch_expected):
                assert np.array_equal(response_bits(got), response_bits(want))
                assert got.top_token == want.top_token
    finally:
        endpoint.resize_engine_pool(1)
