"""MicroBatcher unit tests: size-or-timeout readiness, FIFO fairness."""

import numpy as np
import pytest

from repro.serve import BatchPolicy, MicroBatcher, PendingRequest


def pending(i, endpoint="bert", t=0.0, shape=(4,)):
    return PendingRequest(
        request_id=i, endpoint=endpoint, payload=np.zeros(shape), enqueued_at=t
    )


def key(endpoint="bert", shape=(4,)):
    return (endpoint, shape)


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay_s=-1.0)

    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1 and policy.max_delay_s >= 0


class TestReadiness:
    def test_not_ready_before_deadline_or_fill(self):
        b = MicroBatcher(BatchPolicy(max_batch=4, max_delay_s=0.010))
        b.put(key(), pending(0, t=1.0))
        assert b.pop_ready(now=1.005) is None
        assert b.depth() == 1

    def test_full_batch_dispatches_immediately(self):
        b = MicroBatcher(BatchPolicy(max_batch=3, max_delay_s=10.0))
        for i in range(3):
            b.put(key(), pending(i, t=1.0))
        batch = b.pop_ready(now=1.0)
        assert batch is not None
        assert [p.request_id for p in batch.requests] == [0, 1, 2]
        assert b.depth() == 0

    def test_max_delay_expiry_dispatches_partial(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=0.010))
        b.put(key(), pending(0, t=1.0))
        b.put(key(), pending(1, t=1.002))
        batch = b.pop_ready(now=1.011)
        assert batch is not None and len(batch) == 2

    def test_overfull_queue_leaves_remainder_ready(self):
        b = MicroBatcher(BatchPolicy(max_batch=2, max_delay_s=10.0))
        for i in range(5):
            b.put(key(), pending(i, t=1.0))
        first = b.pop_ready(now=1.0)
        second = b.pop_ready(now=1.0)
        assert [p.request_id for p in first.requests] == [0, 1]
        assert [p.request_id for p in second.requests] == [2, 3]
        assert b.depth() == 1
        assert b.pop_ready(now=1.0) is None  # remainder not full, not expired

    def test_flush_dispatches_everything(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=10.0))
        b.put(key(), pending(0, t=1.0))
        b.put(key("llama", (2,)), pending(1, endpoint="llama", t=2.0, shape=(2,)))
        batches = []
        while True:
            batch = b.pop_ready(now=2.0, flush=True)
            if batch is None:
                break
            batches.append(batch)
        assert len(batches) == 2 and b.depth() == 0


class TestFairnessAndKeys:
    def test_oldest_head_dispatches_first(self):
        b = MicroBatcher(BatchPolicy(max_batch=2, max_delay_s=0.0))
        b.put(key("llama", (2,)), pending(0, endpoint="llama", t=2.0, shape=(2,)))
        b.put(key("bert"), pending(1, t=1.0))
        batch = b.pop_ready(now=3.0)
        assert batch.endpoint == "bert"  # older head wins despite insertion order

    def test_shapes_never_mix(self):
        b = MicroBatcher(BatchPolicy(max_batch=4, max_delay_s=0.0))
        b.put(key(shape=(4,)), pending(0, t=1.0))
        b.put(key(shape=(6,)), pending(1, t=1.0, shape=(6,)))
        first = b.pop_ready(now=1.0)
        second = b.pop_ready(now=1.0)
        assert len(first) == 1 and len(second) == 1
        assert first.key != second.key

    def test_key_depths(self):
        b = MicroBatcher(BatchPolicy())
        b.put(key(), pending(0, t=0.0))
        b.put(key(), pending(1, t=0.0))
        assert b.key_depths() == {key(): 2}


class TestHeapFairness:
    """Pins the lazy-deletion heap rewrite to the original FIFO contract."""

    def test_fifo_across_many_keys(self):
        # Interleave arrivals across 8 bucket-style keys with strictly
        # increasing timestamps; once everything has aged past the delay,
        # dispatch order must follow oldest-head-first exactly.
        b = MicroBatcher(BatchPolicy(max_batch=64, max_delay_s=0.001))
        keys = [("llama", ("bucket", 1 << k)) for k in range(8)]
        t = 1.0
        expected_heads = []
        for i in range(40):
            k = keys[(i * 5) % len(keys)]  # scrambled key order
            if k not in [key for key, _ in expected_heads]:
                expected_heads.append((k, t))
            b.put(k, pending(i, endpoint="llama", t=t))
            t += 0.01
        order = []
        while True:
            batch = b.pop_ready(now=t + 1.0)
            if batch is None:
                break
            order.append(batch.key)
        assert order == [key for key, _ in sorted(expected_heads, key=lambda e: e[1])]
        assert b.depth() == 0

    def test_full_queue_waits_behind_older_ready_head(self):
        # An old aged head must dispatch before a younger full queue —
        # fullness is a readiness trigger, not a priority boost.
        b = MicroBatcher(BatchPolicy(max_batch=2, max_delay_s=0.005))
        b.put(key("bert"), pending(0, t=1.0))
        b.put(key("llama", (2,)), pending(1, endpoint="llama", t=2.0, shape=(2,)))
        b.put(key("llama", (2,)), pending(2, endpoint="llama", t=2.0, shape=(2,)))
        first = b.pop_ready(now=2.0)  # bert head aged out; llama is full
        assert first.endpoint == "bert"
        second = b.pop_ready(now=2.0)
        assert second.endpoint == "llama" and len(second) == 2

    def test_young_full_queue_dispatches_while_older_head_waits(self):
        # Inverse case: nothing aged, so the full queue goes first even
        # though another queue holds the globally oldest head.
        b = MicroBatcher(BatchPolicy(max_batch=2, max_delay_s=10.0))
        b.put(key("bert"), pending(0, t=1.0))
        b.put(key("llama", (2,)), pending(1, endpoint="llama", t=2.0, shape=(2,)))
        b.put(key("llama", (2,)), pending(2, endpoint="llama", t=2.0, shape=(2,)))
        batch = b.pop_ready(now=2.0)
        assert batch.endpoint == "llama"
        assert b.pop_ready(now=2.0) is None  # bert still young and short

    def test_identical_timestamps_never_lose_or_duplicate(self):
        # The regression the full-heap length re-check fixed: a flood of
        # same-timestamp puts across keys must dispatch every request
        # exactly once, in stable per-key FIFO order.
        b = MicroBatcher(BatchPolicy(max_batch=3, max_delay_s=10.0))
        n = 0
        for _ in range(4):  # 4 rounds x 3 keys x 2 puts, all at t=1.0
            for shape in ((2,), (4,), (6,)):
                for _ in range(2):
                    b.put(key(shape=shape), pending(n, t=1.0, shape=shape))
                    n += 1
        seen = []
        while True:
            batch = b.pop_ready(now=1.0, flush=True)
            if batch is None:
                break
            assert len(batch) <= 3
            seen.extend(p.request_id for p in batch.requests)
        assert sorted(seen) == list(range(n))  # nothing lost, nothing doubled
        assert b.depth() == 0

    def test_interleaved_pop_and_put_keeps_heads_fresh(self):
        # Stale heap entries from popped heads must never shadow the
        # true oldest head after new arrivals.
        b = MicroBatcher(BatchPolicy(max_batch=2, max_delay_s=0.0))
        b.put(key("bert"), pending(0, t=1.0))
        b.put(key("bert"), pending(1, t=1.1))
        assert b.pop_ready(now=1.2).endpoint == "bert"
        b.put(key("llama", (2,)), pending(2, endpoint="llama", t=1.3, shape=(2,)))
        b.put(key("bert"), pending(3, t=1.4))
        batch = b.pop_ready(now=2.0)
        assert [p.request_id for p in batch.requests] == [2]  # llama head older
        batch = b.pop_ready(now=2.0)
        assert [p.request_id for p in batch.requests] == [3]


class TestNextDeadline:
    def test_empty_is_none(self):
        b = MicroBatcher(BatchPolicy())
        assert b.next_deadline(now=0.0) is None

    def test_full_queue_is_now(self):
        b = MicroBatcher(BatchPolicy(max_batch=1, max_delay_s=10.0))
        b.put(key(), pending(0, t=5.0))
        assert b.next_deadline(now=7.0) == 7.0

    def test_earliest_expiry_wins(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=0.010))
        b.put(key("bert"), pending(0, t=1.0))
        b.put(key("llama", (2,)), pending(1, endpoint="llama", t=0.5, shape=(2,)))
        assert b.next_deadline(now=0.5) == pytest.approx(0.510)

    def test_request_deadline_caps_the_wakeup(self):
        # The dispatch loop must wake in time to EXPIRE dead work, not
        # just to dispatch ready work.
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=10.0))
        b.put(key(), lifecycle_pending(0, t=1.0, deadline_at=1.5))
        assert b.next_deadline(now=1.0) == pytest.approx(1.5)


def lifecycle_pending(i, *, t=0.0, deadline_at=None, priority=0, endpoint="bert"):
    return PendingRequest(
        request_id=i,
        endpoint=endpoint,
        payload=np.zeros((4,)),
        enqueued_at=t,
        deadline_at=deadline_at,
        priority=priority,
    )


class TestLifecycle:
    """Deadline expiry, priority shedding, and the unmeetable-batch rule."""

    def test_expire_retires_past_due_requests_only(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=10.0))
        b.put(key(), lifecycle_pending(0, t=1.0, deadline_at=2.0))
        b.put(key(), lifecycle_pending(1, t=1.0, deadline_at=5.0))
        b.put(key(), lifecycle_pending(2, t=1.0))  # no deadline
        expired = b.expire(now=3.0)
        assert [p.request_id for p in expired] == [0]
        assert expired[0].state == "expired"
        assert b.depth() == 2
        assert b.expire(now=3.0) == []  # never expires twice

    def test_expired_head_does_not_shadow_survivors(self):
        # The expired request WAS the head; the survivors must still
        # dispatch once aged (eager head purge + re-registration).
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=0.010))
        b.put(key(), lifecycle_pending(0, t=1.0, deadline_at=1.5))
        b.put(key(), lifecycle_pending(1, t=1.2))
        b.expire(now=2.0)
        batch = b.pop_ready(now=2.0)
        assert [p.request_id for p in batch.requests] == [1]
        assert b.depth() == 0

    def test_shed_lowest_takes_lowest_priority_youngest_first(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=10.0))
        b.put(key(), lifecycle_pending(0, t=1.0, priority=0))
        b.put(key(), lifecycle_pending(1, t=2.0, priority=0))
        b.put(key(), lifecycle_pending(2, t=3.0, priority=2))
        assert b.lowest_priority("bert") == 0
        victim = b.shed_lowest("bert")
        assert victim.request_id == 1  # tie on priority: youngest goes
        assert victim.state == "shed"
        assert b.shed_lowest("bert").request_id == 0
        assert b.lowest_priority("bert") == 2
        assert b.depth() == 1

    def test_shed_empty_endpoint_returns_none(self):
        b = MicroBatcher(BatchPolicy())
        assert b.lowest_priority("bert") is None
        assert b.shed_lowest("bert") is None

    def test_endpoint_depth_counts_live_requests_per_endpoint(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=10.0))
        b.put(key(), lifecycle_pending(0, t=1.0))
        b.put(key(), lifecycle_pending(1, t=1.0, deadline_at=2.0))
        b.put(key("llama", (2,)), lifecycle_pending(2, t=1.0, endpoint="llama"))
        assert b.endpoint_depth("bert") == 2
        assert b.endpoint_depth("llama") == 1
        b.expire(now=3.0)
        assert b.endpoint_depth("bert") == 1
        b.shed_lowest("bert")
        assert b.endpoint_depth("bert") == 0
        assert b.endpoint_depth("segformer") == 0

    def test_pop_expires_rows_the_estimated_batch_cannot_meet(self):
        # "Never coalesce a request into a batch it cannot meet": with a
        # 1s estimated service time, a row due in 0.5s is dead on
        # dispatch and must be expired at pop time, not served late.
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=0.0))
        b.estimator = lambda endpoint: 1.0
        b.put(key(), lifecycle_pending(0, t=1.0, deadline_at=1.5))
        b.put(key(), lifecycle_pending(1, t=1.0, deadline_at=9.0))
        b.put(key(), lifecycle_pending(2, t=1.0))
        batch = b.pop_ready(now=1.0)
        assert [p.request_id for p in batch.requests] == [1, 2]
        unmeetable = b.take_expired()
        assert [p.request_id for p in unmeetable] == [0]
        assert unmeetable[0].state == "expired"
        assert b.take_expired() == []  # drained exactly once

    def test_pop_without_estimator_trusts_the_deadline_alone(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=0.0))
        b.put(key(), lifecycle_pending(0, t=1.0, deadline_at=1.2))
        batch = b.pop_ready(now=1.0)  # due in the future, est defaults 0
        assert [p.request_id for p in batch.requests] == [0]
        assert b.take_expired() == []

    def test_shed_and_expired_never_dispatch(self):
        b = MicroBatcher(BatchPolicy(max_batch=8, max_delay_s=10.0))
        b.put(key(), lifecycle_pending(0, t=1.0, deadline_at=1.5, priority=0))
        b.put(key(), lifecycle_pending(1, t=1.0, priority=0))
        b.put(key(), lifecycle_pending(2, t=1.0, priority=1))
        b.expire(now=2.0)  # kills 0
        b.shed_lowest("bert")  # kills 1
        batch = b.pop_ready(now=99.0, flush=True)
        assert [p.request_id for p in batch.requests] == [2]
        assert b.pop_ready(now=99.0, flush=True) is None
        assert b.depth() == 0
