"""Shape/behaviour tests for the four tiny models."""

import numpy as np
import pytest

from repro.models import (
    BertConfig,
    BertTiny,
    EfficientViTConfig,
    EfficientViTTiny,
    LlamaConfig,
    LlamaTiny,
    SegformerConfig,
    SegformerTiny,
)
from repro.tensor import manual_seed, no_grad


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


class TestBertTiny:
    def make(self, **kw):
        return BertTiny(BertConfig(**kw))

    def test_classification_shape(self):
        model = self.make(num_classes=3)
        ids = np.random.default_rng(0).integers(0, 64, size=(4, 16))
        assert model(ids).shape == (4, 3)

    def test_regression_shape(self):
        model = self.make(regression=True)
        ids = np.random.default_rng(0).integers(0, 64, size=(4, 16))
        assert model(ids).shape == (4,)

    def test_shorter_sequences_ok(self):
        model = self.make()
        ids = np.random.default_rng(0).integers(0, 64, size=(2, 8))
        assert model(ids).shape == (2, 2)

    def test_too_long_rejected(self):
        model = self.make(max_seq_len=8)
        with pytest.raises(ValueError):
            model(np.zeros((1, 9), dtype=np.int64))

    def test_gradients_reach_embeddings(self):
        model = self.make()
        ids = np.random.default_rng(1).integers(0, 64, size=(2, 16))
        model(ids).sum().backward()
        assert model.token_embedding.weight.grad is not None
        assert model.position_embedding.weight.grad is not None

    def test_order_sensitivity(self):
        """Position embeddings make output order-dependent."""
        model = self.make()
        ids = np.random.default_rng(2).integers(3, 64, size=(1, 16))
        out1 = model(ids).data
        out2 = model(ids[:, ::-1]).data
        assert not np.allclose(out1, out2)

    def test_parameter_count_reasonable(self):
        model = self.make()
        assert 10_000 < model.num_parameters() < 500_000


class TestSegformerTiny:
    def test_output_shape(self):
        model = SegformerTiny(SegformerConfig())
        imgs = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        assert model(imgs).shape == (2, 16, 16, 5)

    def test_gradients_flow(self):
        model = SegformerTiny(SegformerConfig(stage_dims=(8, 16), num_heads=(2, 2)))
        imgs = np.random.default_rng(1).normal(size=(1, 3, 32, 32))
        model(imgs).sum().backward()
        assert model.classifier.weight.grad is not None
        assert model.patch_embeds[0].proj.weight.grad is not None

    def test_has_linear_layers_for_quantization(self):
        from repro import nn

        model = SegformerTiny(SegformerConfig())
        linears = [m for m in model.modules() if type(m) is nn.Linear]
        assert len(linears) >= 8  # attention projections + FFNs + decoder

    def test_mixffn_uses_depthwise(self):
        from repro import nn

        model = SegformerTiny(SegformerConfig())
        dws = [m for m in model.modules() if isinstance(m, nn.DepthwiseConv2d)]
        assert len(dws) == len(model.stages)


class TestEfficientViTTiny:
    def test_output_shape(self):
        model = EfficientViTTiny(EfficientViTConfig())
        imgs = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        assert model(imgs).shape == (2, 16, 16, 5)

    def test_uses_linear_attention(self):
        from repro import nn

        model = EfficientViTTiny(EfficientViTConfig())
        las = [m for m in model.modules() if isinstance(m, nn.LinearAttention)]
        assert len(las) == len(model.stages)

    def test_eval_mode_deterministic(self):
        model = EfficientViTTiny(EfficientViTConfig())
        imgs = np.random.default_rng(1).normal(size=(1, 3, 32, 32))
        model(imgs)  # populate BN running stats
        model.eval()
        with no_grad():
            out1 = model(imgs).data
            out2 = model(imgs).data
        assert np.allclose(out1, out2)

    def test_gradients_flow(self):
        model = EfficientViTTiny(EfficientViTConfig(stage_dims=(8, 16), num_heads=(2, 2)))
        imgs = np.random.default_rng(2).normal(size=(1, 3, 32, 32))
        model(imgs).sum().backward()
        assert model.classifier.weight.grad is not None

    def test_classification_head_shape(self):
        model = EfficientViTTiny(EfficientViTConfig(head="classification"))
        imgs = np.random.default_rng(3).normal(size=(2, 3, 32, 32))
        assert model(imgs).shape == (2, 5)

    def test_classification_head_is_pooled_segmentation_logits(self):
        """The classification head is global-average pooling over the
        fused per-position logits — same datapath, one extra mean."""
        config = EfficientViTConfig(head="classification")
        model = EfficientViTTiny(config)
        imgs = np.random.default_rng(4).normal(size=(1, 3, 32, 32))
        model(imgs)  # populate BN running stats
        model.eval()
        with no_grad():
            logits = model(imgs).data
        seg = EfficientViTTiny(EfficientViTConfig())
        seg.load_state_dict(model.state_dict())
        seg.eval()
        with no_grad():
            dense = seg(imgs).data
        assert np.allclose(logits, dense.mean(axis=(1, 2)))

    def test_unknown_head_rejected(self):
        with pytest.raises(ValueError, match="head"):
            EfficientViTTiny(EfficientViTConfig(head="detection"))


class TestLlamaTiny:
    def make(self, **kw):
        return LlamaTiny(LlamaConfig(**kw))

    def test_logits_shape(self):
        model = self.make()
        ids = np.random.default_rng(0).integers(0, 32, size=(2, 10))
        assert model(ids).shape == (2, 10, 32)

    def test_causality(self):
        model = self.make()
        ids = np.random.default_rng(1).integers(0, 32, size=(1, 8))
        out1 = model(ids).data
        ids2 = ids.copy()
        ids2[0, -1] = (ids2[0, -1] + 1) % 32
        out2 = model(ids2).data
        assert np.allclose(out1[0, :-1], out2[0, :-1])
        assert not np.allclose(out1[0, -1], out2[0, -1])

    def test_sequence_logprob_basics(self):
        model = self.make()
        tokens = np.random.default_rng(2).integers(0, 32, size=(3, 10))
        lp = model.sequence_logprob(tokens, prefix_len=6)
        assert lp.shape == (3,)
        assert (lp < 0).all()

    def test_sequence_logprob_prefix_validation(self):
        model = self.make()
        tokens = np.zeros((1, 5), dtype=np.int64)
        with pytest.raises(ValueError):
            model.sequence_logprob(tokens, prefix_len=5)
        with pytest.raises(ValueError):
            model.sequence_logprob(tokens, prefix_len=0)

    def test_sequence_logprob_matches_manual(self):
        model = self.make(num_layers=1)
        tokens = np.random.default_rng(3).integers(0, 32, size=(1, 6))
        lp = model.sequence_logprob(tokens, prefix_len=3)
        with no_grad():
            logits = model(tokens).data
        log_probs = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        manual = sum(log_probs[0, t - 1, tokens[0, t]] for t in range(3, 6))
        assert np.isclose(lp[0], manual)

    def test_next_token_logprobs_rejects_non_integer_lengths(self):
        """A float ``lengths`` would silently truncate fractional values
        on the int cast; the dtype is rejected up front instead."""
        model = self.make()
        tokens = np.random.default_rng(5).integers(0, 32, size=(2, 8))
        with pytest.raises(TypeError, match="integer dtype"):
            model.next_token_logprobs(tokens, lengths=np.array([4.0, 8.0]))
        with pytest.raises(TypeError, match="integer dtype"):
            model.next_token_logprobs(tokens, lengths=np.array([4.5, 7.5]))
        # Integer dtypes of any width stay accepted.
        for dtype in (np.int32, np.int64, np.uint8):
            got = model.next_token_logprobs(
                tokens, lengths=np.array([4, 8], dtype=dtype)
            )
            assert got.shape == (2, 32)

    def test_greedy_decode_extends(self):
        model = self.make()
        prompt = np.random.default_rng(4).integers(0, 32, size=(2, 4))
        out = model.greedy_decode(prompt, 5)
        assert out.shape == (2, 9)
        assert np.array_equal(out[:, :4], prompt)

    def test_greedy_decode_respects_max_len(self):
        model = self.make(max_seq_len=6)
        prompt = np.zeros((1, 5), dtype=np.int64)
        out = model.greedy_decode(prompt, 10)
        assert out.shape[1] == 6

    def test_swiglu_no_biases(self):
        model = self.make()
        ffn = model.layers[0].ffn
        assert ffn.gate_proj.bias is None
        assert ffn.down_proj.bias is None
