"""Artifact format tests: round-trip, content addressing, error paths."""

import json

import numpy as np
import pytest

from repro.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactSchemaError,
    compile_endpoint,
    content_digest,
    load_endpoint,
    read_artifact,
    read_manifest,
    write_artifact,
)
from repro.artifacts.format import ARRAYS_NAME, MANIFEST_NAME, _pack_arrays, _unpack_arrays
from repro.serve import build_endpoint


@pytest.fixture(scope="module")
def bert_artifact():
    return compile_endpoint("bert")


@pytest.fixture()
def stored(bert_artifact, tmp_path):
    path = tmp_path / "bert-artifact"
    write_artifact(bert_artifact, path)
    return path


class TestPacking:
    def test_round_trip_preserves_dtype_shape_rank(self):
        arrays = {
            "scalar": np.array(1.5),
            "flag": np.array(True),
            "matrix": np.arange(12, dtype=np.int64).reshape(3, 4),
            "floats": np.linspace(0, 1, 7, dtype=np.float32),
        }
        payload, index = _pack_arrays(arrays)
        # The index must survive a JSON round-trip (it lives in the manifest).
        out = _unpack_arrays(payload, json.loads(json.dumps(index)))
        assert set(out) == set(arrays)
        for name, value in arrays.items():
            assert out[name].dtype == value.dtype
            assert out[name].shape == value.shape
            assert np.array_equal(out[name], value)

    def test_offsets_are_aligned(self):
        arrays = {"a": np.array(1.0), "b": np.arange(3), "c": np.array(2.0)}
        _, index = _pack_arrays(arrays)
        for entry in index:
            assert entry["offset"] % 64 == 0

    def test_truncated_payload_is_detected(self):
        arrays = {"a": np.arange(100, dtype=np.float64)}
        payload, index = _pack_arrays(arrays)
        with pytest.raises(ArtifactCorruptError):
            _unpack_arrays(payload[:50], index)


class TestDigest:
    def test_digest_is_content_addressed(self, bert_artifact):
        again = compile_endpoint("bert")
        assert again.digest == bert_artifact.digest

    def test_digest_changes_with_content(self, bert_artifact):
        arrays = dict(bert_artifact.arrays)
        key = sorted(arrays)[0]
        arrays[key] = np.asarray(arrays[key]).copy()
        arrays[key].reshape(-1)[...] = 123
        assert content_digest(bert_artifact.manifest, arrays) != bert_artifact.digest

    def test_volatile_fields_do_not_affect_digest(self, bert_artifact):
        manifest = dict(bert_artifact.manifest)
        manifest["created_s"] = 0.0
        assert content_digest(manifest, bert_artifact.arrays) == bert_artifact.digest

    def test_different_seed_different_digest(self, bert_artifact):
        other = compile_endpoint("bert", seed=1)
        assert other.digest != bert_artifact.digest


class TestDiskRoundTrip:
    def test_write_read_round_trip(self, bert_artifact, stored):
        loaded = read_artifact(stored)
        assert loaded.digest == bert_artifact.digest
        assert set(loaded.arrays) == set(bert_artifact.arrays)
        for name, value in bert_artifact.arrays.items():
            assert np.array_equal(loaded.arrays[name], np.asarray(value))

    def test_write_is_idempotent(self, bert_artifact, stored):
        write_artifact(bert_artifact, stored)  # same digest: no-op, no raise

    def test_write_refuses_mismatched_overwrite(self, stored):
        other = compile_endpoint("bert", seed=1)
        with pytest.raises(ArtifactError):
            write_artifact(other, stored)

    def test_write_repairs_corrupt_occupant(self, bert_artifact, stored):
        """A truncated payload must not brick the slot: re-writing the
        same digest replaces the corrupt occupant instead of treating the
        stale (but digest-matching) manifest as 'already stored'."""
        arrays_path = stored / ARRAYS_NAME
        raw = arrays_path.read_bytes()
        arrays_path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptError):
            read_artifact(stored)
        write_artifact(bert_artifact, stored)  # heals the slot
        assert read_artifact(stored).digest == bert_artifact.digest

    def test_write_repairs_unreadable_manifest(self, bert_artifact, stored):
        (stored / MANIFEST_NAME).write_text("{not json")
        write_artifact(bert_artifact, stored)
        assert read_artifact(stored).digest == bert_artifact.digest

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_manifest(tmp_path / "nope")

    def test_truncated_manifest_is_corrupt(self, stored):
        manifest_path = stored / MANIFEST_NAME
        manifest_path.write_text(manifest_path.read_text()[: len(manifest_path.read_text()) // 2])
        with pytest.raises(ArtifactCorruptError):
            read_artifact(stored)

    def test_truncated_arrays_is_corrupt(self, stored):
        arrays_path = stored / ARRAYS_NAME
        raw = arrays_path.read_bytes()
        arrays_path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptError):
            read_artifact(stored)

    def test_flipped_tensor_byte_fails_digest(self, stored):
        arrays_path = stored / ARRAYS_NAME
        raw = bytearray(arrays_path.read_bytes())
        # Flip one byte deep inside the payload member (past zip headers).
        raw[len(raw) // 2] ^= 0xFF
        arrays_path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptError):
            read_artifact(stored)

    def test_schema_mismatch(self, stored):
        manifest_path = stored / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = ARTIFACT_SCHEMA + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactSchemaError):
            read_artifact(stored)

    def test_tampered_meta_fails_digest(self, stored):
        manifest_path = stored / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["meta"]["seed"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError):
            read_artifact(stored)


class TestLoadedEndpoint:
    def test_no_calibration_pass_on_load(self, stored):
        endpoint = load_endpoint(stored)
        # Every quantizer arrives calibrated; serving runs no init.
        from repro.quant import LSQQuantizer

        for _, module in endpoint.model.named_modules():
            if isinstance(module, LSQQuantizer):
                assert module._initialized

    def test_planner_caches_arrive_warm(self, stored):
        endpoint = load_endpoint(stored)
        for name in endpoint.plan.layer_names:
            entry = endpoint.plan.entry(name)
            assert entry._w_codes is not None
            assert entry._plan is not None
            # ... and the keys match the live parameter versions, so the
            # first request recomputes nothing.
            assert entry._w_key == (
                entry.layer.weight.version,
                entry.layer.weight_quantizer.scale.version,
            )

    def test_loaded_weight_codes_match_recomputed(self, stored):
        endpoint = load_endpoint(stored)
        plan = endpoint.plan
        for name in plan.layer_names:
            imported = plan.entry(name)._w_codes
            layer = plan.entry(name).layer
            recomputed = layer.weight_quantizer.quantize_int(layer.weight.data)
            if plan.entry(name).kind == "conv":
                recomputed = recomputed.reshape(layer.conv_params.out_channels, -1)
            assert np.array_equal(imported, recomputed.astype(np.int64))

    def test_serves_bit_identical_to_fresh_build(self, stored):
        fresh = build_endpoint("bert")
        loaded = load_endpoint(stored)
        rng = np.random.default_rng(11)
        for _ in range(3):
            request = fresh.synth_request(rng)
            assert np.array_equal(
                fresh.serve_one(request).logits, loaded.serve_one(request).logits
            )
