"""Property test: artifact-loaded endpoints are bit-identical to fresh ones.

For every scenario family, any request served from an endpoint that was
compiled → stored → loaded must return the exact bits the freshly built
(and calibrated) endpoint returns — and the per-layer integer runners
derived from the loaded plan must agree with the fresh ones across both
requant modes (``shift`` and ``exact``).  Endpoints and artifacts are
built once per family and reused across examples; only the requests vary.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts import compile_endpoint, load_endpoint, write_artifact
from repro.serve import build_endpoint

FAMILIES = ("bert", "llama", "segformer", "efficientvit", "llama-gen")

_PAIRS = {}


@pytest.fixture(scope="module")
def endpoint_pairs(tmp_path_factory):
    """{family: (fresh endpoint, artifact-loaded endpoint)}, built lazily."""

    def get(family):
        if family not in _PAIRS:
            fresh = build_endpoint(family)
            path = tmp_path_factory.mktemp("artifacts") / family
            write_artifact(compile_endpoint(family), path)
            _PAIRS[family] = (fresh, load_endpoint(path))
        return _PAIRS[family]

    yield get
    _PAIRS.clear()


def response_bits(result):
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise AssertionError(f"no raw output on {type(result).__name__}")


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    family=st.sampled_from(FAMILIES),
    payload_seed=st.integers(min_value=0, max_value=10_000),
    batch=st.integers(min_value=1, max_value=3),
)
def test_loaded_endpoint_serves_identical_bits(endpoint_pairs, family, payload_seed, batch):
    fresh, loaded = endpoint_pairs(family)
    rng = np.random.default_rng(payload_seed)
    requests = [fresh.synth_request(rng) for _ in range(batch)]
    payloads = [fresh.request_payload(r) for r in requests]
    fresh_out = fresh.infer_batch(payloads)
    loaded_out = loaded.infer_batch(payloads)
    for a, b in zip(fresh_out, loaded_out):
        assert np.array_equal(response_bits(a), response_bits(b))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    family=st.sampled_from(FAMILIES),
    requant=st.sampled_from(["shift", "exact"]),
    input_seed=st.integers(min_value=0, max_value=10_000),
)
def test_loaded_runners_agree_across_requant_modes(endpoint_pairs, family, requant, input_seed):
    """Layer-level check: the loaded plan's runners match fresh ones."""
    fresh, loaded = endpoint_pairs(family)
    name = fresh.plan.layer_names[input_seed % len(fresh.plan.layer_names)]
    layer = fresh.plan.entry(name).layer
    in_features = getattr(layer, "in_features", None)
    if in_features is None:  # conv layers: run_layer covers them; runners are 2-D
        c = layer.conv_params
        kh, kw = c.kernel_size
        in_features = c.in_channels * kh * kw
        x = np.random.default_rng(input_seed).normal(size=(2, c.in_channels, 8, 8))
        a = fresh.plan.run_layer(name, x)
        b = loaded.plan.run_layer(name, x)
        assert np.array_equal(a, b)
        return
    x = np.random.default_rng(input_seed).normal(size=(3, in_features))
    a = fresh.plan.runner(name, requant=requant).run(x)
    b = loaded.plan.runner(name, requant=requant).run(x)
    assert np.array_equal(a, b)
