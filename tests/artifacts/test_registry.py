"""Artifact registry tests: put / list / inspect / gc / resolution."""

import json

import pytest

from repro.artifacts import (
    ArtifactRegistry,
    compile_endpoint,
    compile_into,
    ensure_artifact,
)
from repro.artifacts.format import MANIFEST_NAME


@pytest.fixture(scope="module")
def artifacts():
    return {
        "bert0": compile_endpoint("bert", seed=0),
        "bert1": compile_endpoint("bert", seed=1),
    }


class TestRegistry:
    def test_put_and_list(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        records = registry.list()
        assert len(records) == 2 == len(registry)
        digests = {record["digest"] for record in records}
        assert digests == {artifacts["bert0"].digest, artifacts["bert1"].digest}
        assert all(record["meta"]["family"] == "bert" for record in records)

    def test_put_is_idempotent(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        first = registry.put(artifacts["bert0"])
        second = registry.put(artifacts["bert0"])
        assert first == second
        assert len(registry) == 1

    def test_resolve_by_prefix(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        path = registry.put(artifacts["bert0"])
        assert registry.resolve(artifacts["bert0"].digest[:8]) == path
        assert registry.resolve(artifacts["bert0"].digest) == path

    def test_resolve_unknown_and_empty(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(KeyError):
            registry.resolve("deadbeef")
        with pytest.raises(KeyError):
            registry.resolve("")

    def test_inspect_returns_manifest(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        manifest = registry.inspect(artifacts["bert0"].digest[:10])
        assert manifest["digest"] == artifacts["bert0"].digest
        assert manifest["meta"]["seed"] == 0

    def test_gc_keep_list(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        removed = registry.gc(keep=[artifacts["bert0"].digest[:10]])
        assert removed == [artifacts["bert1"].digest]
        assert len(registry) == 1
        assert registry.resolve(artifacts["bert0"].digest[:10]).is_dir()

    def test_gc_default_keeps_newest_per_endpoint(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        path = registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        # Age bert0's recompile timestamp, then plant a newer duplicate
        # endpoint key with a different digest (as a code change would).
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["created_s"] -= 1000.0
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        removed = registry.gc()
        assert removed == []  # distinct endpoint keys (different seeds): both stay
        # Same key, newer copy wins:
        newer = json.loads((path / MANIFEST_NAME).read_text())
        newer["created_s"] += 5000.0
        newer["digest"] = "f" * 64
        clone = tmp_path / ("f" * 16)
        clone.mkdir()
        (clone / MANIFEST_NAME).write_text(json.dumps(newer))
        removed = registry.gc()
        assert removed == [artifacts["bert0"].digest]

    def test_ensure_artifact_compiles_once(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        first = ensure_artifact(registry, "bert", seed=0)
        second = ensure_artifact(registry, "bert", seed=0)
        assert first == second
        assert len(registry) == 1

    def test_compile_into_returns_registry_path(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        path = compile_into(registry, "bert", seed=0)
        assert path == registry.path_for(artifacts["bert0"].digest)


class TestDeployPointers:
    def test_set_and_read_pointer(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        record = registry.set_pointer("bert", artifacts["bert0"].digest)
        assert record == {"current": artifacts["bert0"].digest, "previous": None}
        assert registry.pointer("bert") == record
        assert registry.pointers() == {"bert": record}
        assert registry.resolve_pointer("bert") == registry.path_for(
            artifacts["bert0"].digest
        )

    def test_set_pointer_accepts_prefix_and_tracks_previous(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        registry.set_pointer("bert", artifacts["bert0"].digest[:10])
        record = registry.set_pointer("bert", artifacts["bert1"].digest)
        assert record["current"] == artifacts["bert1"].digest
        assert record["previous"] == artifacts["bert0"].digest

    def test_set_pointer_same_digest_is_a_noop(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        registry.set_pointer("bert", artifacts["bert0"].digest)
        registry.set_pointer("bert", artifacts["bert1"].digest)
        record = registry.set_pointer("bert", artifacts["bert1"].digest)
        # Re-promoting the current digest must not clobber the rollback.
        assert record["previous"] == artifacts["bert0"].digest

    def test_swap_pointer_rolls_back_and_forth(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        registry.set_pointer("bert", artifacts["bert0"].digest)
        registry.set_pointer("bert", artifacts["bert1"].digest)
        swapped = registry.swap_pointer("bert")
        assert swapped["current"] == artifacts["bert0"].digest
        assert swapped["previous"] == artifacts["bert1"].digest
        assert registry.swap_pointer("bert")["current"] == artifacts["bert1"].digest

    def test_swap_and_resolve_without_pointer_raise(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        with pytest.raises(KeyError):
            registry.swap_pointer("bert")
        with pytest.raises(KeyError):
            registry.resolve_pointer("bert")
        registry.set_pointer("bert", artifacts["bert0"].digest)
        with pytest.raises(KeyError):
            registry.swap_pointer("bert")  # still no previous

    def test_set_pointer_requires_stored_artifact(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(KeyError):
            registry.set_pointer("bert", "deadbeef")

    def test_gc_protects_pointer_digests(self, tmp_path, artifacts):
        registry = ArtifactRegistry(tmp_path)
        registry.put(artifacts["bert0"])
        registry.put(artifacts["bert1"])
        registry.set_pointer("bert", artifacts["bert0"].digest)
        registry.set_pointer("bert", artifacts["bert1"].digest)
        # keep= asks to drop everything but bert1, but bert0 is the
        # rollback target (previous) — both survive.
        removed = registry.gc(keep=[artifacts["bert1"].digest])
        assert removed == []
        assert len(registry) == 2

