"""Regression: the strided-view im2col must be bit-identical to the
original Python window-loop implementation, forward and backward."""

import numpy as np
import pytest

from repro.tensor import Tensor, im2col, set_default_dtype


def im2col_loop_reference(x_data, kernel_size, stride, padding):
    """The original window-loop transcription (forward + VJP), kept here
    as the oracle for the vectorized implementation."""
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    x_pad = np.pad(x_data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x_pad.shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1

    cols = np.empty((n, c, kh, kw, ho, wo), dtype=x_pad.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = x_pad[:, :, i : i + ho * sh : sh, j : j + wo * sw : sw]
    out = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n, ho * wo, c * kh * kw)

    def vjp(g):
        g_cols = g.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
        grad = np.zeros((n, c, h, w), dtype=g.dtype)
        for i in range(kh):
            for j in range(kw):
                grad[:, :, i : i + ho * sh : sh, j : j + wo * sw : sw] += g_cols[:, :, i, j]
        return grad

    return out, vjp


CASES = [
    # (n, c, h, w), kernel, stride, padding
    ((2, 3, 8, 8), (3, 3), (1, 1), (0, 0)),
    ((2, 3, 8, 8), (3, 3), (1, 1), (1, 1)),  # overlapping + padding
    ((1, 4, 9, 7), (3, 2), (2, 1), (0, 1)),  # asymmetric everything
    ((3, 2, 6, 6), (2, 2), (2, 2), (0, 0)),  # non-overlapping windows
    ((1, 1, 5, 5), (5, 5), (1, 1), (0, 0)),  # whole-image kernel
    ((2, 2, 7, 7), (1, 1), (1, 1), (0, 0)),  # 1x1 conv
    ((1, 3, 10, 10), (3, 3), (3, 3), (2, 2)),  # stride > 1 with padding
]


class TestIm2colBitIdentical:
    @pytest.mark.parametrize("shape,kernel,stride,padding", CASES)
    def test_forward_bit_identical(self, shape, kernel, stride, padding):
        rng = np.random.default_rng(hash((shape, kernel)) % 2**31)
        x_data = rng.normal(size=shape)
        ref, _ = im2col_loop_reference(x_data, kernel, stride, padding)
        out = im2col(Tensor(x_data), kernel, stride, padding)
        assert out.data.shape == ref.shape
        assert np.array_equal(out.data, ref)

    @pytest.mark.parametrize("shape,kernel,stride,padding", CASES)
    def test_backward_bit_identical(self, shape, kernel, stride, padding):
        """The scatter-add accumulates overlapping-window gradients in the
        same order as the loop, so even float rounding is identical."""
        rng = np.random.default_rng(hash((shape, stride)) % 2**31)
        x_data = rng.normal(size=shape)
        ref_out, vjp = im2col_loop_reference(x_data, kernel, stride, padding)
        g = rng.normal(size=ref_out.shape)

        x = Tensor(x_data, requires_grad=True)
        out = im2col(x, kernel, stride, padding)
        out.backward(g)

        ref_grad_padded = vjp(g)
        # The reference VJP is w.r.t. the padded input; strip the padding
        # the same way pad2d's backward does.
        ph, pw = padding
        h, w = shape[2], shape[3]
        ref_grad = ref_grad_padded[:, :, ph : ph + h, pw : pw + w]
        assert np.array_equal(x.grad, ref_grad)

    def test_float32_backward_bit_identical(self):
        """Accumulation-order equivalence must hold in float32 too, where
        rounding differences would be visible immediately."""
        rng = np.random.default_rng(7)
        x_data = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        ref_out, vjp = im2col_loop_reference(x_data, (3, 3), (1, 1), (0, 0))
        g = rng.normal(size=ref_out.shape).astype(np.float32)

        set_default_dtype("float32")
        try:
            x = Tensor(x_data, requires_grad=True)
            out = im2col(x, (3, 3), (1, 1), (0, 0))
            assert out.data.dtype == np.float32
            out.backward(g)
            assert x.grad.dtype == np.float32
            assert np.array_equal(x.grad, vjp(g))
        finally:
            set_default_dtype("float64")

    def test_forward_does_not_alias_input(self):
        """The output must own its data (no aliasing of the input view)."""
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 6, 6)))
        out = im2col(x, (3, 3))
        assert not np.shares_memory(out.data, x.data)
        x.data[:] = 0.0
        assert out.data.any()  # mutating x after the fact can't change out
