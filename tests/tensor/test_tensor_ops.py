"""Unit tests for core Tensor arithmetic, reductions and shape ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, manual_seed, no_grad


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


def randn(*shape, requires_grad=True):
    rng = np.random.default_rng(sum(shape) + 7)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestArithmetic:
    def test_add_values(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_grad(self):
        a, b = randn(3, 4), randn(3, 4)
        gradcheck(lambda x, y: x + y, [a, b])

    def test_add_broadcast_grad(self):
        a, b = randn(3, 4), randn(4)
        gradcheck(lambda x, y: x + y, [a, b])

    def test_add_scalar(self):
        a = randn(2, 2)
        gradcheck(lambda x: x + 3.0, [a])

    def test_sub_grad(self):
        a, b = randn(2, 3), randn(1, 3)
        gradcheck(lambda x, y: x - y, [a, b])

    def test_rsub(self):
        a = randn(3)
        out = 1.0 - a
        assert np.allclose(out.data, 1.0 - a.data)

    def test_mul_grad(self):
        a, b = randn(2, 3), randn(2, 3)
        gradcheck(lambda x, y: x * y, [a, b])

    def test_mul_broadcast_scalar_tensor(self):
        a, b = randn(2, 3), Tensor(2.5, requires_grad=True)
        gradcheck(lambda x, y: x * y, [a, b])

    def test_div_grad(self):
        a, b = randn(2, 3), Tensor(np.abs(randn(2, 3).data) + 1.0, requires_grad=True)
        gradcheck(lambda x, y: x / y, [a, b])

    def test_neg(self):
        a = randn(4)
        gradcheck(lambda x: -x, [a])

    def test_pow_grad(self):
        a = Tensor(np.abs(randn(3, 2).data) + 0.5, requires_grad=True)
        gradcheck(lambda x: x**3, [a])

    def test_pow_rejects_tensor_exponent(self):
        a = randn(2)
        with pytest.raises(TypeError):
            a ** randn(2)  # noqa: B018


class TestMatmul:
    def test_matmul_2d_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_2d_grad(self):
        a, b = randn(3, 4), randn(4, 2)
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_batched_grad(self):
        a, b = randn(2, 3, 4), randn(2, 4, 5)
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_broadcast_batch_grad(self):
        a, b = randn(2, 3, 4), randn(4, 5)
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_vec_mat(self):
        a, b = randn(4), randn(4, 3)
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_mat_vec(self):
        a, b = randn(3, 4), randn(4)
        gradcheck(lambda x, y: x @ y, [a, b])


class TestElementwise:
    @pytest.mark.parametrize("fn_name", ["exp", "tanh", "sigmoid", "sqrt", "abs"])
    def test_unary_grads(self, fn_name):
        data = np.abs(np.random.default_rng(1).normal(size=(3, 3))) + 0.5
        a = Tensor(data, requires_grad=True)
        gradcheck(lambda x: getattr(x, fn_name)(), [a])

    def test_log_grad(self):
        a = Tensor(np.abs(randn(3, 3).data) + 0.5, requires_grad=True)
        gradcheck(lambda x: x.log(), [a])

    def test_relu_values(self):
        a = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(a.relu().data, [0.0, 0.0, 2.0])

    def test_relu_grad_away_from_kink(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        gradcheck(lambda x: x.relu(), [a])

    def test_clip_values(self):
        a = Tensor([-5.0, 0.0, 5.0])
        assert np.allclose(a.clip(-1.0, 1.0).data, [-1.0, 0.0, 1.0])

    def test_clip_grad_masks_out_of_range(self):
        a = Tensor([-5.0, 0.3, 5.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        a = randn(3, 4)
        gradcheck(lambda x: x.sum(), [a])

    @pytest.mark.parametrize("axis", [0, 1, -1])
    @pytest.mark.parametrize("keepdims", [True, False])
    def test_sum_axis(self, axis, keepdims):
        a = randn(3, 4)
        gradcheck(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])

    def test_sum_tuple_axis(self):
        a = randn(2, 3, 4)
        gradcheck(lambda x: x.sum(axis=(0, 2)), [a])

    def test_mean_matches_numpy(self):
        a = randn(3, 4)
        assert np.allclose(a.mean(axis=1).data, a.data.mean(axis=1))

    def test_mean_grad(self):
        a = randn(2, 5)
        gradcheck(lambda x: x.mean(axis=-1), [a])

    def test_var_matches_numpy(self):
        a = randn(4, 6)
        assert np.allclose(a.var(axis=1).data, a.data.var(axis=1))

    def test_max_all_values(self):
        a = randn(3, 3)
        assert a.max().item() == a.data.max()

    def test_max_axis_grad(self):
        a = Tensor([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0, 1, 0], [1, 0, 0]])

    def test_max_ties_split_gradient(self):
        a = Tensor([[2.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])

    def test_min(self):
        a = randn(3, 4)
        assert np.allclose(a.min(axis=0).data, a.data.min(axis=0))


class TestShape:
    def test_reshape_grad(self):
        a = randn(2, 6)
        gradcheck(lambda x: x.reshape(3, 4), [a])

    def test_reshape_tuple_arg(self):
        a = randn(4, 3)
        assert a.reshape((2, 6)).shape == (2, 6)

    def test_transpose_default(self):
        a = randn(2, 3, 4)
        assert a.transpose().shape == (4, 3, 2)

    def test_transpose_grad(self):
        a = randn(2, 3, 4)
        gradcheck(lambda x: x.transpose(1, 0, 2), [a])

    def test_transpose_negative_axes(self):
        a = randn(2, 3, 4)
        assert a.transpose(0, -1, -2).shape == (2, 4, 3)

    def test_swapaxes_grad(self):
        a = randn(2, 3, 4)
        gradcheck(lambda x: x.swapaxes(-1, -2), [a])

    def test_getitem_slice_grad(self):
        a = randn(4, 5)
        gradcheck(lambda x: x[1:3, ::2], [a])

    def test_getitem_int_array(self):
        a = randn(5, 3)
        idx = np.array([0, 2, 2])
        a.grad = None
        a[idx].sum().backward()
        expected = np.zeros((5, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        assert np.allclose(a.grad, expected)

    def test_getitem_duplicate_indices_accumulate(self):
        a = Tensor(np.zeros((3, 2)), requires_grad=True)
        idx = np.array([1, 1])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [[0, 0], [2, 2], [0, 0]])

    def test_expand_squeeze(self):
        a = randn(3, 4)
        b = a.expand_dims(1)
        assert b.shape == (3, 1, 4)
        assert b.squeeze(1).shape == (3, 4)

    def test_flatten(self):
        a = randn(2, 3)
        assert a.flatten().shape == (6,)


class TestAutogradMechanics:
    def test_no_grad_blocks_graph(self):
        a = randn(3)
        with no_grad():
            b = a * 2.0
        assert b._backward is None
        assert not b.requires_grad

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        (a * 3.0).sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_shared_subexpression_grad(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * a  # a used twice
        b.sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_diamond_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b + c).sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_backward_requires_scalar(self):
        a = randn(3)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_backward_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [2.0, 20.0])

    def test_backward_grad_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward(np.ones((3,)))

    def test_detach_breaks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_clone_keeps_graph(self):
        a = Tensor([1.0], requires_grad=True)
        a.clone().sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_comparison_returns_numpy(self):
        a, b = Tensor([1.0, 3.0]), Tensor([2.0, 2.0])
        assert isinstance(a > b, np.ndarray)
        assert list(a > b) == [False, True]

    def test_repr_contains_flag(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
