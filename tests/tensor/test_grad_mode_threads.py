"""Grad mode must be thread-local (serving-layer regression test).

Before the serving PR, ``no_grad`` saved/restored one process-global
flag.  Two worker threads whose contexts overlap could interleave as
A-enter, B-enter (saving "disabled" as its previous state), A-exit,
B-exit — leaving gradient recording disabled for the entire process and
every later training/autograd test failing nondeterministically.  These
tests pin the thread-local semantics that make concurrent inference
workers safe.
"""

import threading

import numpy as np

from repro.tensor import Tensor, no_grad
from repro.tensor.autograd import enable_grad, is_grad_enabled, set_grad_enabled


def test_no_grad_in_worker_does_not_leak_to_main():
    inside = threading.Event()
    release = threading.Event()
    seen = {}

    def worker():
        with no_grad():
            seen["worker"] = is_grad_enabled()
            inside.set()
            release.wait(5.0)

    thread = threading.Thread(target=worker)
    thread.start()
    assert inside.wait(5.0)
    assert is_grad_enabled()  # the worker's no_grad is invisible here
    x = Tensor(np.ones(3), requires_grad=True)
    assert (x * 2.0).requires_grad  # the main thread still records graphs
    release.set()
    thread.join(5.0)
    assert seen["worker"] is False


def test_overlapping_no_grad_exits_cannot_disable_process():
    """The exact interleaving that poisoned the old global flag."""
    a_inside = threading.Event()
    b_inside = threading.Event()
    a_done = threading.Event()

    def worker_a():
        with no_grad():
            a_inside.set()
            b_inside.wait(5.0)  # hold until B is inside its own no_grad
        a_done.set()

    def worker_b():
        a_inside.wait(5.0)
        with no_grad():
            b_inside.set()
            a_done.wait(5.0)  # exit strictly after A exited

    threads = [threading.Thread(target=worker_a), threading.Thread(target=worker_b)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(5.0)
    assert is_grad_enabled()  # the old global flag ended False here


def test_each_thread_starts_enabled():
    states = {}

    def probe():
        states["fresh"] = is_grad_enabled()

    with no_grad():  # main thread disabled while the probe runs
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join(5.0)
    assert states["fresh"] is True


def test_set_grad_enabled_is_per_thread():
    try:
        set_grad_enabled(False)
        assert not is_grad_enabled()
        states = {}
        thread = threading.Thread(target=lambda: states.update(t=is_grad_enabled()))
        thread.start()
        thread.join(5.0)
        assert states["t"] is True
    finally:
        set_grad_enabled(True)


def test_enable_grad_restores_on_exit():
    with no_grad():
        with enable_grad():
            assert is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()
