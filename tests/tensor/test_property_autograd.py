"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, gradcheck, softmax

shapes = st.sampled_from([(3,), (2, 3), (4, 1), (2, 3, 2)])


def arrays(shape, seed, low=-3.0, high=3.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=shape)


class TestAlgebraicIdentities:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_add_commutative(self, shape, seed):
        a = Tensor(arrays(shape, seed))
        b = Tensor(arrays(shape, seed + 1))
        assert np.allclose((a + b).data, (b + a).data)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_mul_distributes_over_add(self, shape, seed):
        a = Tensor(arrays(shape, seed))
        b = Tensor(arrays(shape, seed + 1))
        c = Tensor(arrays(shape, seed + 2))
        left = (a * (b + c)).data
        right = (a * b + a * c).data
        assert np.allclose(left, right)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 4), k=st.integers(1, 4), n=st.integers(1, 4))
    def test_matmul_matches_numpy(self, seed, m, k, n):
        a = Tensor(arrays((m, k), seed))
        b = Tensor(arrays((k, n), seed + 1))
        assert np.allclose((a @ b).data, a.data @ b.data)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_exp_log_roundtrip(self, shape, seed):
        a = Tensor(arrays(shape, seed, low=0.1, high=5.0))
        assert np.allclose(a.log().exp().data, a.data)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_softmax_simplex(self, shape, seed):
        a = Tensor(arrays(shape, seed, low=-20, high=20))
        out = softmax(a, axis=-1).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_sum_reshape_invariant(self, shape, seed):
        a = Tensor(arrays(shape, seed))
        assert np.isclose(a.sum().item(), a.flatten().sum().item())


class TestGradProperties:
    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_polynomial_gradcheck(self, shape, seed):
        a = Tensor(arrays(shape, seed), requires_grad=True)
        gradcheck(lambda x: (x * x + 2.0 * x).sum(), [a])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 3), k=st.integers(1, 3))
    def test_matmul_chain_gradcheck(self, seed, m, k):
        a = Tensor(arrays((m, k), seed), requires_grad=True)
        b = Tensor(arrays((k, m), seed + 1), requires_grad=True)
        gradcheck(lambda x, y: (x @ y).tanh(), [a, b])

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 10_000))
    def test_linearity_of_gradient(self, shape, seed):
        """grad of (c * f) == c * grad of f."""
        data = arrays(shape, seed)
        a1 = Tensor(data.copy(), requires_grad=True)
        (a1.tanh().sum() * 3.0).backward()
        a2 = Tensor(data.copy(), requires_grad=True)
        a2.tanh().sum().backward()
        assert np.allclose(a1.grad, 3.0 * a2.grad)
