"""Tests for free-function ops (concat/stack/where/pad/im2col) and activations."""

import numpy as np
import pytest
from scipy import special

from repro.tensor import (
    Tensor,
    concat,
    embedding_lookup,
    erf,
    gelu,
    gradcheck,
    im2col,
    log_softmax,
    maximum,
    minimum,
    pad2d,
    silu,
    softmax,
    split,
    stack,
    tril_mask,
    where,
)


def randn(*shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed + sum(shape))
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestJoining:
    def test_concat_values(self):
        a, b = Tensor([[1.0], [2.0]]), Tensor([[3.0], [4.0]])
        assert np.allclose(concat([a, b], axis=0).data, [[1], [2], [3], [4]])

    def test_concat_grad(self):
        a, b = randn(2, 3), randn(4, 3)
        gradcheck(lambda x, y: concat([x, y], axis=0), [a, b])

    def test_concat_axis1_grad(self):
        a, b = randn(2, 3), randn(2, 5)
        gradcheck(lambda x, y: concat([x, y], axis=1), [a, b])

    def test_stack_values(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert stack([a, b], axis=0).shape == (2, 2)

    def test_stack_grad(self):
        a, b = randn(3), randn(3)
        gradcheck(lambda x, y: stack([x, y], axis=1), [a, b])

    def test_split_roundtrip(self):
        a = randn(6, 2)
        parts = split(a, 3, axis=0)
        assert len(parts) == 3
        assert np.allclose(concat(parts, axis=0).data, a.data)

    def test_split_grad_flows(self):
        a = randn(4, 2)
        parts = split(a, 2, axis=0)
        (parts[0].sum() + parts[1].sum() * 2.0).backward()
        assert np.allclose(a.grad[:2], 1.0)
        assert np.allclose(a.grad[2:], 2.0)

    def test_split_rejects_uneven(self):
        with pytest.raises(ValueError):
            split(randn(5, 2), 2, axis=0)


class TestSelection:
    def test_where_values(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0])

    def test_where_grad(self):
        cond = np.array([[True, False], [False, True]])
        a, b = randn(2, 2), randn(2, 2)
        gradcheck(lambda x, y: where(cond, x, y), [a, b])

    def test_where_tensor_condition(self):
        cond = Tensor([1.0, 0.0])
        out = where(cond, Tensor([5.0, 5.0]), Tensor([7.0, 7.0]))
        assert np.allclose(out.data, [5.0, 7.0])

    def test_maximum_values(self):
        assert np.allclose(maximum(Tensor([1.0, 4.0]), Tensor([3.0, 2.0])).data, [3.0, 4.0])

    def test_maximum_grad_no_ties(self):
        a, b = Tensor([1.0, 4.0], requires_grad=True), Tensor([3.0, 2.0], requires_grad=True)
        gradcheck(lambda x, y: maximum(x, y), [a, b])

    def test_maximum_tie_splits(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [0.5])

    def test_minimum(self):
        assert np.allclose(minimum(Tensor([1.0, 4.0]), Tensor([3.0, 2.0])).data, [1.0, 2.0])


class TestPadAndIm2col:
    def test_pad2d_shape(self):
        x = randn(1, 2, 3, 3)
        assert pad2d(x, (1, 2)).shape == (1, 2, 5, 7)

    def test_pad2d_zero_is_identity(self):
        x = randn(1, 1, 2, 2)
        assert pad2d(x, (0, 0)) is x

    def test_pad2d_grad(self):
        x = randn(2, 1, 3, 3)
        gradcheck(lambda t: pad2d(t, (1, 1)), [x])

    def test_im2col_matches_direct_conv(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        w = rng.normal(size=(3, 2, 2, 2))  # Co, Ci, kh, kw
        cols = im2col(x, (2, 2), stride=(1, 1))
        out = cols.data @ w.reshape(3, -1).T  # (1, 9, 3)
        # Direct convolution reference.
        ref = np.zeros((1, 3, 3, 3))
        for co in range(3):
            for i in range(3):
                for j in range(3):
                    ref[0, co, i, j] = (x.data[0, :, i : i + 2, j : j + 2] * w[co]).sum()
        assert np.allclose(out.reshape(3, 3, 3).transpose(2, 0, 1), ref[0])

    def test_im2col_stride_padding_shape(self):
        x = randn(2, 3, 8, 8)
        cols = im2col(x, (3, 3), stride=(2, 2), padding=(1, 1))
        assert cols.shape == (2, 16, 27)

    def test_im2col_grad(self):
        x = randn(1, 2, 4, 4)
        gradcheck(lambda t: im2col(t, (3, 3), stride=(1, 1), padding=(1, 1)), [x])


class TestEmbedding:
    def test_lookup_values(self):
        w = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = embedding_lookup(w, np.array([[0, 3], [1, 1]]))
        assert out.shape == (2, 2, 3)
        assert np.allclose(out.data[0, 1], [9.0, 10.0, 11.0])

    def test_lookup_grad_accumulates(self):
        w = Tensor(np.zeros((4, 2)), requires_grad=True)
        embedding_lookup(w, np.array([1, 1, 2])).sum().backward()
        assert np.allclose(w.grad, [[0, 0], [2, 2], [1, 1], [0, 0]])

    def test_lookup_tensor_indices(self):
        w = Tensor(np.eye(3), requires_grad=True)
        out = embedding_lookup(w, Tensor([0.0, 2.0]))
        assert np.allclose(out.data, [[1, 0, 0], [0, 0, 1]])


class TestActivations:
    def test_softmax_sums_to_one(self):
        x = randn(3, 5)
        assert np.allclose(softmax(x).data.sum(axis=-1), 1.0)

    def test_softmax_grad(self):
        gradcheck(lambda x: softmax(x, axis=-1), [randn(2, 4)])

    def test_softmax_stable_large_inputs(self):
        x = Tensor([[1000.0, 1000.0]])
        assert np.allclose(softmax(x).data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = randn(2, 6)
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_log_softmax_grad(self):
        gradcheck(lambda x: log_softmax(x, axis=-1), [randn(3, 4)])

    def test_gelu_values(self):
        x = randn(5)
        ref = x.data * 0.5 * (1 + special.erf(x.data / np.sqrt(2)))
        assert np.allclose(gelu(x).data, ref)

    @pytest.mark.parametrize("fn", [gelu, silu, erf])
    def test_smooth_activation_grads(self, fn):
        gradcheck(lambda x: fn(x), [randn(3, 3)])

    def test_tril_mask(self):
        m = tril_mask(3)
        assert m[0, 1] == -np.inf
        assert m[1, 0] == 0.0
        assert m[2, 2] == 0.0
