"""Tests for upsample_nearest and avg_pool2d."""

import numpy as np
import pytest

from repro.tensor import Tensor, avg_pool2d, gradcheck, upsample_nearest


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestUpsampleNearest:
    def test_shape(self):
        x = randn(2, 3, 4, 4)
        assert upsample_nearest(x, 2).shape == (2, 3, 8, 8)

    def test_values_repeat(self):
        x = Tensor(np.arange(4.0).reshape(1, 1, 2, 2))
        out = upsample_nearest(x, 2).data[0, 0]
        assert np.array_equal(out[:2, :2], np.zeros((2, 2)))
        assert np.array_equal(out[2:, 2:], np.full((2, 2), 3.0))

    def test_factor_one_identity(self):
        x = randn(1, 1, 3, 3)
        assert upsample_nearest(x, 1) is x

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            upsample_nearest(randn(1, 1, 2, 2), 0)

    def test_grad_sums_blocks(self):
        x = Tensor(np.zeros((1, 1, 2, 2)), requires_grad=True)
        upsample_nearest(x, 3).sum().backward()
        assert np.allclose(x.grad, 9.0)

    def test_gradcheck(self):
        gradcheck(lambda t: upsample_nearest(t, 2), [randn(1, 2, 3, 3)])


class TestAvgPool2d:
    def test_shape(self):
        assert avg_pool2d(randn(2, 3, 8, 8), 2).shape == (2, 3, 4, 4)

    def test_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2).data[0, 0]
        assert out[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            avg_pool2d(randn(1, 1, 5, 5), 2)

    def test_grad_uniform(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_gradcheck(self):
        gradcheck(lambda t: avg_pool2d(t, 2), [randn(1, 2, 4, 4)])

    def test_inverse_of_upsample_on_constants(self):
        x = randn(1, 2, 3, 3, seed=5)
        roundtrip = avg_pool2d(upsample_nearest(x, 2), 2)
        assert np.allclose(roundtrip.data, x.data)
