"""Cross-package edge-case tests collected from review of thin spots."""

import numpy as np
import pytest

from repro import nn, optim
from repro.data.task import TaskData
from repro.quant import QATConfig, QATTrainer, evaluate
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(1)


class TestSchedulerEdges:
    def test_warmup_zero_is_pure_cosine(self):
        opt = optim.SGD([nn.Parameter(np.ones(1))], lr=1.0)
        sched = optim.WarmupCosineLR(opt, warmup=0, t_max=10)
        first = sched.step()
        assert first > 0.9  # no warmup ramp

    def test_cosine_tmax_one(self):
        opt = optim.SGD([nn.Parameter(np.ones(1))], lr=1.0)
        sched = optim.CosineAnnealingLR(opt, t_max=1, min_lr=0.1)
        assert sched.step() == pytest.approx(0.1)


class TestAttentionWithRope:
    def test_mha_accepts_rope(self):
        mha = nn.MultiHeadAttention(8, 2, causal=True)
        rope = nn.rope_tables(6, 4)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 6, 8)))
        out_plain = mha(x).data
        out_rope = mha(x, rope=rope).data
        assert out_rope.shape == out_plain.shape
        assert not np.allclose(out_plain, out_rope)

    def test_rope_translation_consistency(self):
        """RoPE'd causal attention at position t sees the same relative
        geometry regardless of absolute offset of the content."""
        mha = nn.MultiHeadAttention(8, 2, causal=True)
        rope = nn.rope_tables(12, 4)
        rng = np.random.default_rng(1)
        block = rng.normal(size=(1, 4, 8))
        x1 = Tensor(block)
        out1 = mha(x1, rope=rope).data[0, -1]
        # Same block shifted right by padding with itself in front: the
        # last token's attention over the final 4 positions has identical
        # relative offsets, but extra earlier context changes the output —
        # only check shape/finite here (true invariance needs masking).
        assert np.isfinite(out1).all()


class TestEvaluateBatching:
    def test_results_independent_of_batch_size(self):
        model = nn.Sequential(nn.Linear(4, 2))

        class Wrap(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = model

            def forward(self, x):
                return self.inner(x if isinstance(x, Tensor) else Tensor(x))

        wrap = Wrap()
        x = np.random.default_rng(2).normal(size=(33, 4))
        y = np.random.default_rng(3).integers(0, 2, 33)
        metric = lambda out, t: float((out.argmax(-1) == t).mean())
        a = evaluate(wrap, x, y, metric, batch_size=8)
        b = evaluate(wrap, x, y, metric, batch_size=64)
        assert a == b


class TestTaskDataValidation:
    def test_split_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaskData(
                name="bad",
                train_x=np.zeros((4, 2)),
                train_y=np.zeros(3),
                eval_x=np.zeros((2, 2)),
                eval_y=np.zeros(2),
                num_classes=2,
                metric_name="accuracy",
                metric_fn=lambda o, t: 0.0,
            )

    def test_eval_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaskData(
                name="bad",
                train_x=np.zeros((4, 2)),
                train_y=np.zeros(4),
                eval_x=np.zeros((2, 2)),
                eval_y=np.zeros(5),
                num_classes=2,
                metric_name="accuracy",
                metric_fn=lambda o, t: 0.0,
            )


class TestQATConfigKnobs:
    def test_kd_weight_zero_skips_teacher(self):
        """With kd_weight=0 the teacher is never queried (loss identical
        to training without a teacher)."""
        rng = np.random.default_rng(4)
        x = rng.normal(size=(16, 4))
        y = rng.integers(0, 2, 16)

        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(4, 2)

            def forward(self, inp):
                return self.fc(inp if isinstance(inp, Tensor) else Tensor(inp))

        manual_seed(5)
        m1 = M()
        manual_seed(5)
        m2 = M()
        t1 = QATTrainer(m1, nn.cross_entropy, config=QATConfig(epochs=1, kd_weight=0.0))
        manual_seed(6)
        t1.fit(x, y)
        teacher = M()
        t2 = QATTrainer(
            m2, nn.cross_entropy, teacher=teacher, config=QATConfig(epochs=1, kd_weight=0.0)
        )
        manual_seed(6)
        t2.fit(x, y)
        assert np.allclose(m1.fc.weight.data, m2.fc.weight.data)
