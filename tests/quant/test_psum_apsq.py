"""Tests for PSUM tiling, PSQ, APSQ and the grouping strategy (Algorithm 1)."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    INT8,
    PsumMode,
    PsumQuantConfig,
    PsumQuantizedLinear,
    TiledPsumAccumulator,
    apsq_config,
    baseline_config,
    split_reduction,
)
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


def make_tiles(np_tiles=6, shape=(4, 5), seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.normal(size=shape) * scale, requires_grad=True) for _ in range(np_tiles)]


class TestConfig:
    def test_num_tiles_ceil(self):
        cfg = PsumQuantConfig(pci=8)
        assert cfg.num_tiles(64) == 8
        assert cfg.num_tiles(65) == 9
        assert cfg.num_tiles(7) == 1

    def test_invalid_gs(self):
        with pytest.raises(ValueError):
            PsumQuantConfig(gs=0)

    def test_invalid_pci(self):
        with pytest.raises(ValueError):
            PsumQuantConfig(pci=0)

    def test_with_mode(self):
        cfg = apsq_config(gs=2)
        cfg2 = cfg.with_mode(PsumMode.PSQ)
        assert cfg2.mode is PsumMode.PSQ
        assert cfg2.gs == 2

    def test_apsq_config_psum_bits(self):
        cfg = apsq_config(gs=3, psum_bits=6)
        assert cfg.psum_spec.bits == 6


class TestSplitReduction:
    def test_tiles_sum_to_full_matmul(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(3, 16)))
        w_t = Tensor(rng.normal(size=(16, 5)))
        tiles = split_reduction(x, w_t, pci=4)
        assert len(tiles) == 4
        total = sum(t.data for t in tiles)
        assert np.allclose(total, x.data @ w_t.data)

    def test_uneven_tail(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(2, 10)))
        w_t = Tensor(rng.normal(size=(10, 3)))
        tiles = split_reduction(x, w_t, pci=4)
        assert len(tiles) == 3
        assert np.allclose(sum(t.data for t in tiles), x.data @ w_t.data)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            split_reduction(Tensor(np.ones((2, 8))), Tensor(np.ones((9, 3))), 4)

    def test_3d_input(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 3, 8)))
        w_t = Tensor(rng.normal(size=(8, 4)))
        tiles = split_reduction(x, w_t, pci=4)
        assert tiles[0].shape == (2, 3, 4)
        assert np.allclose(sum(t.data for t in tiles), x.data @ w_t.data)


class TestBaselineAccumulator:
    def test_exact_sum(self):
        tiles = make_tiles(5)
        acc = TiledPsumAccumulator(5, baseline_config())
        out = acc(tiles)
        assert np.allclose(out.data, sum(t.data for t in tiles))

    def test_gradient_is_identity(self):
        tiles = make_tiles(3)
        acc = TiledPsumAccumulator(3, baseline_config())
        acc(tiles).sum().backward()
        for t in tiles:
            assert np.allclose(t.grad, 1.0)

    def test_wrong_tile_count(self):
        acc = TiledPsumAccumulator(3, baseline_config())
        with pytest.raises(ValueError):
            acc(make_tiles(2))


class TestPSQAccumulator:
    def test_close_to_exact(self):
        tiles = make_tiles(6, scale=1.0)
        cfg = PsumQuantConfig(mode=PsumMode.PSQ)
        acc = TiledPsumAccumulator(6, cfg)
        out = acc(tiles)
        exact = sum(t.data for t in tiles)
        assert np.abs(out.data - exact).mean() < 0.1

    def test_each_tile_quantized_once(self):
        """PSQ error ≈ sum of independent per-tile errors (one rounding each)."""
        tiles = make_tiles(4)
        cfg = PsumQuantConfig(mode=PsumMode.PSQ)
        acc = TiledPsumAccumulator(4, cfg)
        out = acc(tiles)
        per_tile = [acc.quantizers[i](tiles[i]).data for i in range(4)]
        assert np.allclose(out.data, sum(per_tile))


class TestAPSQAccumulator:
    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    @pytest.mark.parametrize("np_tiles", [2, 3, 4, 5, 6, 7, 8])
    def test_output_close_to_exact_all_configs(self, gs, np_tiles):
        tiles = make_tiles(np_tiles, seed=gs * 10 + np_tiles)
        acc = TiledPsumAccumulator(np_tiles, apsq_config(gs=gs))
        out = acc(tiles)
        exact = sum(t.data for t in tiles)
        # INT8 PSUM quantization: small relative error.
        rel = np.abs(out.data - exact).mean() / (np.abs(exact).mean() + 1e-9)
        assert rel < 0.25, f"gs={gs}, np={np_tiles}: rel err {rel}"

    def test_single_tile(self):
        tiles = make_tiles(1)
        acc = TiledPsumAccumulator(1, apsq_config(gs=2))
        out = acc(tiles)
        assert np.abs(out.data - tiles[0].data).mean() < 0.05

    def test_gs1_recursive_structure(self):
        """With gs=1 every step folds the previous AP (Eq. 10)."""
        tiles = make_tiles(4, seed=9)
        acc = TiledPsumAccumulator(4, apsq_config(gs=1))
        out = acc(tiles)
        # Manual recursion with the same quantizers.
        ap = acc.quantizers[0](tiles[0])
        for i in range(1, 4):
            ap = acc.quantizers[i](ap + tiles[i])
        assert np.allclose(out.data, ap.data)

    def test_gs_large_single_apsq_step(self):
        """gs >= np: one APSQ step at tile 0, the rest PSQ, final fold."""
        tiles = make_tiles(4, seed=11)
        acc = TiledPsumAccumulator(4, apsq_config(gs=8))
        out = acc(tiles)
        stored = [acc.quantizers[i](tiles[i]) for i in range(3)]
        expected = acc.quantizers[3](sum(s for s in stored) + tiles[3])
        assert np.allclose(out.data, expected.data)

    def test_grouping_matches_fig4_walkthrough(self):
        """gs=3, np=7: APSQ at t0 and t3; final fold at t6 (Fig. 4)."""
        tiles = make_tiles(7, seed=13)
        acc = TiledPsumAccumulator(7, apsq_config(gs=3))
        out = acc(tiles)
        q = acc.quantizers
        p0 = q[0](tiles[0])
        p1 = q[1](tiles[1])
        p2 = q[2](tiles[2])
        ap3 = q[3](p0 + p1 + p2 + tiles[3])
        p4 = q[4](tiles[4])
        p5 = q[5](tiles[5])
        to = q[6](ap3 + p4 + p5 + tiles[6])
        assert np.allclose(out.data, to.data)

    def test_final_tile_on_group_boundary(self):
        """np=5, gs=2: tile 4 is a group start — To = AP_4 directly."""
        tiles = make_tiles(5, seed=17)
        acc = TiledPsumAccumulator(5, apsq_config(gs=2))
        out = acc(tiles)
        q = acc.quantizers
        ap0 = q[0](tiles[0])
        p1 = q[1](tiles[1])
        ap2 = q[2](ap0 + p1 + tiles[2])
        p3 = q[3](tiles[3])
        to = q[4](ap2 + p3 + tiles[4])
        assert np.allclose(out.data, to.data)

    def test_gradients_flow_to_all_tiles(self):
        tiles = make_tiles(6)
        acc = TiledPsumAccumulator(6, apsq_config(gs=2))
        acc(tiles).sum().backward()
        for t in tiles:
            assert t.grad is not None
            assert np.abs(t.grad).sum() > 0

    def test_scale_parameters_learnable(self):
        tiles = make_tiles(4)
        acc = TiledPsumAccumulator(4, apsq_config(gs=2))
        acc(tiles).sum().backward()
        grads = [q.scale.grad for q in acc.quantizers]
        assert all(g is not None for g in grads)

    def test_gs1_more_rounding_error_than_grouped(self):
        """The motivation for grouping: repeated rounding hurts (Sec. III-B).

        Averaged over draws, gs=1 (every store re-quantizes the running
        total) accumulates at least as much error as gs=4.
        """
        errs = {1: [], 4: []}
        for seed in range(10):
            tiles = make_tiles(8, seed=seed, scale=1.0)
            exact = sum(t.data for t in tiles)
            for gs in (1, 4):
                acc = TiledPsumAccumulator(8, apsq_config(gs=gs))
                out = acc(tiles)
                errs[gs].append(np.abs(out.data - exact).mean())
        assert np.mean(errs[1]) > np.mean(errs[4])

    def test_stats_counting(self):
        tiles = make_tiles(6)
        acc = TiledPsumAccumulator(6, apsq_config(gs=2))
        acc(tiles)
        # Every tile is written exactly once regardless of gs (Sec. III-B).
        assert acc.psum_writes == 6
        acc.reset_stats()
        assert acc.psum_writes == 0

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    def test_write_count_independent_of_gs(self, gs):
        """Grouping keeps total memory traffic constant (Sec. III-B)."""
        tiles = make_tiles(8, seed=gs)
        acc = TiledPsumAccumulator(8, apsq_config(gs=gs))
        acc(tiles)
        assert acc.psum_writes == 8


class TestPsumQuantizedLinear:
    def test_shapes_and_fallback(self):
        layer = PsumQuantizedLinear(nn.Linear(32, 8), apsq_config(gs=2, pci=8))
        assert layer.num_tiles == 4
        assert layer.tiled
        small = PsumQuantizedLinear(nn.Linear(8, 8), apsq_config(gs=2, pci=8))
        assert not small.tiled  # single tile -> register-resident PSUM

    def test_forward_close_to_float(self):
        rng = np.random.default_rng(0)
        lin = nn.Linear(64, 16)
        layer = PsumQuantizedLinear(lin, apsq_config(gs=2, pci=8))
        x = Tensor(rng.normal(size=(4, 64)))
        out_q = layer(x)
        out_f = x.data @ lin.weight.data.T + lin.bias.data
        rel = np.abs(out_q.data - out_f).mean() / np.abs(out_f).mean()
        assert rel < 0.3

    def test_baseline_mode_uses_untiled_path(self):
        layer = PsumQuantizedLinear(nn.Linear(64, 8), baseline_config(pci=8))
        assert not layer.tiled

    def test_gradients_reach_weights(self):
        layer = PsumQuantizedLinear(nn.Linear(16, 4), apsq_config(gs=2, pci=4))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 16)), requires_grad=True)
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert x.grad is not None

    def test_3d_input(self):
        layer = PsumQuantizedLinear(nn.Linear(16, 4), apsq_config(gs=2, pci=4))
        out = layer(Tensor(np.random.default_rng(2).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 4)
