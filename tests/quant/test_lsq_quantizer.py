"""Tests for the LSQQuantizer module."""

import numpy as np
import pytest

from repro.quant import INT8, LSQQuantizer, MinMaxObserver, QuantSpec
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


class TestLSQQuantizer:
    def test_initializes_scale_on_first_forward(self):
        q = LSQQuantizer(INT8)
        x = Tensor(np.random.default_rng(0).normal(size=(32,)))
        q(x)
        assert q._initialized
        assert q.scale.data > 0

    def test_quantization_error_small_at_int8(self):
        q = LSQQuantizer(INT8)
        x = Tensor(np.random.default_rng(0).normal(size=(1000,)))
        out = q(x)
        err = np.abs(out.data - x.data).mean()
        assert err < 0.05

    def test_lower_bits_higher_error(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1000,)))
        errors = {}
        for bits in (4, 8):
            q = LSQQuantizer(QuantSpec(bits))
            errors[bits] = np.abs(q(x).data - x.data).mean()
        assert errors[4] > errors[8]

    def test_scale_receives_gradient(self):
        q = LSQQuantizer(INT8)
        x = Tensor(np.random.default_rng(1).normal(size=(64,)), requires_grad=True)
        q(x).sum().backward()
        assert q.scale.grad is not None

    def test_po2_effective_scale_is_power_of_two(self):
        q = LSQQuantizer(INT8, po2_scale=True)
        q.scale.data = np.array(0.3)
        q._initialized = True
        log2 = np.log2(q.effective_scale)
        assert np.isclose(log2, np.round(log2))

    def test_shift_amount(self):
        q = LSQQuantizer(INT8, po2_scale=True)
        q.scale.data = np.array(0.25)
        q._initialized = True
        assert q.shift_amount == -2

    def test_shift_amount_rejected_for_float_scale(self):
        q = LSQQuantizer(INT8)
        with pytest.raises(ValueError):
            _ = q.shift_amount

    def test_eval_mode_uses_plain_fake_quant(self):
        q = LSQQuantizer(INT8)
        x = Tensor(np.random.default_rng(2).normal(size=(16,)))
        q(x)  # init
        q.eval()
        out = q(x)
        assert out._backward is None

    def test_po2_output_on_po2_grid(self):
        q = LSQQuantizer(INT8, po2_scale=True)
        x = Tensor(np.random.default_rng(3).normal(size=(64,)))
        out = q(x)
        s = q.effective_scale
        codes = out.data / s
        assert np.allclose(codes, np.round(codes))

    def test_int_roundtrip(self):
        q = LSQQuantizer(INT8, po2_scale=True)
        x = np.random.default_rng(4).normal(size=(32,))
        q(Tensor(x))
        codes = q.quantize_int(x)
        deq = q.dequantize(codes)
        assert np.allclose(deq, q(Tensor(x)).data)

    def test_training_reduces_quant_error(self):
        """A few LSQ gradient steps on the scale should reduce MSE."""
        from repro.optim import SGD

        rng = np.random.default_rng(5)
        x_data = rng.normal(size=(512,))
        q = LSQQuantizer(QuantSpec(4))
        q(Tensor(x_data))  # init
        q.scale.data = q.scale.data * 4.0  # deliberately mis-calibrated
        opt = SGD([q.scale], lr=0.05)

        def mse():
            out = q(Tensor(x_data, requires_grad=True))
            return ((out - Tensor(x_data)) ** 2).mean()

        initial = float(mse().data)
        for _ in range(60):
            opt.zero_grad()
            mse().backward()
            opt.step()
        final = float(mse().data)
        assert final < initial


class TestMinMaxObserver:
    def test_tracks_extremes(self):
        obs = MinMaxObserver(INT8)
        obs.observe(np.array([-3.0, 2.0]))
        obs.observe(np.array([5.0]))
        assert obs.min_val == -3.0
        assert obs.max_val == 5.0

    def test_scale_covers_range(self):
        obs = MinMaxObserver(INT8)
        obs.observe(np.array([-6.4, 6.35]))
        s = obs.scale()
        assert np.isclose(s, 6.4 / 128)

    def test_unobserved_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver(INT8).scale()

    def test_reset(self):
        obs = MinMaxObserver(INT8)
        obs.observe(np.array([1.0]))
        obs.reset()
        assert not obs.observed
