"""Tests for quantized-model introspection (model_summary)."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    apsq_config,
    baseline_config,
    format_summary,
    model_summary,
    quantize_model,
)
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(2)


class MLP(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(32, 16)
        self.fc2 = nn.Linear(16, 4)

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return self.fc2(self.fc1(x).relu())


class TestModelSummary:
    def test_rows_per_quantized_layer(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        rows = model_summary(model)
        assert {r.name for r in rows} == {"fc1", "fc2"}

    def test_uncalibrated_scales_none(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        rows = model_summary(model)
        assert all(r.weight_scale is None for r in rows)
        assert all(r.psum_shift_exponents is None for r in rows)

    def test_calibrated_exposes_scales_and_shifts(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        model(np.random.default_rng(0).normal(size=(4, 32)))
        rows = {r.name: r for r in model_summary(model)}
        fc1 = rows["fc1"]
        assert fc1.weight_scale > 0
        assert fc1.num_tiles == 4
        assert len(fc1.psum_shift_exponents) == 4

    def test_baseline_mode_rows(self):
        model = quantize_model(MLP(), baseline_config(pci=8))
        rows = model_summary(model)
        assert all(r.mode == "baseline" for r in rows)
        assert all(r.gs is None for r in rows)

    def test_unquantized_model_rejected(self):
        with pytest.raises(ValueError):
            model_summary(MLP())

    def test_format_summary(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        model(np.random.default_rng(0).normal(size=(4, 32)))
        text = format_summary(model_summary(model))
        assert "fc1" in text
        assert "apsq" in text
        assert "psum shifts" in text

    def test_untiled_layer_reports_single_tile(self):
        class Tiny(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(4, 2)

            def forward(self, x):
                return self.fc(x)

        model = quantize_model(Tiny(), apsq_config(gs=2, pci=8))
        rows = model_summary(model)
        assert rows[0].num_tiles == 1
