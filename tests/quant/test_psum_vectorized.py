"""Tests for the vectorized PSUM fast path and the configurable dtype."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    PsumMode,
    PsumQuantConfig,
    PsumQuantizedLinear,
    TiledPsumAccumulator,
    apsq_config,
    baseline_config,
    split_reduction,
    split_reduction_stacked,
)
from repro.tensor import Tensor, manual_seed, set_default_dtype


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


class TestSplitReductionStacked:
    @pytest.mark.parametrize(
        "x_shape,w_shape,pci",
        [
            ((3, 16), (16, 5), 4),     # 2-D, even tiles
            ((2, 10), (10, 3), 4),     # uneven tail -> zero padding
            ((2, 3, 8), (8, 4), 4),    # 3-D batch
            ((2, 4, 5, 12), (12, 6), 4),  # 4-D batch, static weight
        ],
    )
    def test_matches_per_tile_loop_bitwise(self, x_shape, w_shape, pci):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=x_shape))
        w_t = Tensor(rng.normal(size=w_shape))
        stacked = split_reduction_stacked(x, w_t, pci)
        tiles = split_reduction(x, w_t, pci)
        assert stacked.shape[0] == len(tiles)
        for i, tile in enumerate(tiles):
            assert np.array_equal(stacked.data[i], tile.data), f"tile {i}"

    def test_batched_operand_matches_loop(self):
        """Attention-style dynamic matmul: both operands batched."""
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(2, 3, 5, 16)))
        b = Tensor(rng.normal(size=(2, 3, 16, 7)))
        stacked = split_reduction_stacked(a, b, pci=4)
        tiles = split_reduction(a, b, pci=4)
        for i, tile in enumerate(tiles):
            assert np.allclose(stacked.data[i], tile.data)

    def test_gradients_match_per_tile_loop(self):
        rng = np.random.default_rng(3)
        x1 = Tensor(rng.normal(size=(4, 10)), requires_grad=True)
        w1 = Tensor(rng.normal(size=(10, 3)), requires_grad=True)
        split_reduction_stacked(x1, w1, pci=4).sum().backward()

        x2 = Tensor(x1.data.copy(), requires_grad=True)
        w2 = Tensor(w1.data.copy(), requires_grad=True)
        total = None
        for tile in split_reduction(x2, w2, pci=4):
            total = tile.sum() if total is None else total + tile.sum()
        total.backward()

        assert np.allclose(x1.grad, x2.grad)
        assert np.allclose(w1.grad, w2.grad)

    def test_reduction_mismatch_raises(self):
        with pytest.raises(ValueError):
            split_reduction_stacked(Tensor(np.ones((2, 8))), Tensor(np.ones((9, 3))), 4)


class TestAccumulatorStackedInput:
    @pytest.mark.parametrize("mode", [PsumMode.BASELINE, PsumMode.PSQ, PsumMode.APSQ])
    def test_stacked_equals_list_input(self, mode):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(6, 4, 5))
        cfg = PsumQuantConfig(mode=mode, gs=2)
        acc_list = TiledPsumAccumulator(6, cfg)
        acc_stack = TiledPsumAccumulator(6, cfg)
        out_list = acc_list([Tensor(data[i]) for i in range(6)])
        out_stack = acc_stack(Tensor(data))
        assert np.allclose(out_list.data, out_stack.data)
        assert acc_list.psum_writes == acc_stack.psum_writes
        assert acc_list.psum_reads == acc_stack.psum_reads

    def test_wrong_stack_size_rejected(self):
        acc = TiledPsumAccumulator(3, baseline_config())
        with pytest.raises(ValueError):
            acc(Tensor(np.zeros((2, 4, 4))))

    def test_apsq_eval_mode_matches_training_values(self):
        """The fused op uses one formula; train/eval must agree numerically."""
        rng = np.random.default_rng(5)
        data = rng.normal(size=(4, 3, 3))
        acc = TiledPsumAccumulator(4, apsq_config(gs=2))
        out_train = acc(Tensor(data))
        acc.eval()
        out_eval = acc(Tensor(data))
        assert np.allclose(out_train.data, out_eval.data)


class TestInstrumentedQuantizers:
    def test_ptq_calibration_observes_psum_quantizers(self):
        """The fused fast path must not bypass instance-level forward hooks
        (PTQ's min-max observers patch each quantizer's forward)."""
        from repro.quant import calibrate_model, quantize_model
        from repro.models import BertConfig, BertTiny
        from repro.quant.psum import TiledPsumAccumulator as Acc

        manual_seed(0)
        model = quantize_model(BertTiny(BertConfig(num_classes=2)), apsq_config(gs=2))
        batch = np.zeros((4, 16), dtype=np.int64)
        calibrate_model(model, [batch])
        psum_quantizers = [
            q for m in model.modules() if isinstance(m, Acc) for q in m.quantizers
        ]
        assert psum_quantizers
        assert all(q._initialized for q in psum_quantizers)


class TestDtypeToggle:
    @pytest.fixture(autouse=True)
    def _restore_dtype(self):
        yield
        set_default_dtype("float64")

    def test_default_is_float64(self):
        assert Tensor([1.0]).dtype == np.float64

    def test_set_default_dtype_float32(self):
        previous = set_default_dtype("float32")
        assert previous == np.float64
        assert Tensor([1.0]).dtype == np.float32

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype("bfloat16")

    def test_float32_psum_layer_parity(self):
        """Forward + one training step agree across dtypes within tolerance."""
        rng = np.random.default_rng(6)
        x64 = rng.normal(size=(8, 32))

        def run_once():
            manual_seed(0)
            layer = PsumQuantizedLinear(nn.Linear(32, 8), apsq_config(gs=2, pci=8))
            x = Tensor(x64, requires_grad=True)
            out = layer(x)
            out.sum().backward()
            return out.data.copy(), layer.weight.grad.copy()

        out64, grad64 = run_once()
        assert out64.dtype == np.float64
        set_default_dtype("float32")
        out32, grad32 = run_once()
        assert out32.dtype == np.float32
        assert np.allclose(out64, out32, atol=1e-3, rtol=1e-3)
        assert np.allclose(grad64, grad32, atol=1e-3, rtol=1e-3)

    def test_env_var_spelling(self):
        from repro.tensor.tensor import _resolve_dtype

        assert _resolve_dtype("f32") is np.float32
        assert _resolve_dtype(np.float64) is np.float64