"""Property-based tests for quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    PsumMode,
    PsumQuantConfig,
    QuantSpec,
    TiledPsumAccumulator,
    apsq_config,
    fake_quant_values,
    po2_values,
)
from repro.tensor import Tensor


class TestFakeQuantProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        bits=st.integers(3, 8),
        scale=st.floats(0.01, 2.0),
    )
    def test_idempotent(self, seed, bits, scale):
        """Quantizing an already-quantized tensor changes nothing."""
        spec = QuantSpec(bits)
        x = np.random.default_rng(seed).normal(size=32)
        once = fake_quant_values(x, scale, spec.qn, spec.qp)
        twice = fake_quant_values(once, scale, spec.qn, spec.qp)
        assert np.array_equal(once, twice)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), scale=st.floats(0.01, 1.0))
    def test_error_bounded_in_range(self, seed, scale):
        spec = QuantSpec(8)
        x = np.random.default_rng(seed).normal(size=64)
        out = fake_quant_values(x, scale, spec.qn, spec.qp)
        in_range = np.abs(x / scale) < spec.qp
        assert np.all(np.abs(out[in_range] - x[in_range]) <= scale / 2 + 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), bits=st.integers(3, 8))
    def test_output_on_grid(self, seed, bits):
        spec = QuantSpec(bits)
        scale = 0.13
        x = np.random.default_rng(seed).normal(size=32) * 3
        out = fake_quant_values(x, scale, spec.qn, spec.qp)
        codes = out / scale
        assert np.allclose(codes, np.round(codes))
        assert codes.min() >= spec.qn
        assert codes.max() <= spec.qp

    @settings(max_examples=40, deadline=None)
    @given(scale=st.floats(1e-6, 1e6))
    def test_po2_within_sqrt2(self, scale):
        """Snapping to the nearest power of two moves scale < sqrt(2)x."""
        snapped = float(po2_values(np.array(scale)))
        ratio = snapped / scale
        assert 1 / np.sqrt(2) - 1e-9 <= ratio <= np.sqrt(2) + 1e-9


class TestAccumulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        gs=st.integers(1, 4),
        np_tiles=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    def test_write_count_invariant(self, gs, np_tiles, seed):
        """Total PSUM writes equal np for every gs (Sec. III-B)."""
        rng = np.random.default_rng(seed)
        tiles = [Tensor(rng.normal(size=(3, 3))) for _ in range(np_tiles)]
        acc = TiledPsumAccumulator(np_tiles, apsq_config(gs=gs))
        acc(tiles)
        assert acc.psum_writes == np_tiles

    @settings(max_examples=25, deadline=None)
    @given(
        gs=st.integers(1, 4),
        np_tiles=st.integers(2, 10),
        seed=st.integers(0, 1000),
    )
    def test_apsq_bounded_error(self, gs, np_tiles, seed):
        """APSQ output stays within a few quantization steps of exact."""
        rng = np.random.default_rng(seed)
        tiles = [Tensor(rng.normal(size=(4, 4))) for _ in range(np_tiles)]
        acc = TiledPsumAccumulator(np_tiles, apsq_config(gs=gs))
        out = acc(tiles)
        exact = sum(t.data for t in tiles)
        # Bound: number of quantizations along the path x half-step each.
        max_scale = max(q.effective_scale for q in acc.quantizers)
        bound = (np_tiles + 1) * max_scale
        assert np.abs(out.data - exact).max() <= bound

    @settings(max_examples=25, deadline=None)
    @given(np_tiles=st.integers(2, 10), seed=st.integers(0, 1000))
    def test_baseline_is_exact(self, np_tiles, seed):
        rng = np.random.default_rng(seed)
        tiles = [Tensor(rng.normal(size=(4, 2))) for _ in range(np_tiles)]
        cfg = PsumQuantConfig(mode=PsumMode.BASELINE)
        out = TiledPsumAccumulator(np_tiles, cfg)(tiles)
        assert np.allclose(out.data, sum(t.data for t in tiles))

    @settings(max_examples=20, deadline=None)
    @given(np_tiles=st.integers(2, 8), seed=st.integers(0, 1000))
    def test_gs_ge_np_single_apsq(self, np_tiles, seed):
        """When gs >= np the whole reduction is one group: exactly one
        APSQ fold (at the final tile) and np-1 plain quantizations."""
        rng = np.random.default_rng(seed)
        tiles = [Tensor(rng.normal(size=(2, 2))) for _ in range(np_tiles)]
        acc = TiledPsumAccumulator(np_tiles, apsq_config(gs=4))
        out = acc(tiles)
        if np_tiles <= 4:
            q = acc.quantizers
            stored = [q[i](tiles[i]) for i in range(np_tiles - 1)]
            expected = q[np_tiles - 1](sum(stored) + tiles[np_tiles - 1])
            assert np.allclose(out.data, expected.data)
