"""Tests for PSUM-quantized attention matmuls (the dynamic-GEMM extension)."""

import numpy as np
import pytest

from repro import nn
from repro.models import LlamaConfig, LlamaTiny
from repro.quant import (
    PsumQuantizedAttention,
    PsumQuantizedMatmul,
    apsq_config,
    baseline_config,
    quantize_attention,
)
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(6)


def randn(*shape, seed=0, scale=1.0):
    return Tensor(np.random.default_rng(seed).normal(size=shape) * scale, requires_grad=True)


class TestPsumQuantizedMatmul:
    def test_close_to_float(self):
        mm = PsumQuantizedMatmul(apsq_config(gs=2, pci=8))
        a, b = randn(2, 4, 32, seed=1), randn(2, 32, 6, seed=2)
        out = mm(a, b).data
        ref = a.data @ b.data
        rel = np.abs(out - ref).mean() / np.abs(ref).mean()
        assert rel < 0.3

    def test_accumulator_created_per_depth(self):
        mm = PsumQuantizedMatmul(apsq_config(gs=2, pci=8))
        mm(randn(1, 2, 16, seed=1), randn(1, 16, 2, seed=2))
        mm(randn(1, 2, 32, seed=3), randn(1, 32, 2, seed=4))
        assert set(mm._accumulators) == {2, 4}

    def test_accumulator_reused_for_same_depth(self):
        mm = PsumQuantizedMatmul(apsq_config(gs=2, pci=8))
        mm(randn(1, 2, 16, seed=1), randn(1, 16, 2, seed=2))
        acc = mm._accumulators[2]
        mm(randn(1, 2, 16, seed=5), randn(1, 16, 2, seed=6))
        assert mm._accumulators[2] is acc

    def test_shallow_reduction_untiled(self):
        mm = PsumQuantizedMatmul(apsq_config(gs=2, pci=8))
        out = mm(randn(1, 2, 8, seed=1), randn(1, 8, 2, seed=2))
        assert out.shape == (1, 2, 2)
        assert not mm._accumulators  # single tile: no accumulator built

    def test_baseline_mode_never_tiles(self):
        mm = PsumQuantizedMatmul(baseline_config(pci=8))
        mm(randn(1, 2, 64, seed=1), randn(1, 64, 2, seed=2))
        assert not mm._accumulators

    def test_scales_trainable(self):
        mm = PsumQuantizedMatmul(apsq_config(gs=2, pci=8))
        out = mm(randn(1, 2, 16, seed=1), randn(1, 16, 2, seed=2))
        out.sum().backward()
        params = list(mm.parameters())
        assert len(params) >= 2 + 2  # operand scales + psum scales
        assert mm.a_quantizer.scale.grad is not None


class TestPsumQuantizedAttention:
    def test_output_close_to_float(self):
        mha = nn.MultiHeadAttention(16, 4)
        x = randn(2, 24, 16, seed=7, scale=0.5)
        ref = mha(x).data
        qattn = PsumQuantizedAttention(mha, apsq_config(gs=2, pci=8))
        out = qattn(x).data
        rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.5

    def test_context_matmul_tiled_at_long_seq(self):
        """The A·V reduction depth equals seq len — tiles at T > Pci."""
        mha = nn.MultiHeadAttention(16, 4)
        qattn = PsumQuantizedAttention(mha, apsq_config(gs=2, pci=8))
        qattn(randn(1, 24, 16, seed=8, scale=0.5))
        assert 3 in qattn.context_matmul._accumulators  # ceil(24/8)

    def test_causality_preserved(self):
        mha = nn.MultiHeadAttention(8, 2, causal=True)
        qattn = PsumQuantizedAttention(mha, apsq_config(gs=2, pci=4))
        x = randn(1, 12, 8, seed=9, scale=0.5)
        out1 = qattn(x).data
        x2 = Tensor(x.data.copy())
        x2.data[0, -1] += 5.0
        out2 = qattn(x2).data
        assert np.allclose(out1[0, :-1], out2[0, :-1], atol=1e-9)

    def test_projections_shared_with_original(self):
        mha = nn.MultiHeadAttention(8, 2)
        qattn = PsumQuantizedAttention(mha, apsq_config(gs=2))
        assert qattn.q_proj is mha.q_proj


class TestQuantizeAttentionSurgery:
    def test_swaps_all_mha(self):
        model = LlamaTiny(LlamaConfig())
        quantize_attention(model, apsq_config(gs=2, pci=8))
        kinds = [type(m).__name__ for m in model.modules()]
        assert "PsumQuantizedAttention" not in ("",)  # sanity
        assert kinds.count("PsumQuantizedAttention") == model.config.num_layers
        assert kinds.count("MultiHeadAttention") == 0

    def test_model_still_runs_with_rope(self):
        model = LlamaTiny(LlamaConfig())
        quantize_attention(model, apsq_config(gs=2, pci=8))
        ids = np.random.default_rng(0).integers(0, 32, size=(2, 12))
        out = model(ids)
        assert out.shape == (2, 12, 32)

    def test_no_attention_raises(self):
        with pytest.raises(ValueError):
            quantize_attention(nn.Linear(4, 4), apsq_config(gs=2))

    def test_composes_with_quantize_model(self):
        from repro.quant import quantize_model

        model = LlamaTiny(LlamaConfig(num_layers=1))
        quantize_model(model, apsq_config(gs=2, pci=8))
        quantize_attention(model, apsq_config(gs=2, pci=8))
        ids = np.random.default_rng(1).integers(0, 32, size=(1, 10))
        assert model(ids).shape == (1, 10, 32)
