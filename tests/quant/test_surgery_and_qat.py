"""Tests for model surgery (quantize_model) and the QAT trainer."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    PsumMode,
    PsumQuantizedConv2d,
    PsumQuantizedLinear,
    QATConfig,
    QATTrainer,
    QuantConv2d,
    QuantLinear,
    apsq_config,
    baseline_config,
    evaluate,
    iterate_minibatches,
    psum_accumulators,
    quantize_model,
    quantized_layers,
    reset_psum_stats,
)
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


class TinyMLP(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(16, 32)
        self.fc2 = nn.Linear(32, 4)

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return self.fc2(self.fc1(x).relu())


class TinyConvNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.conv = nn.Conv2d(4, 8, 3, padding=1)
        self.dw = nn.DepthwiseConv2d(8)
        self.head = nn.Linear(8, 2)

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        feat = self.dw(self.conv(x).relu()).mean(axis=(2, 3))
        return self.head(feat)


class TestSurgery:
    def test_baseline_replaces_with_quant_linear(self):
        model = quantize_model(TinyMLP(), baseline_config(pci=8))
        assert isinstance(model.fc1, QuantLinear)
        assert isinstance(model.fc2, QuantLinear)

    def test_apsq_replaces_with_psum_linear(self):
        model = quantize_model(TinyMLP(), apsq_config(gs=2, pci=8))
        assert isinstance(model.fc1, PsumQuantizedLinear)
        assert model.fc1.num_tiles == 2
        assert model.fc2.num_tiles == 4

    def test_conv_replacement_skips_depthwise(self):
        model = quantize_model(TinyConvNet(), apsq_config(gs=2, pci=4))
        assert isinstance(model.conv, PsumQuantizedConv2d)
        assert isinstance(model.dw, nn.DepthwiseConv2d)
        assert not isinstance(model.dw, QuantConv2d)

    def test_double_quantization_rejected(self):
        model = quantize_model(TinyMLP(), apsq_config(gs=2))
        with pytest.raises(ValueError):
            quantize_model(model, apsq_config(gs=2))

    def test_no_quantizable_layers_rejected(self):
        with pytest.raises(ValueError):
            quantize_model(nn.LayerNorm(4), apsq_config(gs=2))

    def test_weights_shared_with_original(self):
        original = TinyMLP()
        w_before = original.fc1.weight
        quantize_model(original, apsq_config(gs=2))
        assert original.fc1.weight is w_before

    def test_quantized_layers_iterator(self):
        model = quantize_model(TinyConvNet(), apsq_config(gs=2, pci=4))
        names = [n for n, _ in quantized_layers(model)]
        assert set(names) == {"conv", "head"}

    def test_psum_accumulators_and_stats(self):
        model = quantize_model(TinyMLP(), apsq_config(gs=2, pci=8))
        model(np.random.default_rng(0).normal(size=(2, 16)))
        accs = dict(psum_accumulators(model))
        assert len(accs) == 2
        assert any(a.psum_writes > 0 for a in accs.values())
        reset_psum_stats(model)
        assert all(a.psum_writes == 0 for a in accs.values())

    def test_forward_after_surgery_close_to_float(self):
        float_model = TinyMLP()
        x = np.random.default_rng(3).normal(size=(8, 16))
        ref = float_model(x).data
        state = float_model.state_dict()
        quantized = quantize_model(TinyMLP(), apsq_config(gs=4, pci=4))
        # Restore the float weights into the quantized model.
        quantized.load_state_dict(state, strict=False)
        out = quantized(x).data
        rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.5


class TestQATTrainer:
    def _make_data(self, n=64):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(n, 16))
        y = (x[:, 0] > 0).astype(np.int64) + 2 * (x[:, 1] > 0).astype(np.int64)
        return x, y

    def test_float_training_improves_accuracy(self):
        x, y = self._make_data()
        model = TinyMLP()
        trainer = QATTrainer(model, nn.cross_entropy, config=QATConfig(epochs=12, lr=5e-3))
        trainer.fit(x, y)
        acc = evaluate(model, x, y, lambda out, t: (out.argmax(-1) == t).mean())
        assert acc > 0.7

    def test_history_recorded(self):
        x, y = self._make_data(32)
        trainer = QATTrainer(TinyMLP(), nn.cross_entropy, config=QATConfig(epochs=2))
        history = trainer.fit(x, y)
        assert len(history) == 2
        assert all("loss" in h for h in history)

    def test_loss_decreases(self):
        x, y = self._make_data()
        trainer = QATTrainer(TinyMLP(), nn.cross_entropy, config=QATConfig(epochs=8, lr=5e-3))
        history = trainer.fit(x, y)
        assert history[-1]["loss"] < history[0]["loss"]

    def test_qat_with_teacher_runs_and_improves(self):
        x, y = self._make_data()
        teacher = TinyMLP()
        QATTrainer(teacher, nn.cross_entropy, config=QATConfig(epochs=12, lr=5e-3)).fit(x, y)
        student = quantize_model(TinyMLP(), apsq_config(gs=2, pci=8))
        student.load_state_dict(teacher.state_dict(), strict=False)
        trainer = QATTrainer(
            student, nn.cross_entropy, teacher=teacher, config=QATConfig(epochs=6, lr=1e-3)
        )
        trainer.fit(x, y)
        acc = evaluate(student, x, y, lambda out, t: (out.argmax(-1) == t).mean())
        assert acc > 0.6

    def test_teacher_frozen(self):
        x, y = self._make_data(32)
        teacher = TinyMLP()
        w_before = teacher.fc1.weight.data.copy()
        student = quantize_model(TinyMLP(), apsq_config(gs=2, pci=8))
        QATTrainer(
            student, nn.cross_entropy, teacher=teacher, config=QATConfig(epochs=1)
        ).fit(x, y)
        assert np.allclose(teacher.fc1.weight.data, w_before)

    def test_minibatch_iterator_covers_all(self):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, batch_size=3, shuffle=True):
            assert len(bx) == len(by)
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(10))

    def test_minibatch_no_shuffle_order(self):
        x = np.arange(6).reshape(6, 1).astype(float)
        y = np.arange(6)
        batches = list(iterate_minibatches(x, y, batch_size=4, shuffle=False))
        assert batches[0][1].tolist() == [0, 1, 2, 3]
