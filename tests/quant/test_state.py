"""Quantizer state round-trip helpers (calibration flags, versions)."""

import numpy as np
import pytest

from repro.models import BertConfig, BertTiny
from repro.quant import apsq_config, quantize_model
from repro.quant.state import (
    apply_calibration_flags,
    calibration_flags,
    parameter_versions,
    restore_parameter_versions,
)
from repro.tensor import manual_seed


def make_model(calibrated=True):
    manual_seed(0)
    model = quantize_model(BertTiny(BertConfig(num_layers=1)), apsq_config(gs=2))
    if calibrated:
        model(np.random.default_rng(0).integers(0, 64, size=(2, 8)))
    return model


class TestCalibrationFlags:
    def test_flags_reflect_calibration(self):
        assert not any(calibration_flags(make_model(calibrated=False)).values())
        assert all(calibration_flags(make_model(calibrated=True)).values())

    def test_flags_round_trip(self):
        source = make_model(calibrated=True)
        target = make_model(calibrated=False)
        apply_calibration_flags(target, calibration_flags(source))
        assert calibration_flags(target) == calibration_flags(source)

    def test_unknown_module_raises(self):
        model = make_model(calibrated=False)
        with pytest.raises((KeyError, AttributeError)):
            apply_calibration_flags(model, {"not.a.module": True})

    def test_non_quantizer_target_raises(self):
        model = make_model(calibrated=False)
        with pytest.raises(TypeError):
            apply_calibration_flags(model, {"head": True})


class TestParameterVersions:
    def test_versions_snapshot(self):
        model = make_model()
        versions = parameter_versions(model)
        assert versions  # every parameter accounted for
        assert all(isinstance(v, int) for v in versions.values())

    def test_restore_fast_forwards_only(self):
        model = make_model()
        versions = {name: v + 10 for name, v in parameter_versions(model).items()}
        restore_parameter_versions(model, versions)
        assert parameter_versions(model) == versions
        # Regressing is refused: lower recorded versions leave counters alone.
        restore_parameter_versions(model, {name: 0 for name in versions})
        assert parameter_versions(model) == versions

    def test_restored_versions_still_invalidate_on_rebind(self):
        model = make_model()
        restore_parameter_versions(
            model, {name: v + 5 for name, v in parameter_versions(model).items()}
        )
        param = next(iter(model.parameters()))
        before = param.version
        param.data = param.data.copy()
        assert param.version == before + 1
