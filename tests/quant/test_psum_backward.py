"""The fused APSQ accumulator's vectorized backward vs the replay oracle.

The accumulator's hand-written backward used to replay the group chain in
a per-group Python loop; it is now a single fused LSQ-gradient pass
(:func:`repro.quant.psum._apsq_grad_pass`).  The replay loop is kept as
:func:`repro.quant.psum._apsq_grad_replay` and these tests pin the two
bit-for-bit across group sizes, tile counts (ragged groups included),
boundary-final layouts and dtypes — plus against the gradients of the
plain per-tile autograd graph built from the same quantizers.
"""

from itertools import product

import numpy as np
import pytest

from repro.quant import TiledPsumAccumulator, apsq_config
from repro.quant.psum import _apsq_grad_pass, _apsq_grad_replay
from repro.rae import ReductionSchedule
from repro.tensor import Tensor, manual_seed, set_default_dtype

QN, QP = -128, 127


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)


class TestGradPassBitIdentity:
    @pytest.mark.parametrize(
        "gs,np_tiles",
        list(product([1, 2, 3, 4, 8], [2, 3, 4, 5, 6, 7, 8, 9, 12])),
    )
    def test_matches_replay_loop(self, gs, np_tiles):
        """Every (gs, np) layout: vectorized == replay, bit for bit.

        Inputs deliberately straddle the clip range so the inside-range
        masks (the chain's cumprod terms) carry real zeros.
        """
        rng = np.random.default_rng(gs * 100 + np_tiles)
        shape = (4, 5)
        v_stack = rng.normal(size=(np_tiles,) + shape) * 100
        g = rng.normal(size=shape)
        factor = 1.0 / np.sqrt(shape[0] * shape[1] * QP)
        schedule = ReductionSchedule.for_reduction(np_tiles, gs)
        tiles_vec, scales_vec = _apsq_grad_pass(g, v_stack, schedule, QN, QP, factor)
        tiles_ref, scales_ref = _apsq_grad_replay(g, v_stack, schedule, QN, QP, factor)
        assert np.array_equal(tiles_vec, tiles_ref)
        for a, b in zip(scales_vec, scales_ref):
            assert np.float64(a) == np.float64(b)

    def test_all_inside_range(self):
        """No clipping anywhere: the chain masks are all ones."""
        rng = np.random.default_rng(0)
        v_stack = rng.uniform(-1, 1, size=(6, 3, 3))
        g = rng.normal(size=(3, 3))
        schedule = ReductionSchedule.for_reduction(6, 2)
        factor = 0.1
        tiles_vec, scales_vec = _apsq_grad_pass(g, v_stack, schedule, QN, QP, factor)
        tiles_ref, scales_ref = _apsq_grad_replay(g, v_stack, schedule, QN, QP, factor)
        assert np.array_equal(tiles_vec, tiles_ref)
        assert scales_vec == pytest.approx(scales_ref, abs=0)

    def test_float32_bit_identity(self):
        rng = np.random.default_rng(1)
        v_stack = (rng.normal(size=(5, 2, 4)) * 100).astype(np.float32)
        g = rng.normal(size=(2, 4)).astype(np.float32)
        schedule = ReductionSchedule.for_reduction(5, 2)
        tiles_vec, scales_vec = _apsq_grad_pass(g, v_stack, schedule, QN, QP, 0.5)
        tiles_ref, scales_ref = _apsq_grad_replay(g, v_stack, schedule, QN, QP, 0.5)
        assert tiles_vec.dtype == np.float32
        assert np.array_equal(tiles_vec, tiles_ref)
        for a, b in zip(scales_vec, scales_ref):
            assert np.float64(a) == np.float64(b)


class TestAccumulatorGradsVsOpGraph:
    """The fused op's gradients equal a per-tile autograd construction."""

    @pytest.mark.parametrize("gs,np_tiles", [(1, 4), (2, 5), (2, 6), (3, 7), (4, 6)])
    def test_tile_and_scale_grads_match_manual_graph(self, gs, np_tiles):
        rng = np.random.default_rng(gs * 10 + np_tiles)
        data = rng.normal(size=(np_tiles, 4, 3))

        manual_seed(7)
        acc = TiledPsumAccumulator(np_tiles, apsq_config(gs=gs))
        stacked = Tensor(data.copy(), requires_grad=True)
        acc(stacked).sum().backward()

        # Re-walk Algorithm 1 with the very same (calibrated) quantizers
        # as a plain per-tile op graph.
        tiles = [Tensor(data[i].copy(), requires_grad=True) for i in range(np_tiles)]
        q = list(acc.quantizers)
        for quantizer in q:
            quantizer.scale.grad = None
        schedule = ReductionSchedule.for_reduction(np_tiles, gs)
        prev = None
        acc_t = None
        out = None
        for step in schedule.steps:
            xi = tiles[step.index]
            if step.kind.value == "final":
                folded = acc_t if step.folds_stored else prev
                out = q[step.index](xi if folded is None else folded + xi)
                break
            if step.kind.value == "apsq":
                acc_t = q[step.index](xi if prev is None else prev + xi)
            else:
                acc_t = acc_t + q[step.index](xi)
            if step.closes_group:
                prev = acc_t
        out.sum().backward()

        for i in range(np_tiles):
            assert np.array_equal(stacked.grad[i], tiles[i].grad), f"tile {i}"
        # Scale grads: the manual graph accumulated fresh grads on the same
        # scale parameters; the fused op produced them in one pass earlier,
        # so compare against the replay-derived values via a fresh run.
        manual_seed(7)
        acc2 = TiledPsumAccumulator(np_tiles, apsq_config(gs=gs))
        stacked2 = Tensor(data.copy(), requires_grad=True)
        acc2(stacked2).sum().backward()
        for q1, q2 in zip(acc.quantizers, acc2.quantizers):
            assert np.array_equal(q1.scale.grad, q2.scale.grad)

    def test_gradients_deterministic_across_dtypes(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(4, 3, 3))

        def run():
            manual_seed(0)
            acc = TiledPsumAccumulator(4, apsq_config(gs=2))
            stacked = Tensor(np.asarray(data, dtype=None), requires_grad=True)
            acc(stacked).sum().backward()
            return stacked.grad, [q.scale.grad for q in acc.quantizers]

        g64, s64 = run()
        set_default_dtype("float32")
        try:
            g32, s32 = run()
        finally:
            set_default_dtype("float64")
        assert np.allclose(g64, g32, atol=1e-3)
        for a, b in zip(s64, s32):
            assert np.allclose(a, b, atol=1e-3)
