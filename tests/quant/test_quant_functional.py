"""Tests for quantization primitives: specs, STE ops, LSQ fake-quant."""

import numpy as np
import pytest

from repro.quant import (
    INT4,
    INT8,
    UINT8,
    QuantSpec,
    fake_quant_values,
    lsq_fake_quant,
    lsq_init_scale,
    po2_ste,
    po2_values,
    quantize_int_values,
    round_ste,
)
from repro.tensor import Tensor


class TestQuantSpec:
    def test_int8_bounds(self):
        assert INT8.qn == -128
        assert INT8.qp == 127

    def test_uint8_bounds(self):
        assert UINT8.qn == 0
        assert UINT8.qp == 255

    def test_int4_bounds(self):
        assert INT4.qn == -8
        assert INT4.qp == 7

    def test_num_levels(self):
        assert QuantSpec(6).num_levels == 64

    @pytest.mark.parametrize("bits", [0, 1, 33])
    def test_invalid_bits(self, bits):
        with pytest.raises(ValueError):
            QuantSpec(bits)


class TestRoundSTE:
    def test_forward_rounds(self):
        x = Tensor([1.4, 1.6, -2.5])
        out = round_ste(x)
        assert np.allclose(out.data, np.round([1.4, 1.6, -2.5]))

    def test_backward_identity(self):
        x = Tensor([1.4, 2.7], requires_grad=True)
        round_ste(x).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])


class TestPo2:
    def test_values_snap_to_powers(self):
        scales = np.array([0.9, 1.1, 3.0, 0.26])
        out = po2_values(scales)
        assert np.allclose(out, [1.0, 1.0, 4.0, 0.25])

    def test_values_handle_tiny(self):
        assert po2_values(np.array([0.0])) > 0

    def test_ste_forward(self):
        s = Tensor(np.array(3.0), requires_grad=True)
        assert po2_ste(s).item() == 4.0

    def test_ste_gradient_identity(self):
        s = Tensor(np.array(3.0), requires_grad=True)
        po2_ste(s).backward(np.array(2.0))
        assert np.isclose(s.grad, 2.0)

    def test_exact_powers_unchanged(self):
        for v in [0.125, 0.5, 1.0, 2.0, 64.0]:
            assert po2_values(np.array([v]))[0] == v


class TestFakeQuantValues:
    def test_roundtrip_on_grid(self):
        # Values already on the quantization grid survive exactly.
        scale = 0.5
        x = np.array([-2.0, -0.5, 0.0, 1.5, 3.0])
        assert np.allclose(fake_quant_values(x, scale, -128, 127), x)

    def test_clipping(self):
        out = fake_quant_values(np.array([1000.0, -1000.0]), 1.0, -8, 7)
        assert np.allclose(out, [7.0, -8.0])

    def test_quantize_int_dtype_and_range(self):
        codes = quantize_int_values(np.linspace(-10, 10, 101), 0.1, -128, 127)
        assert codes.dtype == np.int64
        assert codes.min() >= -128
        assert codes.max() <= 127

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        scale = 0.05
        out = fake_quant_values(x, scale, -128, 127)
        inside = np.abs(x) < 127 * scale
        assert np.abs(out[inside] - x[inside]).max() <= scale / 2 + 1e-12


class TestLSQFakeQuant:
    def test_forward_matches_plain(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        s = Tensor(np.array(0.1), requires_grad=True)
        out = lsq_fake_quant(x, s, -128, 127)
        assert np.allclose(out.data, fake_quant_values(x.data, 0.1, -128, 127))

    def test_x_gradient_inside_range(self):
        x = Tensor([0.5, -0.3], requires_grad=True)
        s = Tensor(np.array(0.1), requires_grad=True)
        lsq_fake_quant(x, s, -128, 127).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])

    def test_x_gradient_clipped_outside(self):
        x = Tensor([100.0, -100.0, 0.1], requires_grad=True)
        s = Tensor(np.array(0.1), requires_grad=True)
        lsq_fake_quant(x, s, -8, 7).sum().backward()
        assert np.allclose(x.grad, [0.0, 0.0, 1.0])

    def test_scale_gradient_formula(self):
        # For an in-range value, d out / d s = round(v) - v (with grad_scale=1).
        x = Tensor([0.26], requires_grad=True)
        s = Tensor(np.array(0.1), requires_grad=True)
        lsq_fake_quant(x, s, -128, 127, grad_scale=1.0).sum().backward()
        v = 0.26 / 0.1
        assert np.isclose(float(s.grad), np.round(v) - v)

    def test_scale_gradient_at_clip(self):
        x = Tensor([1e6], requires_grad=True)
        s = Tensor(np.array(1.0), requires_grad=True)
        lsq_fake_quant(x, s, -8, 7, grad_scale=1.0).sum().backward()
        assert np.isclose(float(s.grad), 7.0)

    def test_default_grad_scale(self):
        x = Tensor(np.full(100, 1e6), requires_grad=True)
        s = Tensor(np.array(1.0), requires_grad=True)
        lsq_fake_quant(x, s, -8, 7).sum().backward()
        expected = 100 * 7.0 / np.sqrt(100 * 7)
        assert np.isclose(float(s.grad), expected)

    def test_negative_scale_clamped(self):
        x = Tensor([1.0], requires_grad=True)
        s = Tensor(np.array(-0.5), requires_grad=True)
        out = lsq_fake_quant(x, s, -128, 127)
        assert np.isfinite(out.data).all()


class TestLSQInit:
    def test_init_rule(self):
        x = np.ones(16) * 3.0
        assert np.isclose(lsq_init_scale(x, 127), 2 * 3.0 / np.sqrt(127))

    def test_init_positive_for_zero_input(self):
        assert lsq_init_scale(np.zeros(4), 127) > 0
