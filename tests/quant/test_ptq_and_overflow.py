"""Tests for the PTQ calibration path and the PSUM-overflow analysis."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    apsq_config,
    calibrate_model,
    calibration_report,
    evaluate,
    ptq_quantize,
    quantize_model,
    required_psum_bits,
    storage_psum_bits,
)
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(8)


class TestOverflowAnalysis:
    def test_paper_example_bert_large(self):
        """Section II-A: Ci=4096 at W8A8 needs 28 bits -> INT32 storage."""
        assert required_psum_bits(4096, 8, 8) == 28
        assert storage_psum_bits(4096, 8, 8) == 32

    def test_depth_one_is_product_width(self):
        assert required_psum_bits(1, 8, 8) == 16

    def test_monotone_in_depth(self):
        widths = [required_psum_bits(ci) for ci in (1, 16, 256, 4096)]
        assert widths == sorted(widths)
        assert len(set(widths)) == 4

    def test_non_power_of_two_depth(self):
        assert required_psum_bits(100, 8, 8) == 16 + 7  # ceil(log2 100) = 7

    def test_storage_byte_aligned(self):
        for ci in (2, 64, 500, 4096):
            assert storage_psum_bits(ci) % 8 == 0
            assert storage_psum_bits(ci) >= required_psum_bits(ci)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            required_psum_bits(0)


class MLP(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(16, 32)
        self.fc2 = nn.Linear(32, 4)

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return self.fc2(self.fc1(x).relu())


def make_data(n=128, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 16))
    y = (x[:, 0] > 0).astype(np.int64)
    return x, y


class TestPTQ:
    def test_calibration_initializes_all_quantizers(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        x, _ = make_data(32)
        ptq_quantize(model, [x[:16], x[16:]])
        from repro.quant import LSQQuantizer

        quantizers = [m for m in model.modules() if isinstance(m, LSQQuantizer)]
        assert all(q._initialized for q in quantizers)

    def test_scales_cover_observed_range(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        x, _ = make_data(64)
        calibrate_model(model, [x])
        wq = model.fc1.weight_quantizer
        w_max = np.abs(model.fc1.weight.data).max()
        # Min-max scale maps the extreme weight to the clip bound.
        assert wq.effective_scale * 127 >= w_max * 0.5

    def test_forward_restored_after_calibration(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        x, _ = make_data(16)
        calibrate_model(model, [x])
        # The instance-level observing hook must be gone.
        assert "forward" not in vars(model.fc1.weight_quantizer)

    def test_unquantized_model_rejected(self):
        with pytest.raises(ValueError):
            calibrate_model(MLP(), [np.zeros((1, 16))])

    def test_ptq_accuracy_reasonable_but_below_qat(self):
        """PTQ works; QAT with a teacher should do at least as well."""
        from repro.quant import QATConfig, QATTrainer

        x, y = make_data(128)
        teacher = MLP()
        QATTrainer(teacher, nn.cross_entropy, config=QATConfig(epochs=10, lr=5e-3)).fit(x, y)
        metric = lambda out, t: float((out.argmax(-1) == t).mean())
        teacher_acc = evaluate(teacher, x, y, metric)

        ptq_model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        ptq_model.load_state_dict(teacher.state_dict(), strict=False)
        ptq_quantize(ptq_model, [x[:32]])
        ptq_acc = evaluate(ptq_model, x, y, metric)
        assert ptq_acc > 0.6  # PTQ alone is serviceable
        assert ptq_acc <= teacher_acc + 0.05

    def test_calibration_report_groups(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        x, _ = make_data(16)
        ptq_quantize(model, [x])
        report = calibration_report(model)
        assert len(report["weight"]) == 2
        assert len(report["activation"]) == 2
        assert len(report["psum"]) == model.fc1.num_tiles + model.fc2.num_tiles

    def test_psum_scales_po2_after_ptq(self):
        model = quantize_model(MLP(), apsq_config(gs=2, pci=8))
        x, _ = make_data(16)
        ptq_quantize(model, [x])
        report = calibration_report(model)
        for _, scale in report["psum"]:
            log2 = np.log2(scale)
            assert np.isclose(log2, np.round(log2))
