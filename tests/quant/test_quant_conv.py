"""Direct tests for QuantConv2d and PsumQuantizedConv2d."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    PsumQuantizedConv2d,
    QuantConv2d,
    apsq_config,
    baseline_config,
)
from repro.tensor import Tensor, manual_seed


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(9)


def make_input(shape=(2, 4, 8, 8), seed=0, scale=0.5):
    return Tensor(np.random.default_rng(seed).normal(size=shape) * scale)


class TestQuantConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(4, 8, 3, stride=2, padding=1)
        qconv = QuantConv2d(conv, baseline_config())
        assert qconv(make_input()).shape == (2, 8, 4, 4)

    def test_close_to_float(self):
        conv = nn.Conv2d(4, 8, 3, padding=1)
        x = make_input()
        ref = conv(x).data
        qconv = QuantConv2d(conv, baseline_config())
        out = qconv(x).data
        rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.1

    def test_grouped_conv_rejected(self):
        with pytest.raises(ValueError):
            QuantConv2d(nn.DepthwiseConv2d(4), baseline_config())

    def test_gradients_flow(self):
        conv = nn.Conv2d(2, 4, 3, padding=1)
        qconv = QuantConv2d(conv, baseline_config())
        qconv(make_input((1, 2, 4, 4))).sum().backward()
        assert qconv.weight.grad is not None
        assert qconv.weight_quantizer.scale.grad is not None


class TestPsumQuantizedConv2d:
    def test_tile_count_includes_kernel(self):
        conv = nn.Conv2d(8, 4, 3, padding=1)  # reduction 8*9 = 72
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=2, pci=8))
        assert qconv.num_tiles == 9
        assert qconv.tiled

    def test_small_reduction_fallback(self):
        conv = nn.Conv2d(4, 4, 1)  # reduction 4 < pci
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=2, pci=8))
        assert not qconv.tiled

    def test_forward_close_to_float(self):
        conv = nn.Conv2d(4, 8, 3, padding=1)
        x = make_input()
        ref = conv(x).data
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=2, pci=8))
        out = qconv(x).data
        rel = np.abs(out - ref).mean() / (np.abs(ref).mean() + 1e-9)
        assert rel < 0.4

    @pytest.mark.parametrize("gs", [1, 4])
    def test_all_group_sizes_run(self, gs):
        conv = nn.Conv2d(4, 4, 3, padding=1)
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=gs, pci=4))
        assert qconv(make_input((1, 4, 6, 6))).shape == (1, 4, 6, 6)

    def test_accumulator_stats_after_forward(self):
        conv = nn.Conv2d(4, 4, 3, padding=1)
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=2, pci=4))
        qconv(make_input((1, 4, 6, 6)))
        assert qconv.accumulator.psum_writes == qconv.num_tiles

    def test_gradients_reach_psum_scales(self):
        conv = nn.Conv2d(4, 4, 3, padding=1)
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=2, pci=4))
        qconv(make_input((1, 4, 6, 6))).sum().backward()
        grads = [q.scale.grad for q in qconv.accumulator.quantizers]
        assert all(g is not None for g in grads)

    def test_stride_and_padding_respected(self):
        conv = nn.Conv2d(4, 6, 3, stride=2, padding=1)
        qconv = PsumQuantizedConv2d(conv, apsq_config(gs=2, pci=8))
        assert qconv(make_input()).shape == (2, 6, 4, 4)
