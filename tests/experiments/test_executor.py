"""Tests for the sharded experiment executor and the hardened result store."""

import json
import logging

import pytest

from repro.experiments import PROFILES, cache, table1
from repro.experiments.executor import (
    CELL_KINDS,
    ExperimentCell,
    RunReport,
    compute_cell,
    run_cells,
)
from repro.experiments.store import ResultStore

SMOKE = PROFILES["smoke"]


@pytest.fixture(autouse=True)
def _tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CACHE", "1")


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_key_collision_regression(self):
        """``gs=1`` and ``gs-1`` used to sanitize onto the same file."""
        assert cache._path("table1/gs=1") != cache._path("table1/gs-1")
        cache.store("table1/gs=1", 0.25)
        cache.store("table1/gs-1", 0.75)
        assert cache.load("table1/gs=1") == 0.25
        assert cache.load("table1/gs-1") == 0.75

    def test_records_are_schema_versioned_with_metadata(self):
        store = ResultStore()
        store.store("exp/task/m", 0.5, metadata={"duration_s": 1.25})
        record = json.loads(store.path_for("exp/task/m").read_text())
        assert record["schema"] == 2
        assert record["key"] == "exp/task/m"
        assert record["value"] == 0.5
        assert record["metadata"]["duration_s"] == 1.25

    def test_corrupt_record_warns_and_misses(self, caplog):
        cache.store("k3", 1.0)
        cache._path("k3").write_text("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.experiments.store"):
            assert cache.load("k3") is None
        assert any("corrupt" in r.message for r in caplog.records)

    def test_atomic_write_leaves_no_temp_files(self):
        store = ResultStore()
        for i in range(5):
            store.store(f"key/{i}", float(i))
        leftovers = list(store.root.glob("*.tmp"))
        assert leftovers == []

    def test_legacy_record_readable_when_key_matches(self):
        store = ResultStore()
        store.root.mkdir(parents=True, exist_ok=True)
        legacy = store.legacy_path_for("old/gs=1")
        legacy.write_text(json.dumps({"key": "old/gs=1", "value": 0.5}))
        assert store.load("old/gs=1") == 0.5
        # The colliding legacy filename must NOT satisfy the other key.
        assert store.legacy_path_for("old/gs-1") == legacy
        assert store.load("old/gs-1") is None

    def test_migrate_legacy_rewrites_records(self):
        store = ResultStore()
        store.root.mkdir(parents=True, exist_ok=True)
        store.legacy_path_for("mig/gs=2").write_text(
            json.dumps({"key": "mig/gs=2", "value": 0.125})
        )
        assert store.migrate_legacy() == 1
        assert not store.legacy_path_for("mig/gs=2").exists()
        assert json.loads(store.path_for("mig/gs=2").read_text())["schema"] == 2
        assert store.load("mig/gs=2") == 0.125

    def test_disabled_store_is_inert(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        store = ResultStore()
        store.store("k", 1.0)
        assert store.load("k") is None


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
def _cell(key, **kwargs):
    defaults = dict(kind="test-square", profile=SMOKE, task="t", method="m")
    defaults.update(kwargs)
    return ExperimentCell(key=key, **defaults)


@pytest.fixture()
def _square_kind(monkeypatch):
    """A cheap deterministic cell kind for machinery tests.

    Also isolates the process-global timing log: the toy cells these
    tests run through ``run_cells`` must not leak into the session's
    ``timings.json`` trajectory (the real records are put back).
    """
    from repro.experiments.executor import drain_cell_timings, restore_cell_timings

    monkeypatch.setitem(CELL_KINDS, "test-square", lambda cell: cell.seed**2)
    monkeypatch.setitem(
        CELL_KINDS, "test-dict", lambda cell: {t: float(len(t)) for t in cell.tasks}
    )
    saved = drain_cell_timings()
    yield
    drain_cell_timings()  # discard the toy records
    restore_cell_timings(saved)


class TestRunCells:
    def test_caches_and_reports(self, _square_kind):
        cells = [_cell(f"sq/{i}", seed=i) for i in range(4)]
        report = RunReport()
        values = run_cells(cells, jobs=1, report=report)
        assert values == {f"sq/{i}": i**2 for i in range(4)}
        assert (report.hits, report.computed) == (0, 4)

        again = RunReport()
        assert run_cells(cells, jobs=1, report=again) == values
        assert (again.hits, again.computed) == (4, 0)

    def test_parallel_jobs_match_serial(self, _square_kind, tmp_path, monkeypatch):
        cells = [_cell(f"p/{i}", seed=i) for i in range(5)]
        serial = run_cells(cells, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-par"))
        parallel = run_cells(cells, jobs=3)
        assert parallel == serial

    def test_duplicate_keys_rejected(self, _square_kind):
        with pytest.raises(ValueError):
            run_cells([_cell("dup"), _cell("dup")])

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            compute_cell(_cell("x", kind="no-such-kind"))

    def test_item_prefix_stores_per_item(self, _square_kind):
        cell = _cell("agg", kind="test-dict", tasks=("BoolQ", "PIQA"), item_prefix="agg")
        values = run_cells([cell], jobs=1)
        assert values["agg"] == {"BoolQ": 5.0, "PIQA": 4.0}
        store = ResultStore()
        assert store.load("agg/BoolQ") == 5.0
        assert store.load("agg/PIQA") == 4.0

    def test_durations_recorded_in_metadata(self, _square_kind):
        run_cells([_cell("timed", seed=3)], jobs=1)
        record = ResultStore().load_record("timed")
        assert record["metadata"]["duration_s"] >= 0.0
        assert record["metadata"]["kind"] == "test-square"


class TestEndToEndParallelEquality:
    def test_table1_parallel_metrics_bit_identical_to_serial(
        self, tmp_path, monkeypatch
    ):
        """The acceptance property: sharding must not change any metric."""
        kwargs = dict(
            profile=SMOKE,
            glue_tasks=["QNLI"],
            include_segmentation=False,
            methods=["Baseline", "gs=2"],
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = table1.run(jobs=1, **kwargs)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel = table1.run(jobs=2, **kwargs)
        assert parallel == serial  # exact float equality, not approx
