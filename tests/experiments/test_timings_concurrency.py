"""Concurrent-writer discipline for cell timings (serving PR).

Serve workers and sharded experiments can now both feed the timing log
and the ``timings.json`` payload; these tests pin the two guarantees:
the in-process record list survives concurrent appends, and the on-disk
payload is written atomically / merged rather than clobbered.
"""

import json
import threading

from repro.experiments.executor import (
    drain_cell_timings,
    record_cell_timing,
    restore_cell_timings,
)
from repro.experiments.timings import (
    build_payload,
    load_timings,
    merge_cells_into,
    write_payload,
)


class TestConcurrentRecords:
    def test_parallel_recorders_lose_nothing(self):
        # Isolate from the session's real records — and put them back, so
        # a full-suite run still writes the benchmark cells recorded
        # before this test into timings.json at session finish.
        saved = drain_cell_timings()
        try:
            threads = [
                threading.Thread(
                    target=lambda worker=w: [
                        record_cell_timing(f"serve/w{worker}/{i}", "serve", 0.001)
                        for i in range(50)
                    ]
                )
                for w in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            records = drain_cell_timings()
        finally:
            restore_cell_timings(saved)
        assert len(records) == 8 * 50
        assert len({record["key"] for record in records}) == 8 * 50


class TestAtomicWrite:
    def test_write_payload_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "timings.json"
        payload = build_payload({"t": 0.5}, [{"key": "a", "kind": "x", "duration_s": 0.1}])
        write_payload(path, payload)
        assert load_timings(path) == payload
        leftovers = [p for p in path.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_concurrent_writers_leave_valid_json(self, tmp_path):
        path = tmp_path / "timings.json"

        def writer(worker):
            for i in range(20):
                payload = build_payload(
                    {}, [{"key": f"w{worker}", "kind": "x", "duration_s": i * 0.001}]
                )
                write_payload(path, payload)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Whichever writer won, the file parses and carries schema 2.
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2


class TestMergeCells:
    def test_merge_preserves_and_overwrites(self, tmp_path):
        path = tmp_path / "timings.json"
        write_payload(
            path,
            build_payload(
                {"old_test": 1.0},
                [
                    {"key": "keep", "kind": "x", "duration_s": 0.5},
                    {"key": "update", "kind": "x", "duration_s": 0.5},
                ],
            ),
        )
        merged = merge_cells_into(
            path,
            [
                {"key": "update", "kind": "serve", "duration_s": 0.25},
                {"key": "new", "kind": "serve", "duration_s": 0.1},
            ],
        )
        assert set(merged["cells"]) == {"keep", "update", "new"}
        assert merged["cells"]["keep"]["median_s"] == 0.5
        assert merged["cells"]["update"]["median_s"] == 0.25
        assert merged["cells"]["update"]["kind"] == "serve"
        assert merged["tests"] == {"old_test": 1.0}
        assert load_timings(path) == merged

    def test_merge_into_missing_file(self, tmp_path):
        path = tmp_path / "absent.json"
        merged = merge_cells_into(
            path, [{"key": "a", "kind": "serve", "duration_s": 0.2}]
        )
        assert set(merged["cells"]) == {"a"}
        assert load_timings(path) == merged

    def test_merge_over_corrupt_file(self, tmp_path):
        path = tmp_path / "timings.json"
        path.write_text("{not json")
        merged = merge_cells_into(
            path, [{"key": "a", "kind": "serve", "duration_s": 0.2}]
        )
        assert set(merged["cells"]) == {"a"}  # degrades to a fresh payload
