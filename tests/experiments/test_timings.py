"""Tests for the stable timings payload and the regression checker."""

import json

import pytest

from repro.experiments.timings import (
    Regression,
    build_payload,
    cell_medians,
    compare,
    dump_payload,
    missing_hot_cells,
    round_duration,
)


def cells(**keys):
    return {
        "schema": 2,
        "tests": {},
        "cells": {
            key: {"kind": "x", "median_s": value, "runs": 1}
            for key, value in keys.items()
        },
    }


class TestBuildPayload:
    def test_medians_and_sorted_keys(self):
        records = [
            {"key": "b", "kind": "x", "duration_s": 0.03},
            {"key": "a", "kind": "y", "duration_s": 0.2},
            {"key": "b", "kind": "x", "duration_s": 0.01},
            {"key": "b", "kind": "x", "duration_s": 0.02},
        ]
        payload = build_payload({"t2": 1.23456789, "t1": 0.5}, records)
        assert payload["schema"] == 2
        assert list(payload["cells"]) == ["a", "b"]
        assert payload["cells"]["b"] == {"kind": "x", "median_s": 0.02, "runs": 3}
        assert list(payload["tests"]) == ["t1", "t2"]
        assert payload["tests"]["t2"] == round_duration(1.23456789)

    def test_dump_is_stable(self):
        payload = build_payload({"t": 0.1}, [{"key": "a", "kind": "x", "duration_s": 0.5}])
        text = dump_payload(payload)
        assert text == dump_payload(json.loads(text))
        assert text.endswith("\n")

    def test_schema1_cells_still_readable(self):
        payload = {
            "schema": 1,
            "cells": [
                {"key": "a", "kind": "x", "duration_s": 0.1},
                {"key": "a", "kind": "x", "duration_s": 0.3},
            ],
        }
        assert cell_medians(payload) == {"a": 0.2}


class TestCompare:
    def test_flags_hot_path_regression(self):
        regressions = compare(cells(hot=0.010, cold=0.001), cells(hot=0.020, cold=0.010))
        assert [r.key for r in regressions] == ["hot"]  # cold is below the floor
        assert regressions[0].ratio == pytest.approx(2.0)

    def test_within_threshold_passes(self):
        assert compare(cells(hot=0.010), cells(hot=0.014)) == []

    def test_speedup_passes(self):
        assert compare(cells(hot=0.010), cells(hot=0.002)) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare(cells(a=0.01), cells(a=0.01), threshold=1.0)

    def test_missing_hot_cells_reported(self):
        """Cells dropped by a partial run must be surfaced, not skipped."""
        missing = missing_hot_cells(cells(hot=0.010, tiny=0.001), cells(other=0.010))
        assert missing == ["hot"]

    def test_regression_str_readable(self):
        text = str(Regression("k", 0.010, 0.020))
        assert "k" in text and "2.00x" in text
