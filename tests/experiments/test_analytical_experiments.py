"""Tests for the analytical experiments (fig1, fig6, table2, table4)."""

import numpy as np

from repro.experiments import fig1, fig5, fig6, table2, table4


class TestFig1:
    def test_all_configs_present(self):
        results = fig1.run()
        assert len(results) == 9  # 3 dataflows x 3 bitwidths

    def test_normalization(self):
        results = fig1.run()
        peaks = [v["normalized_total"] for v in results.values()]
        assert max(peaks) == 1.0

    def test_psum_share_monotone_in_bits(self):
        results = fig1.run()
        for df in ("IS", "WS"):
            assert (
                results[f"{df}/8"]["psum_share"]
                < results[f"{df}/16"]["psum_share"]
                < results[f"{df}/32"]["psum_share"]
            )

    def test_format_table(self):
        text = fig1.format_table(fig1.run())
        assert "WS/32" in text
        assert "psum%" in text


class TestFig6:
    def test_rows(self):
        results = fig6.run()
        assert len(results) == 6  # 2 dataflows x 3 models

    def test_baseline_normalized_to_one(self):
        for row in fig6.run().values():
            assert row["Baseline"] == 1.0

    def test_all_apsq_savings(self):
        for row in fig6.run().values():
            for gs in (1, 2, 3, 4):
                assert row[f"gs={gs}"] < 1.0

    def test_format(self):
        assert "Segformer-B0" in fig6.format_table(fig6.run())


class TestFig5Energy:
    def test_energy_curve_keys(self):
        curve = fig5.energy_curve()
        assert "Baseline" in curve
        assert "INT4/gs=1" in curve
        assert len(curve) == 13

    def test_energy_ordering(self):
        curve = fig5.energy_curve()
        assert curve["INT4/gs=2"] < curve["INT6/gs=2"] < curve["INT8/gs=2"] < 1.0


class TestTable2:
    def test_keys(self):
        results = table2.run()
        assert "RAE" in results
        assert "overhead_percent" in results

    def test_paper_magnitudes(self):
        results = table2.run()
        for key, paper in table2.PAPER_VALUES.items():
            measured = results[key]
            assert 0.3 * paper < measured < 3 * paper, key

    def test_format_contains_paper_column(self):
        assert "1,873,408" in table2.format_table(table2.run())


class TestTable4:
    def test_structure(self):
        results = table4.run()
        assert set(results) == {"IS", "WS"}
        assert results["WS"]["gs=1"] == 1.0

    def test_paper_shape(self):
        results = table4.run()
        assert results["WS"]["Baseline"] > 10
        assert 1.0 <= results["IS"]["Baseline"] < 1.2
        assert results["WS"]["gs=3"] > 3

    def test_short_sequence_smaller_ratio(self):
        # With a short sequence the prefill PSUMs fit: baseline ratio shrinks.
        short = table4.run(seq_len=512)
        long = table4.run(seq_len=4096)
        assert short["WS"]["Baseline"] < long["WS"]["Baseline"]

    def test_format(self):
        text = table4.format_table(table4.run())
        assert "(paper)" in text
