"""Tests for terminal charts and the CLI entry point."""

import pytest

from repro.__main__ import cmd_info, cmd_list, main
from repro.experiments.charts import bar, bar_chart, stacked_shares


class TestBar:
    def test_full_bar(self):
        assert bar(1.0, 1.0, width=4) == "████"

    def test_half_bar(self):
        assert bar(0.5, 1.0, width=4) == "██"

    def test_zero(self):
        assert bar(0.0, 1.0, width=4) == ""

    def test_partial_blocks(self):
        out = bar(0.51, 1.0, width=4)
        assert out.startswith("██")
        assert len(out) <= 4 + 1

    def test_clamps_over_peak(self):
        assert bar(2.0, 1.0, width=4) == "████"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bar(1.0, 1.0, width=0)

    def test_zero_peak(self):
        assert bar(1.0, 0.0) == ""


class TestBarChart:
    def test_labels_and_values(self):
        text = bar_chart({"IS": 0.7, "WS": 0.5})
        assert "IS" in text
        assert "0.700" in text

    def test_rows(self):
        text = bar_chart({"a": 1.0, "b": 0.1, "c": 0.5})
        assert len(text.splitlines()) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_explicit_peak(self):
        text = bar_chart({"x": 0.5}, width=4, peak=0.5)
        assert "████" in text


class TestStackedShares:
    def test_legend_and_rows(self):
        rows = {"WS/32": {"psum": 0.7, "weight": 0.3}}
        text = stacked_shares(rows, ["psum", "weight"], width=10)
        assert "legend" in text
        assert "p" in text.splitlines()[1]

    def test_share_proportions(self):
        rows = {"r": {"a": 3.0, "b": 1.0}}
        line = stacked_shares(rows, ["a", "b"], width=8).splitlines()[1]
        assert line.count("a") == 6
        assert line.count("b") == 2

    def test_empty_row(self):
        text = stacked_shares({"r": {}}, ["a"], width=4)
        assert "(empty)" in text


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig6" in out
        assert "smoke" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Po=16" in out
        assert "APSQ" in out

    def test_run_analytical(self, capsys):
        assert main(["run", "table4"]) == 0
        assert "LLaMA2-7B" in capsys.readouterr().out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        assert "psum" in capsys.readouterr().out

    def test_unknown_artefact(self):
        with pytest.raises(SystemExit):
            main(["run", "table9"])

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2

    def test_helpers_directly(self):
        assert "profiles" in cmd_list()
        assert "accelerator" in cmd_info()
