"""Tests for experiment profiles and the metric cache."""

import numpy as np
import pytest

from repro.experiments import PROFILES, cache, get_profile, method_config
from repro.quant import PsumMode


class TestProfiles:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "fast"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert get_profile().name == "smoke"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert get_profile("full").name == "full"

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("ludicrous")

    def test_effort_ordering(self):
        smoke, fast, full = PROFILES["smoke"], PROFILES["fast"], PROFILES["full"]
        assert smoke.bert_train < fast.bert_train <= full.bert_train
        assert smoke.bert_qat_epochs <= fast.bert_qat_epochs <= full.bert_qat_epochs


class TestMethodConfig:
    def test_baseline(self):
        cfg = method_config("Baseline")
        assert cfg.mode is PsumMode.BASELINE

    @pytest.mark.parametrize("gs", [1, 2, 3, 4])
    def test_gs_methods(self, gs):
        cfg = method_config(f"gs={gs}")
        assert cfg.mode is PsumMode.APSQ
        assert cfg.gs == gs

    def test_psum_bits_forwarded(self):
        assert method_config("gs=2", psum_bits=4).psum_spec.bits == 4

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            method_config("gs=five")


class TestCache:
    @pytest.fixture(autouse=True)
    def _tmp_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_CACHE", "1")

    def test_roundtrip(self):
        cache.store("exp/task/method", 0.75)
        assert cache.load("exp/task/method") == 0.75

    def test_miss_returns_none(self):
        assert cache.load("never/stored") is None

    def test_cached_computes_once(self):
        calls = []

        def compute():
            calls.append(1)
            return 0.5

        assert cache.cached("k", compute) == 0.5
        assert cache.cached("k", compute) == 0.5
        assert len(calls) == 1

    def test_disabled_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache.store("k2", 1.0)
        assert cache.load("k2") is None

    def test_corrupt_entry_ignored(self):
        cache.store("k3", 1.0)
        path = cache._path("k3")
        path.write_text("{not json")
        assert cache.load("k3") is None

    def test_zero_value_roundtrip(self):
        """0.0 is a legitimate metric and must not read as a miss."""
        cache.store("zero", 0.0)
        assert cache.load("zero") == 0.0
