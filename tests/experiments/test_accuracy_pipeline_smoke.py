"""Smoke tests for the accuracy-experiment pipeline (tiny splits/epochs).

These validate wiring — teacher pretraining, quantization surgery per
method, QAT with distillation, evaluation, caching — not final numbers
(the benchmarks do that at the fast/full profiles).
"""

import pytest

from repro.experiments import (
    PROFILES,
    evaluate_zcsr,
    pretrain_llama,
    quantized_llama,
    run_glue_task,
    run_segmentation,
    table1,
    table3,
)

SMOKE = PROFILES["smoke"]


@pytest.fixture(autouse=True)
def _tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestGluePipeline:
    def test_two_methods_run(self):
        results = run_glue_task("QNLI", SMOKE, methods=["Baseline", "gs=2"])
        assert set(results) == {"Baseline", "gs=2"}
        for value in results.values():
            assert 0.0 <= value <= 1.0

    def test_regression_task(self):
        results = run_glue_task("STS-B", SMOKE, methods=["gs=2"])
        assert -1.0 <= results["gs=2"] <= 1.0

    def test_matthews_task(self):
        results = run_glue_task("CoLA", SMOKE, methods=["Baseline"])
        assert -1.0 <= results["Baseline"] <= 1.0


class TestSegmentationPipeline:
    @pytest.mark.parametrize("arch", ["segformer", "efficientvit"])
    def test_arch_runs(self, arch):
        results = run_segmentation(arch, SMOKE, methods=["gs=2"])
        assert 0.0 <= results["gs=2"] <= 1.0

    def test_unknown_arch(self):
        with pytest.raises(KeyError):
            run_segmentation("vit-22b", SMOKE)


class TestLlamaPipeline:
    def test_pretrain_quantize_evaluate(self):
        teacher = pretrain_llama(SMOKE)
        student = quantized_llama(teacher, "gs=2", SMOKE)
        scores = evaluate_zcsr(student, ["BoolQ"], max_examples=SMOKE.zcsr_examples)
        assert 0.0 <= scores["BoolQ"] <= 1.0


class TestTableRunners:
    def test_table1_subset_and_cache(self):
        rows = table1.run(
            profile=SMOKE, glue_tasks=["QNLI"], include_segmentation=False,
            methods=["Baseline", "gs=2"],
        )
        assert "BERT QNLI" in rows
        # Second call must be a pure cache read (fast) with equal values.
        again = table1.run(
            profile=SMOKE, glue_tasks=["QNLI"], include_segmentation=False,
            methods=["Baseline", "gs=2"],
        )
        assert again == rows

    def test_table1_summarize(self):
        rows = {"r": {"Baseline": 0.9, "gs=1": 0.8, "gs=2": 0.88}}
        summary = table1.summarize(rows)
        assert summary["mean_drop_best_gs"] == pytest.approx(0.02)

    def test_table3_subset(self):
        rows = table3.run(profile=SMOKE, methods=["gs=2"], task_names=["BoolQ"])
        assert 0.0 <= rows["BoolQ"]["gs=2"] <= 1.0

    def test_table3_summarize(self):
        rows = {"t": {"Baseline": 0.8, "gs=1": 0.7, "gs=4": 0.79}}
        assert table3.summarize(rows) == pytest.approx(0.01)
