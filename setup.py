"""Legacy setup shim for offline editable installs (see pyproject.toml note)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
