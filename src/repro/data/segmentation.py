"""Synthetic ADE20K-like semantic segmentation dataset.

Images contain geometric objects (axis-aligned rectangles and discs) of
``num_classes - 1`` foreground classes over a textured background; each
class has a characteristic colour.  Masks are produced at *half* the image
resolution, matching the output stride of :class:`~repro.models.SegformerTiny`
and :class:`~repro.models.EfficientViTTiny`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import mean_iou
from .task import TaskData

# Per-class mean colours (RGB) — distinct but noisy enough to need context.
_CLASS_COLORS = np.array(
    [
        [0.2, 0.2, 0.2],  # background
        [0.9, 0.2, 0.1],
        [0.1, 0.8, 0.2],
        [0.15, 0.25, 0.9],
        [0.85, 0.8, 0.1],
        [0.7, 0.15, 0.8],
    ]
)


@dataclass(frozen=True)
class SegmentationSpec:
    """Generator settings for the synthetic segmentation dataset."""

    name: str = "ADE20K-synth"
    image_size: int = 32
    num_classes: int = 5  # background + 4 object classes
    objects_per_image: int = 3
    color_noise: float = 0.25
    n_train: int = 96
    n_eval: int = 48
    seed: int = 7


def _draw_object(
    rng: np.random.Generator, mask: np.ndarray, cls: int, size: int
) -> None:
    kind = rng.integers(0, 2)
    h = w = size
    if kind == 0:  # rectangle
        rh, rw = int(rng.integers(6, 14)), int(rng.integers(6, 14))
        top = int(rng.integers(0, h - rh))
        left = int(rng.integers(0, w - rw))
        mask[top : top + rh, left : left + rw] = cls
    else:  # disc
        radius = int(rng.integers(3, 7))
        cy = int(rng.integers(radius, h - radius))
        cx = int(rng.integers(radius, w - radius))
        yy, xx = np.ogrid[:h, :w]
        mask[(yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2] = cls


def make_segmentation_task(spec: SegmentationSpec = SegmentationSpec()) -> TaskData:
    """Generate the synthetic segmentation dataset (deterministic per spec)."""
    rng = np.random.default_rng(spec.seed)
    size = spec.image_size

    def build(n: int):
        images = np.empty((n, 3, size, size))
        masks = np.empty((n, size // 2, size // 2), dtype=np.int64)
        for i in range(n):
            mask = np.zeros((size, size), dtype=np.int64)
            for _ in range(spec.objects_per_image):
                cls = int(rng.integers(1, spec.num_classes))
                _draw_object(rng, mask, cls, size)
            colors = _CLASS_COLORS[mask]  # (H, W, 3)
            noise = rng.normal(0.0, spec.color_noise, size=colors.shape)
            images[i] = (colors + noise).transpose(2, 0, 1)
            # Half-resolution labels: majority is approximated by the
            # top-left sample of each 2x2 block (exact for blocky shapes).
            masks[i] = mask[::2, ::2]
        return images, masks

    train_x, train_y = build(spec.n_train)
    eval_x, eval_y = build(spec.n_eval)
    return TaskData(
        name=spec.name,
        train_x=train_x,
        train_y=train_y,
        eval_x=eval_x,
        eval_y=eval_y,
        num_classes=spec.num_classes,
        metric_name="miou",
        metric_fn=lambda out, tgt: mean_iou(out, tgt, num_classes=spec.num_classes),
        extra={"image_size": spec.image_size},
    )
