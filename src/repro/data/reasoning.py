"""Synthetic zero-shot commonsense-reasoning (ZCSR) suite for the LLM
experiments (Table III substitute).

A tiny "language" is defined by a noisy affine Markov chain over the
vocabulary: ``next = (a·cur + b) mod V`` with probability ``1 - eps``,
uniform otherwise.  The LLaMA model is pre-trained as a causal LM on chain
samples; each reasoning task is then *zero-shot* multiple choice — score
each candidate continuation by conditional log-likelihood
(:meth:`LlamaTiny.sequence_logprob`) and pick the best, exactly the
lm-eval-harness protocol the paper uses [29].

Task difficulty is controlled by the chain noise during *candidate
generation* and the number of choices, yielding a spread of baseline
accuracies comparable to the paper's seven tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

VOCAB_SIZE = 32
CHAIN_A, CHAIN_B = 5, 3  # multiplier coprime with VOCAB_SIZE -> full cycle


@dataclass(frozen=True)
class ZcsrTaskSpec:
    """Settings for one synthetic reasoning task.

    ``distractor`` controls how hard wrong choices are to reject:

    - ``"random"`` — uniform random tokens (easy: every transition is wrong)
    - ``"shifted"`` — a valid chain started from the wrong predecessor
      (hard: only the first transition betrays it)
    - ``"corrupt"`` — the correct continuation with one position replaced
      (medium)
    """

    name: str
    num_choices: int
    context_len: int
    completion_len: int
    chain_eps: float  # noise in the *correct* continuation
    distractor: str = "random"
    n_examples: int = 128
    seed: int = 0


# Difficulty ordering mirrors the paper's baseline spread: BoolQ/PIQA easy,
# Arc-c / OBQA hard (shifted distractors + noisier continuations).
ZCSR_TASK_SPECS: Dict[str, ZcsrTaskSpec] = {
    "BoolQ": ZcsrTaskSpec("BoolQ", 2, 8, 3, 0.15, "corrupt", seed=201),
    "PIQA": ZcsrTaskSpec("PIQA", 2, 8, 3, 0.12, "corrupt", seed=202),
    "HellaSwag": ZcsrTaskSpec("HellaSwag", 4, 8, 3, 0.15, "corrupt", seed=203),
    "WinoGrande": ZcsrTaskSpec("WinoGrande", 2, 6, 2, 0.25, "shifted", seed=204),
    "Arc-e": ZcsrTaskSpec("Arc-e", 4, 8, 3, 0.15, "corrupt", seed=205),
    "Arc-c": ZcsrTaskSpec("Arc-c", 4, 6, 2, 0.35, "shifted", seed=206),
    "OBQA": ZcsrTaskSpec("OBQA", 4, 6, 2, 0.40, "shifted", seed=207),
}

ZCSR_TASK_NAMES: Tuple[str, ...] = tuple(ZCSR_TASK_SPECS)


def chain_step(token: np.ndarray) -> np.ndarray:
    """Deterministic next token of the synthetic language."""
    return (CHAIN_A * token + CHAIN_B) % VOCAB_SIZE


def sample_chain(
    rng: np.random.Generator, length: int, batch: int, eps: float = 0.05
) -> np.ndarray:
    """Sample (batch, length) sequences from the noisy chain."""
    seqs = np.empty((batch, length), dtype=np.int64)
    seqs[:, 0] = rng.integers(0, VOCAB_SIZE, size=batch)
    for t in range(1, length):
        nxt = chain_step(seqs[:, t - 1])
        noise = rng.random(batch) < eps
        random_tokens = rng.integers(0, VOCAB_SIZE, size=batch)
        seqs[:, t] = np.where(noise, random_tokens, nxt)
    return seqs


def make_lm_corpus(
    n_sequences: int = 384, seq_len: int = 20, eps: float = 0.05, seed: int = 42
) -> Tuple[np.ndarray, np.ndarray]:
    """Pre-training corpus: inputs and next-token targets for the causal LM."""
    rng = np.random.default_rng(seed)
    seqs = sample_chain(rng, seq_len + 1, n_sequences, eps=eps)
    return seqs[:, :-1], seqs[:, 1:]


@dataclass
class ZcsrExample:
    """One multiple-choice example: shared context, candidate completions."""

    context: np.ndarray  # (context_len,)
    choices: np.ndarray  # (num_choices, completion_len)
    answer: int


@dataclass
class ZcsrTask:
    """A full zero-shot task: examples + helpers to score a model."""

    name: str
    spec: ZcsrTaskSpec
    examples: List[ZcsrExample]

    def evaluate(self, model) -> float:
        """Accuracy of likelihood-ranked choices under ``model``.

        ``model`` must expose ``sequence_logprob(tokens, prefix_len)``.
        """
        correct = 0
        for ex in self.examples:
            num_choices = len(ex.choices)
            tokens = np.concatenate(
                [
                    np.broadcast_to(ex.context, (num_choices, len(ex.context))),
                    ex.choices,
                ],
                axis=1,
            )
            scores = model.sequence_logprob(tokens, prefix_len=len(ex.context))
            if int(scores.argmax()) == ex.answer:
                correct += 1
        return correct / len(self.examples)


def make_zcsr_task(name: str) -> ZcsrTask:
    """Generate one reasoning task (deterministic per name)."""
    if name not in ZCSR_TASK_SPECS:
        raise KeyError(f"unknown ZCSR task {name!r}; options: {sorted(ZCSR_TASK_SPECS)}")
    spec = ZCSR_TASK_SPECS[name]
    rng = np.random.default_rng(spec.seed)
    examples: List[ZcsrExample] = []
    for _ in range(spec.n_examples):
        context = sample_chain(rng, spec.context_len, 1, eps=0.0)[0]
        # Correct choice: continue the chain (with task-specific noise).
        correct = np.empty(spec.completion_len, dtype=np.int64)
        prev = context[-1]
        for t in range(spec.completion_len):
            nxt = chain_step(np.asarray(prev))
            if rng.random() < spec.chain_eps:
                nxt = rng.integers(0, VOCAB_SIZE)
            correct[t] = nxt
            prev = correct[t]
        # Distractors: wrong continuations of task-specific plausibility.
        choices = [correct]
        while len(choices) < spec.num_choices:
            if spec.distractor == "shifted":
                # Valid chain from a wrong predecessor: only the first
                # transition is inconsistent with the context.
                start = int(rng.integers(0, VOCAB_SIZE))
                if chain_step(np.asarray(context[-1])) == chain_step(np.asarray(start)):
                    continue
                cand = np.empty(spec.completion_len, dtype=np.int64)
                prev = start
                for t in range(spec.completion_len):
                    prev = int(chain_step(np.asarray(prev)))
                    cand[t] = prev
            elif spec.distractor == "corrupt":
                cand = correct.copy()
                pos = int(rng.integers(spec.completion_len))
                cand[pos] = int(rng.integers(0, VOCAB_SIZE))
            else:
                cand = rng.integers(0, VOCAB_SIZE, size=spec.completion_len)
            if not any(np.array_equal(cand, c) for c in choices):
                choices.append(cand)
        order = rng.permutation(spec.num_choices)
        choices_arr = np.stack(choices)[order]
        answer = int(np.where(order == 0)[0][0])
        examples.append(ZcsrExample(context=context, choices=choices_arr, answer=answer))
    return ZcsrTask(name=name, spec=spec, examples=examples)


def all_zcsr_tasks() -> Dict[str, ZcsrTask]:
    """The full seven-task suite of Table III."""
    return {name: make_zcsr_task(name) for name in ZCSR_TASK_NAMES}
