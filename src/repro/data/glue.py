"""Synthetic GLUE suite (substitute for the real benchmark — see DESIGN.md).

The real GLUE tasks cannot be downloaded in this offline environment, so
each task is replaced by a seeded generator producing the same *kind* of
problem with a controllable difficulty:

- Pair tasks (QNLI, RTE, MRPC, MNLI): two token segments separated by SEP;
  the label depends on whether (and which) key token is shared between the
  segments — solved by cross-segment attention.  Keys are written at two
  positions per segment so the signal is robust at tiny model scale.
- CoLA: single-segment acceptability — an ascending key run is intact (1)
  or permuted (0) — scored with Matthews correlation.
- STS-B: regression on the fraction of shared key slots (a similarity
  score in [0, 5]), scored with Pearson correlation.

A per-task ``label_noise`` flips that fraction of labels in *both* splits,
capping achievable accuracy below 100% so the Baseline-vs-APSQ
comparisons live on a realistic scale (mirroring the paper's task spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .metrics import accuracy, matthews_corr, pearson_corr
from .task import TaskData

# Token-id layout within the vocabulary.
PAD, CLS, SEP = 0, 1, 2
KEY_BASE = 3  # key tokens: [KEY_BASE, KEY_BASE + NUM_KEYS)
NUM_KEYS = 8
NUM_PAIR_KEYS = 4  # pair tasks draw from the first four keys
NOISE_BASE = KEY_BASE + NUM_KEYS

VOCAB_SIZE = 64
SEQ_LEN = 16


@dataclass(frozen=True)
class GlueTaskSpec:
    """Generator settings for one synthetic GLUE task."""

    name: str
    num_classes: int
    metric_name: str
    label_noise: float
    regression: bool = False
    pair: bool = True
    n_train: int = 512
    n_eval: int = 256
    seed: int = 0


TASK_SPECS: Dict[str, GlueTaskSpec] = {
    # label_noise shapes the per-task ceiling so the suite spreads out the
    # way Table I's baselines do (QNLI easiest ... RTE/CoLA hardest).
    "QNLI": GlueTaskSpec("QNLI", 2, "accuracy", label_noise=0.06, seed=101),
    "MNLI": GlueTaskSpec("MNLI", 3, "accuracy", label_noise=0.10, seed=102),
    "RTE": GlueTaskSpec("RTE", 2, "accuracy", label_noise=0.22, seed=103, n_train=384),
    "STS-B": GlueTaskSpec("STS-B", 1, "pearson", label_noise=0.0, regression=True, seed=104),
    "MRPC": GlueTaskSpec("MRPC", 2, "accuracy", label_noise=0.10, seed=105),
    "CoLA": GlueTaskSpec("CoLA", 2, "matthews", label_noise=0.18, pair=False, seed=106),
}

GLUE_TASK_NAMES: Tuple[str, ...] = tuple(TASK_SPECS)

_METRICS = {
    "accuracy": accuracy,
    "matthews": matthews_corr,
    "pearson": pearson_corr,
}

_HALF = (SEQ_LEN - 2) // 2


def _noise_tokens(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(NOISE_BASE, VOCAB_SIZE, size=n)


def _plant(segment: np.ndarray, rng: np.random.Generator, token: int) -> None:
    """Write ``token`` at two distinct random positions of ``segment``."""
    pos = rng.choice(len(segment), size=2, replace=False)
    segment[pos] = token


def _assemble_pair(seg1: np.ndarray, seg2: np.ndarray) -> np.ndarray:
    seq = np.empty(SEQ_LEN, dtype=np.int64)
    seq[0] = CLS
    seq[1 : 1 + _HALF] = seg1
    seq[1 + _HALF] = SEP
    seq[2 + _HALF :] = seg2
    return seq


def _make_pair_example(
    rng: np.random.Generator, num_classes: int
) -> Tuple[np.ndarray, int]:
    """Cross-segment key relation encodes the class.

    Binary: label 1 = segments share a key, 0 = different keys.
    Three-way (MNLI): 0 = different keys, 1 = shared key from the first
    bucket, 2 = shared key from the second bucket.
    """
    seg1 = _noise_tokens(rng, _HALF)
    seg2 = _noise_tokens(rng, SEQ_LEN - 2 - _HALF)
    label = int(rng.integers(0, num_classes))
    if label == 0:
        k1, k2 = rng.choice(NUM_PAIR_KEYS, size=2, replace=False)
        _plant(seg1, rng, KEY_BASE + int(k1))
        _plant(seg2, rng, KEY_BASE + int(k2))
    else:
        bucket = NUM_PAIR_KEYS // max(num_classes - 1, 1)
        key = KEY_BASE + (label - 1) * bucket + int(rng.integers(bucket))
        _plant(seg1, rng, key)
        _plant(seg2, rng, key)
    return _assemble_pair(seg1, seg2), label


def _make_cola_example(rng: np.random.Generator) -> Tuple[np.ndarray, int]:
    """Acceptability: unacceptable sequences carry a violation-marker key.

    Acceptable sequences (label 1) contain only keys from the first half of
    the key range; unacceptable ones (label 0) additionally carry a single
    "violation" key from the second half — a local marker the model must
    spot anywhere in the sentence, the way agreement violations work.
    """
    seq = np.empty(SEQ_LEN, dtype=np.int64)
    seq[0] = CLS
    body = _noise_tokens(rng, SEQ_LEN - 1)
    good_key = KEY_BASE + int(rng.integers(NUM_KEYS // 2))
    _plant(body, rng, good_key)
    label = int(rng.integers(0, 2))
    if label == 0:
        violation = KEY_BASE + NUM_KEYS // 2 + int(rng.integers(NUM_KEYS // 2))
        body[rng.integers(len(body))] = violation
    seq[1:] = body
    return seq, label


def _make_stsb_example(rng: np.random.Generator) -> Tuple[np.ndarray, float]:
    """Similarity regression: score = 5 · (shared key slots / 4).

    Segment 1 carries keys 0-3 (shuffled); segment 2 repeats ``shared`` of
    them and replaces the rest with keys 4-7.
    """
    seg1 = _noise_tokens(rng, _HALF)
    seg2 = _noise_tokens(rng, SEQ_LEN - 2 - _HALF)
    shared = int(rng.integers(0, 5))
    slots = rng.permutation(4)
    pos1 = rng.choice(_HALF, size=4, replace=False)
    pos2 = rng.choice(len(seg2), size=4, replace=False)
    for i, slot in enumerate(slots):
        seg1[pos1[i]] = KEY_BASE + slot
        seg2[pos2[i]] = KEY_BASE + slot if i < shared else KEY_BASE + 4 + slot
    return _assemble_pair(seg1, seg2), 5.0 * shared / 4.0


def make_glue_task(name: str, n_train: int = 0, n_eval: int = 0) -> TaskData:
    """Generate one synthetic GLUE task (deterministic per task name).

    ``n_train``/``n_eval`` override the spec's split sizes when positive
    (used by the fast test profile).
    """
    if name not in TASK_SPECS:
        raise KeyError(f"unknown GLUE task {name!r}; options: {sorted(TASK_SPECS)}")
    spec = TASK_SPECS[name]
    rng = np.random.default_rng(spec.seed)

    def build(n: int):
        xs: List[np.ndarray] = []
        ys: List[float] = []
        for _ in range(n):
            if spec.regression:
                x, y = _make_stsb_example(rng)
            elif not spec.pair:
                x, y = _make_cola_example(rng)
            else:
                x, y = _make_pair_example(rng, spec.num_classes)
            xs.append(x)
            ys.append(y)
        x_arr = np.stack(xs)
        y_arr = np.asarray(ys, dtype=float if spec.regression else np.int64)
        if spec.label_noise > 0 and not spec.regression:
            flip = rng.random(n) < spec.label_noise
            noise_labels = rng.integers(0, spec.num_classes, size=n)
            y_arr = np.where(flip, noise_labels, y_arr)
        return x_arr, y_arr

    train_x, train_y = build(n_train or spec.n_train)
    eval_x, eval_y = build(n_eval or spec.n_eval)
    return TaskData(
        name=name,
        train_x=train_x,
        train_y=train_y,
        eval_x=eval_x,
        eval_y=eval_y,
        num_classes=spec.num_classes,
        metric_name=spec.metric_name,
        metric_fn=_METRICS[spec.metric_name],
        regression=spec.regression,
        extra={"vocab_size": VOCAB_SIZE, "seq_len": SEQ_LEN},
    )


def all_glue_tasks() -> Dict[str, TaskData]:
    """The full six-task suite of Table I."""
    return {name: make_glue_task(name) for name in GLUE_TASK_NAMES}
