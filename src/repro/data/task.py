"""Common task container shared by the GLUE / segmentation / ZCSR suites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

MetricFn = Callable[[np.ndarray, np.ndarray], float]


@dataclass
class TaskData:
    """A self-contained supervised task: data splits + metric.

    ``metric_fn(model_outputs, targets)`` returns the headline number the
    paper reports for the task (accuracy, Matthews, Pearson or mIoU).
    """

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    eval_x: np.ndarray
    eval_y: np.ndarray
    num_classes: int
    metric_name: str
    metric_fn: MetricFn
    regression: bool = False
    extra: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.train_x) != len(self.train_y):
            raise ValueError("train split size mismatch")
        if len(self.eval_x) != len(self.eval_y):
            raise ValueError("eval split size mismatch")

    @property
    def sizes(self) -> Dict[str, int]:
        return {"train": len(self.train_x), "eval": len(self.eval_x)}
