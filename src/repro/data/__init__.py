"""Synthetic datasets and metrics replacing GLUE / ADE20K / ZCSR offline."""

from .glue import (
    GLUE_TASK_NAMES,
    SEQ_LEN,
    TASK_SPECS,
    VOCAB_SIZE,
    all_glue_tasks,
    make_glue_task,
)
from .metrics import (
    accuracy,
    f1_binary,
    matthews_corr,
    mean_iou,
    pearson_corr,
    spearman_corr,
)
from .reasoning import (
    ZCSR_TASK_NAMES,
    ZCSR_TASK_SPECS,
    ZcsrExample,
    ZcsrTask,
    all_zcsr_tasks,
    chain_step,
    make_lm_corpus,
    make_zcsr_task,
    sample_chain,
)
from .segmentation import SegmentationSpec, make_segmentation_task
from .task import TaskData

__all__ = [
    "TaskData",
    "make_glue_task",
    "all_glue_tasks",
    "GLUE_TASK_NAMES",
    "TASK_SPECS",
    "VOCAB_SIZE",
    "SEQ_LEN",
    "make_segmentation_task",
    "SegmentationSpec",
    "make_zcsr_task",
    "all_zcsr_tasks",
    "make_lm_corpus",
    "sample_chain",
    "chain_step",
    "ZcsrTask",
    "ZcsrExample",
    "ZCSR_TASK_NAMES",
    "ZCSR_TASK_SPECS",
    "accuracy",
    "f1_binary",
    "matthews_corr",
    "pearson_corr",
    "spearman_corr",
    "mean_iou",
]
