"""Task metrics matching the paper's evaluation protocols.

GLUE tasks use accuracy (QNLI/MNLI/RTE/MRPC), Matthews correlation (CoLA)
and Pearson correlation (STS-B); segmentation uses mean IoU; the ZCSR
suite uses multiple-choice accuracy.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def accuracy(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy; ``outputs`` are logits (..., C) or labels."""
    preds = outputs.argmax(axis=-1) if outputs.ndim > targets.ndim else outputs
    return float((preds == targets).mean())


def f1_binary(outputs: np.ndarray, targets: np.ndarray) -> float:
    """F1 of the positive class for binary tasks (MRPC's second metric)."""
    preds = outputs.argmax(axis=-1) if outputs.ndim > targets.ndim else outputs
    tp = float(((preds == 1) & (targets == 1)).sum())
    fp = float(((preds == 1) & (targets == 0)).sum())
    fn = float(((preds == 0) & (targets == 1)).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def matthews_corr(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Matthews correlation coefficient (CoLA)."""
    preds = outputs.argmax(axis=-1) if outputs.ndim > targets.ndim else outputs
    tp = float(((preds == 1) & (targets == 1)).sum())
    tn = float(((preds == 0) & (targets == 0)).sum())
    fp = float(((preds == 1) & (targets == 0)).sum())
    fn = float(((preds == 0) & (targets == 1)).sum())
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0:
        return 0.0
    return float((tp * tn - fp * fn) / denom)


def pearson_corr(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Pearson correlation (STS-B)."""
    outputs = outputs.reshape(-1)
    if np.std(outputs) == 0 or np.std(targets) == 0:
        return 0.0
    return float(stats.pearsonr(outputs, targets)[0])


def spearman_corr(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Spearman rank correlation (STS-B's second metric)."""
    outputs = outputs.reshape(-1)
    if np.std(outputs) == 0 or np.std(targets) == 0:
        return 0.0
    return float(stats.spearmanr(outputs, targets)[0])


def mean_iou(outputs: np.ndarray, targets: np.ndarray, num_classes: int = 0) -> float:
    """Mean intersection-over-union (ADE20K metric).

    ``outputs`` are logits (..., C) or label maps; classes absent from both
    prediction and target are excluded from the mean, as in mmseg.
    """
    if num_classes == 0:
        num_classes = int(outputs.shape[-1]) if outputs.ndim > targets.ndim else int(targets.max()) + 1
    preds = outputs.argmax(axis=-1) if outputs.ndim > targets.ndim else outputs
    ious = []
    for cls in range(num_classes):
        pred_mask = preds == cls
        target_mask = targets == cls
        union = float((pred_mask | target_mask).sum())
        if union == 0:
            continue
        intersection = float((pred_mask & target_mask).sum())
        ious.append(intersection / union)
    return float(np.mean(ious)) if ious else 0.0
