"""Global autograd state: gradient enable/disable and graph bookkeeping.

The engine is reverse-mode automatic differentiation over numpy arrays.
Gradient recording can be suspended with :func:`no_grad`, mirroring the
familiar ``torch.no_grad()`` idiom::

    with no_grad():
        logits = model(x)   # no graph is built
"""

from __future__ import annotations

import contextlib
from typing import Iterator

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return True when operations record the autograd graph."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable autograd recording."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction inside its body."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables graph construction inside its body."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = prev
