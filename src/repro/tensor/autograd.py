"""Autograd state: gradient enable/disable and graph bookkeeping.

The engine is reverse-mode automatic differentiation over numpy arrays.
Gradient recording can be suspended with :func:`no_grad`, mirroring the
familiar ``torch.no_grad()`` idiom::

    with no_grad():
        logits = model(x)   # no graph is built

Grad mode is **thread-local** (as in PyTorch): each thread starts with
recording enabled and ``no_grad``/``enable_grad`` only affect the thread
that entered them.  A process-global flag would race under the serving
layer's worker threads — two overlapping ``no_grad`` contexts could
save/restore each other's state and leave recording disabled for the
whole process.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator


class _GradMode(threading.local):
    enabled = True  # class attribute = per-thread default


_MODE = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations record the autograd graph (this thread)."""
    return _MODE.enabled


def set_grad_enabled(mode: bool) -> None:
    """Enable or disable autograd recording for the current thread."""
    _MODE.enabled = bool(mode)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction inside its body."""
    prev = _MODE.enabled
    _MODE.enabled = False
    try:
        yield
    finally:
        _MODE.enabled = prev


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables graph construction inside its body."""
    prev = _MODE.enabled
    _MODE.enabled = True
    try:
        yield
    finally:
        _MODE.enabled = prev
