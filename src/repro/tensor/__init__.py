"""Numpy-backed reverse-mode autograd engine.

This subpackage is the substrate on which the whole APSQ reproduction is
built: a :class:`Tensor` with broadcasting arithmetic and hand-written
backward rules, activation functions, seeded randomness and a numerical
gradient checker.
"""

from .autograd import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from .functional import erf, gelu, log_softmax, relu, silu, softmax
from .gradcheck import gradcheck, numerical_grad
from .ops import (
    avg_pool2d,
    concat,
    embedding_lookup,
    im2col,
    maximum,
    minimum,
    pad2d,
    split,
    stack,
    tril_mask,
    upsample_nearest,
    where,
)
from .random import get_generator, manual_seed
from .tensor import (
    Tensor,
    as_tensor,
    default_dtype,
    make_op,
    set_default_dtype,
    unbroadcast,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "make_op",
    "unbroadcast",
    "default_dtype",
    "set_default_dtype",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "softmax",
    "log_softmax",
    "gelu",
    "silu",
    "relu",
    "erf",
    "concat",
    "stack",
    "split",
    "where",
    "maximum",
    "minimum",
    "pad2d",
    "im2col",
    "upsample_nearest",
    "avg_pool2d",
    "embedding_lookup",
    "tril_mask",
    "manual_seed",
    "get_generator",
    "gradcheck",
    "numerical_grad",
]
