"""Numerical gradient checking for tests.

``gradcheck`` compares analytic gradients produced by the autograd engine
against central finite differences.  Used extensively by the test suite to
validate every primitive op and the custom STE quantizer gradients (where a
reference gradient function is supplied instead, since STE gradients are
deliberately *not* the true derivative).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn(*inputs).sum().data)
        flat[i] = orig - eps
        minus = float(fn(*inputs).sum().data)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic vs numerical gradients for all inputs requiring grad.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in inputs:
        t.grad = None
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_grad(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            diff = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs diff {diff:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
