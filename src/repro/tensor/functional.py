"""Differentiable activation and normalisation functions."""

from __future__ import annotations

import numpy as np
from scipy import special

from .tensor import Tensor, make_op


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - dot),)

    return make_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp

    def backward(g: np.ndarray):
        softmax_val = np.exp(out_data)
        return (g - softmax_val * g.sum(axis=axis, keepdims=True),)

    return make_op(out_data, (x,), backward)


def erf(x: Tensor) -> Tensor:
    """Gauss error function."""
    out_data = special.erf(x.data)

    def backward(g: np.ndarray):
        return (g * 2.0 / np.sqrt(np.pi) * np.exp(-x.data**2),)

    return make_op(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Exact (erf-based) GELU, as used in BERT/Segformer FFNs."""
    cdf = 0.5 * (1.0 + special.erf(x.data / np.sqrt(2.0)))
    out_data = x.data * cdf

    def backward(g: np.ndarray):
        pdf = np.exp(-0.5 * x.data**2) / np.sqrt(2.0 * np.pi)
        return (g * (cdf + x.data * pdf),)

    return make_op(out_data, (x,), backward)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation, used in LLaMA's SwiGLU FFN."""
    sig = 1.0 / (1.0 + np.exp(-x.data))
    out_data = x.data * sig

    def backward(g: np.ndarray):
        return (g * (sig + x.data * sig * (1.0 - sig)),)

    return make_op(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (also the feature map of linear attention)."""
    return x.relu()
