"""Differentiable activation and normalisation functions."""

from __future__ import annotations

import numpy as np
from scipy import special

from .tensor import Tensor, make_op


def softmax(x: Tensor, axis: int = -1, pad_invariant: bool = False) -> Tensor:
    """Numerically stable softmax along ``axis``.

    ``pad_invariant=True`` computes the denominator with a strict
    left-to-right scan (``cumsum``) instead of ``np.sum``'s pairwise
    tree.  Appending ``-inf``-masked entries to a row then contributes
    exact ``+0.0`` terms to an unchanged prefix fold, so the softmax of a
    row is bit-identical no matter how much masked tail padding follows
    it.  ``np.sum`` does *not* have this property: its pairwise summation
    regroups the real terms when the axis length crosses an unroll
    threshold.  Causal attention uses this mode so that right-padded
    sequences reproduce the unpadded bits exactly (the bucketed-coalescing
    invariant of :mod:`repro.serve`).
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    if pad_invariant:
        denom = np.cumsum(exp, axis=axis).take([-1], axis=axis)
    else:
        denom = exp.sum(axis=axis, keepdims=True)
    out_data = exp / denom

    def backward(g: np.ndarray):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - dot),)

    return make_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp

    def backward(g: np.ndarray):
        softmax_val = np.exp(out_data)
        return (g - softmax_val * g.sum(axis=axis, keepdims=True),)

    return make_op(out_data, (x,), backward)


def erf(x: Tensor) -> Tensor:
    """Gauss error function."""
    out_data = special.erf(x.data)

    def backward(g: np.ndarray):
        return (g * 2.0 / np.sqrt(np.pi) * np.exp(-x.data**2),)

    return make_op(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Exact (erf-based) GELU, as used in BERT/Segformer FFNs."""
    cdf = 0.5 * (1.0 + special.erf(x.data / np.sqrt(2.0)))
    out_data = x.data * cdf

    def backward(g: np.ndarray):
        pdf = np.exp(-0.5 * x.data**2) / np.sqrt(2.0 * np.pi)
        return (g * (cdf + x.data * pdf),)

    return make_op(out_data, (x,), backward)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation, used in LLaMA's SwiGLU FFN."""
    sig = 1.0 / (1.0 + np.exp(-x.data))
    out_data = x.data * sig

    def backward(g: np.ndarray):
        return (g * (sig + x.data * sig * (1.0 - sig)),)

    return make_op(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (also the feature map of linear attention)."""
    return x.relu()
