"""Free-function tensor operations: joining, selection, padding, im2col.

These complement the methods on :class:`~repro.tensor.Tensor` with
operations that take several tensors or need specialised backward rules.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, TensorLike, as_tensor, make_op, unbroadcast


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, splits, axis=axis))

    return make_op(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        parts = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return make_op(out_data, tensors, backward)


def split(tensor: Tensor, sections: int, axis: int = 0) -> List[Tensor]:
    """Split ``tensor`` into ``sections`` equal chunks along ``axis``."""
    size = tensor.shape[axis]
    if size % sections != 0:
        raise ValueError(f"axis of size {size} not divisible into {sections} sections")
    chunk = size // sections
    outs = []
    for i in range(sections):
        index = [slice(None)] * tensor.ndim
        index[axis] = slice(i * chunk, (i + 1) * chunk)
        outs.append(tensor[tuple(index)])
    return outs


def where(condition: Union[np.ndarray, Tensor], a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise select ``a`` where condition else ``b``; grads route accordingly."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            unbroadcast(g * cond, a.shape),
            unbroadcast(g * ~cond, b.shape),
        )

    return make_op(out_data, (a, b), backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise maximum; gradient splits evenly at ties."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(g: np.ndarray):
        a_mask = a.data > b.data
        tie = a.data == b.data
        ga = g * (a_mask + 0.5 * tie)
        gb = g * (~a_mask & ~tie) + g * 0.5 * tie
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return make_op(out_data, (a, b), backward)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise minimum; gradient splits evenly at ties."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def pad2d(x: Tensor, padding: Tuple[int, int]) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    widths = [(0, 0)] * (x.ndim - 2) + [(ph, ph), (pw, pw)]
    out_data = np.pad(x.data, widths)

    def backward(g: np.ndarray):
        slices = tuple(
            slice(p[0], g.shape[i] - p[1]) for i, p in enumerate(widths)
        )
        return (g[slices],)

    return make_op(out_data, (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at integer ``indices`` (scatter-add backward)."""
    idx = indices.data.astype(np.int64) if isinstance(indices, Tensor) else np.asarray(indices, dtype=np.int64)
    out_data = weight.data[idx]

    def backward(g: np.ndarray):
        grad = np.zeros_like(weight.data)
        np.add.at(grad, idx.reshape(-1), g.reshape(-1, weight.shape[-1]))
        return (grad,)

    return make_op(out_data, (weight,), backward)


def im2col(
    x: Tensor,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
) -> Tensor:
    """Unfold an NCHW tensor into convolution columns.

    Returns a tensor of shape ``(N, Ho*Wo, C*kh*kw)`` so a convolution is a
    single matmul with a ``(C*kh*kw, Co)`` weight matrix — exactly the GEMM
    the analytical accelerator model (and PSUM tiling) operates on.

    The gather is a strided window view (``sliding_window_view``) rather
    than a Python loop over kernel offsets, materialized contiguously in
    ``(n, c, kh, kw, ho, wo)`` order first — a single direct permute-copy
    of the view has far worse locality and measures ~3× slower, while the
    two-stage copy beats the offset loop.  The backward keeps the kh·kw
    strided-slice accumulation: each iteration is one full-array numpy
    add, which beats an ``np.add.at`` flat scatter by ~6× (add.at is
    unbuffered per-element).  Both directions are bit-identical to the
    window-loop reference (regression-tested).
    """
    kh, kw = kernel_size
    sh, sw = stride
    x = pad2d(x, padding)
    n, c, h, w = x.shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1

    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kh, kw), axis=(2, 3))
    view = windows[:, :, :: sh, :: sw].transpose(0, 1, 4, 5, 2, 3)  # zero-copy so far
    cols = np.ascontiguousarray(view)  # (n, c, kh, kw, ho, wo)
    out_data = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n, ho * wo, c * kh * kw)

    def backward(g: np.ndarray):
        g_cols = g.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
        grad = np.zeros((n, c, h, w), dtype=g.dtype)
        for i in range(kh):
            for j in range(kw):
                grad[:, :, i : i + ho * sh : sh, j : j + wo * sw : sw] += g_cols[:, :, i, j]
        return (grad,)

    return make_op(out_data, (x,), backward)


def upsample_nearest(x: Tensor, factor: int) -> Tensor:
    """Nearest-neighbour upsampling of an NCHW tensor by an integer factor.

    Backward sum-pools gradients over each ``factor × factor`` block.
    """
    if factor < 1:
        raise ValueError(f"upsample factor must be >= 1, got {factor}")
    if factor == 1:
        return x
    n, c, h, w = x.shape
    out_data = x.data.repeat(factor, axis=2).repeat(factor, axis=3)

    def backward(g: np.ndarray):
        blocks = g.reshape(n, c, h, factor, w, factor)
        return (blocks.sum(axis=(3, 5)),)

    return make_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, factor: int) -> Tensor:
    """Average pooling with a ``factor × factor`` kernel and equal stride."""
    n, c, h, w = x.shape
    if h % factor or w % factor:
        raise ValueError(f"spatial dims {(h, w)} not divisible by {factor}")
    ho, wo = h // factor, w // factor
    blocks = x.data.reshape(n, c, ho, factor, wo, factor)
    out_data = blocks.mean(axis=(3, 5))
    inv = 1.0 / (factor * factor)

    def backward(g: np.ndarray):
        g_exp = g[:, :, :, None, :, None] * inv
        return (np.broadcast_to(g_exp, (n, c, ho, factor, wo, factor)).reshape(n, c, h, w).copy(),)

    return make_op(out_data, (x,), backward)


def outer_ones_like(x: Tensor) -> np.ndarray:
    """Convenience: an all-ones array matching ``x``'s shape (no grad)."""
    return np.ones_like(x.data)


def tril_mask(size: int, dtype=np.float64) -> np.ndarray:
    """Lower-triangular causal mask of ``-inf`` above the diagonal (no grad)."""
    mask = np.zeros((size, size), dtype=dtype)
    mask[np.triu_indices(size, k=1)] = -np.inf
    return mask
