"""Reverse-mode autograd tensor over numpy.

This module provides the :class:`Tensor` class used throughout the APSQ
reproduction.  It supports the usual broadcasting arithmetic, matrix
multiplication, reductions, shape manipulation and indexing, each with a
hand-written backward closure.  The design follows the classic
"micrograd with ndarrays" pattern: every operation returns a new Tensor
whose ``_backward`` closure scatters the output gradient back onto its
parents, and :meth:`Tensor.backward` runs a topological sweep.

Custom-gradient operations (straight-through estimators for quantizers)
are built with :func:`make_op`, the same primitive used internally.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .autograd import is_grad_enabled

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]

_DTYPE_NAMES = {
    "float32": np.float32,
    "float64": np.float64,
    "f32": np.float32,
    "f64": np.float64,
}


def _resolve_dtype(name) -> type:
    if isinstance(name, type) and name in (np.float32, np.float64):
        return name
    key = str(name).lower()
    if key not in _DTYPE_NAMES:
        raise ValueError(
            f"unsupported dtype {name!r}; options: float32, float64 "
            "(set via REPRO_DTYPE or set_default_dtype)"
        )
    return _DTYPE_NAMES[key]


# float64 stays the default so gradcheck keeps full precision; float32 is
# the fast path for training/benchmark runs (REPRO_DTYPE=float32).
DEFAULT_DTYPE = _resolve_dtype(os.environ.get("REPRO_DTYPE", "float64"))


def default_dtype() -> type:
    """The dtype new tensors are created with (float64 unless overridden)."""
    return DEFAULT_DTYPE


def set_default_dtype(dtype) -> type:
    """Set the process-wide default float dtype; returns the previous one.

    Accepts ``np.float32``/``np.float64`` or their names.  Existing
    tensors keep their dtype; mixing is safe (numpy promotes), but a
    whole-run toggle is cheapest set before any tensor is created.
    """
    global DEFAULT_DTYPE
    previous = DEFAULT_DTYPE
    DEFAULT_DTYPE = _resolve_dtype(dtype)
    return previous


def _as_array(value: TensorLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype or DEFAULT_DTYPE)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting.

    Summation happens over the axes that were added or expanded when the
    forward operation broadcast an operand of ``shape`` up to ``grad.shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data.item())

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def clone(self) -> "Tensor":
        out = make_op(self.data.copy(), (self,), lambda g: (g,))
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            if node._backward is not None:
                parent_grads = node._backward(node_grad)
                for parent, pgrad in zip(node._prev, parent_grads):
                    if pgrad is None:
                        continue
                    if not (parent.requires_grad or parent._backward is not None):
                        continue
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        return make_op(
            out_data,
            (self, other),
            lambda g: (unbroadcast(g, self.shape), unbroadcast(g, other.shape)),
        )

    __radd__ = __add__

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data
        return make_op(
            out_data,
            (self, other),
            lambda g: (unbroadcast(g, self.shape), unbroadcast(-g, other.shape)),
        )

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        return make_op(
            out_data,
            (self, other),
            lambda g: (
                unbroadcast(g * other.data, self.shape),
                unbroadcast(g * self.data, other.shape),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        return make_op(
            out_data,
            (self, other),
            lambda g: (
                unbroadcast(g / other.data, self.shape),
                unbroadcast(-g * self.data / (other.data**2), other.shape),
            ),
        )

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        return make_op(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        return make_op(
            out_data,
            (self,),
            lambda g: (g * exponent * self.data ** (exponent - 1),),
        )

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return g * b, g * a
            if a.ndim == 1:
                ga = unbroadcast((g[..., None, :] * b).sum(-1), a.shape)
                gb = a[:, None] * g[..., None, :]
                return ga, unbroadcast(gb, b.shape)
            if b.ndim == 1:
                ga = g[..., :, None] * b
                gb = (np.swapaxes(a, -1, -2) @ g[..., :, None])[..., 0]
                return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

        return make_op(out_data, (self, other), backward)

    def __rmatmul__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return make_op(out_data, (self,), lambda g: (g * out_data,))

    def log(self) -> "Tensor":
        return make_op(np.log(self.data), (self,), lambda g: (g / self.data,))

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return make_op(out_data, (self,), lambda g: (g * 0.5 / out_data,))

    def abs(self) -> "Tensor":
        return make_op(np.abs(self.data), (self,), lambda g: (g * np.sign(self.data),))

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return make_op(out_data, (self,), lambda g: (g * (1.0 - out_data**2),))

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return make_op(out_data, (self,), lambda g: (g * out_data * (1.0 - out_data),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return make_op(self.data * mask, (self,), lambda g: (g * mask,))

    def clip(self, low: Scalar, high: Scalar) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)
        return make_op(out_data, (self,), lambda g: (g * mask,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, self.shape).copy(),)
            g_exp = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g_exp = np.expand_dims(g_exp, a)
            return (np.broadcast_to(g_exp, self.shape).copy(),)

        return make_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                full = np.broadcast_to(g, self.shape)
                mask = self.data == self.data.max()
            else:
                g_exp = g
                out_exp = out_data
                if not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    for a in sorted(axes):
                        g_exp = np.expand_dims(g_exp, a)
                        out_exp = np.expand_dims(out_exp, a)
                full = np.broadcast_to(g_exp, self.shape)
                mask = self.data == out_exp
            counts = mask.sum(
                axis=axis, keepdims=True
            ) if axis is not None else mask.sum()
            return (full * mask / counts,)

        return make_op(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        return make_op(out_data, (self,), lambda g: (g.reshape(self.shape),))

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        axes = tuple(a % self.ndim for a in axes)
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)
        return make_op(out_data, (self,), lambda g: (g.transpose(inverse),))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = self.data.swapaxes(a, b)
        return make_op(out_data, (self,), lambda g: (g.swapaxes(a, b),))

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        return make_op(out_data, (self,), lambda g: (np.squeeze(g, axis=axis),))

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        return make_op(out_data, (self,), lambda g: (g.reshape(self.shape),))

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)
        out_data = self.data[index]
        basic = _is_basic_index(index)

        def backward(g: np.ndarray):
            grad = np.zeros(self.data.shape, dtype=self.data.dtype)
            if basic:
                # Basic indexing never aliases: direct write beats np.add.at.
                grad[index] = g
            else:
                np.add.at(grad, index, g)
            return (grad,)

        return make_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (return plain numpy bool arrays, no grad)
    # ------------------------------------------------------------------
    def __gt__(self, other: TensorLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: TensorLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: TensorLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: TensorLike) -> np.ndarray:
        return self.data <= _as_array(other)


def _is_basic_index(index) -> bool:
    """True for numpy *basic* indexing (ints/slices/ellipsis), which selects
    each element at most once — its gradient scatter is a plain assignment."""
    if isinstance(index, tuple):
        return all(_is_basic_index(i) for i in index)
    return index is None or index is Ellipsis or isinstance(index, (int, np.integer, slice))


def as_tensor(value: TensorLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def make_op(
    out_data: np.ndarray,
    parents: Iterable[Tensor],
    backward: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
) -> Tensor:
    """Create the output tensor of a differentiable operation.

    ``backward`` maps the output gradient to a tuple of parent gradients
    (``None`` entries are skipped).  When autograd is disabled or no parent
    requires grad, the graph edge is dropped entirely.
    """
    parents = tuple(parents)
    out = Tensor(out_data)
    if is_grad_enabled() and any(
        p.requires_grad or p._backward is not None for p in parents
    ):
        out.requires_grad = any(p.requires_grad for p in parents)
        out._prev = parents
        out._backward = backward
    return out
