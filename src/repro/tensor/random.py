"""Seeded randomness for reproducible experiments.

A single module-level :class:`numpy.random.Generator` backs all parameter
initialisation and synthetic data generation, reset via :func:`manual_seed`.
"""

from __future__ import annotations

import numpy as np

_GENERATOR = np.random.default_rng(0)


def manual_seed(seed: int) -> None:
    """Reset the global generator — call at the top of every experiment."""
    global _GENERATOR
    _GENERATOR = np.random.default_rng(seed)


def get_generator() -> np.random.Generator:
    """Return the process-wide generator."""
    return _GENERATOR


def normal(shape, std: float = 1.0, mean: float = 0.0) -> np.ndarray:
    return _GENERATOR.normal(mean, std, size=shape)


def uniform(shape, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    return _GENERATOR.uniform(low, high, size=shape)


def randint(low: int, high: int, shape) -> np.ndarray:
    return _GENERATOR.integers(low, high, size=shape)


def permutation(n: int) -> np.ndarray:
    return _GENERATOR.permutation(n)
