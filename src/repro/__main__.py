"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
list
    Show the available experiments and effort profiles.
run ARTEFACT [--profile NAME]
    Regenerate one paper artefact (``fig1``, ``fig5``, ``fig6``,
    ``table1`` … ``table4``) and print it.
all [--profile NAME]
    Regenerate everything (the analytical artefacts first, then the
    training-based ones).
info
    Print the package/version and the configuration of the analytical
    accelerator.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .experiments import PROFILES, fig1, fig5, fig6, get_profile, table1, table2, table3, table4

ANALYTICAL = {
    "fig1": lambda _profile: fig1.format_table(fig1.run()),
    "fig6": lambda _profile: fig6.format_table(fig6.run()),
    "table2": lambda _profile: table2.format_table(table2.run()),
    "table4": lambda _profile: table4.format_table(table4.run()),
}
TRAINED = {
    "table1": lambda profile: table1.render(table1.run(profile=profile)),
    "table3": lambda profile: table3.render(table3.run(profile=profile)),
    "fig5": lambda profile: fig5.format_table(fig5.run(profile=profile)),
}
ARTEFACTS = {**ANALYTICAL, **TRAINED}


def cmd_list() -> str:
    lines = ["analytical artefacts (instant):"]
    lines.extend(f"  {name}" for name in sorted(ANALYTICAL))
    lines.append("training-based artefacts (honour --profile):")
    lines.extend(f"  {name}" for name in sorted(TRAINED))
    lines.append(f"profiles: {', '.join(sorted(PROFILES))} (default: fast)")
    return "\n".join(lines)


def cmd_info() -> str:
    from .accelerator import AcceleratorConfig

    config = AcceleratorConfig()
    return "\n".join(
        [
            f"repro {__version__} — APSQ (DAC 2025) reproduction",
            f"accelerator: Po={config.po} Pci={config.pci} Pco={config.pco}",
            f"buffers: ifmap {config.ifmap_buffer // 1024} KiB, "
            f"ofmap {config.ofmap_buffer // 1024} KiB, "
            f"weight {config.weight_buffer // 1024} KiB",
            f"energy/access: mac {config.energy.e_mac} pJ, "
            f"sram {config.energy.e_sram} pJ/B, dram {config.energy.e_dram} pJ/B",
        ]
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiments and profiles")
    sub.add_parser("info", help="show package and accelerator configuration")
    run_parser = sub.add_parser("run", help="regenerate one artefact")
    run_parser.add_argument("artefact", choices=sorted(ARTEFACTS))
    run_parser.add_argument("--profile", default="", help="smoke | fast | full")
    all_parser = sub.add_parser("all", help="regenerate every artefact")
    all_parser.add_argument("--profile", default="", help="smoke | fast | full")

    args = parser.parse_args(argv)
    if args.command == "list":
        print(cmd_list())
    elif args.command == "info":
        print(cmd_info())
    elif args.command == "run":
        profile = get_profile(args.profile) if args.artefact in TRAINED else None
        print(ARTEFACTS[args.artefact](profile))
    elif args.command == "all":
        for name in ["fig1", "fig6", "table2", "table4", "table1", "table3", "fig5"]:
            profile = get_profile(args.profile) if name in TRAINED else None
            print(f"\n===== {name} =====")
            print(ARTEFACTS[name](profile))
    else:
        parser.print_help()
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
