"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
list
    Show the available experiments and effort profiles.
run ARTEFACT [--profile NAME] [--jobs N]
    Regenerate one paper artefact (``fig1``, ``fig5``, ``fig6``,
    ``table1`` … ``table4``) and print it.  Every artefact name also
    works as a direct command (``python -m repro table1 --jobs 4``).
all [--profile NAME] [--jobs N]
    Regenerate everything (the analytical artefacts first, then the
    training-based ones).
timings [--check] [--baseline PATH] [--threshold X]
    Summarize ``benchmarks/results/timings.json``; with ``--check``,
    compare its cells against the committed baseline and exit non-zero
    on hot-path regressions (> threshold×, default 1.5).
serve-bench [--requests N] [--max-batch B] [--workers W] [--mode open|closed]
    Boot the micro-batching integer-inference service in-process, run the
    BERT micro-batch-vs-batch-1 gate plus a mixed-scenario load phase,
    print the throughput/latency report and merge the measured cells into
    ``benchmarks/results/timings.json`` (``--no-record`` skips the merge).
    With ``--from-artifact`` the endpoints cold-start from compiled
    artifacts (compiled on demand into the registry), and
    ``--process-workers N`` serves the mixed phase from N artifact-backed
    worker processes.  ``--shed`` adds the SLO-shedding overload phase
    (the ``serve/shed/off|on`` cells); ``--generate`` adds the KV-cache
    decode vs full-recompute phase (the ``generate/recompute|kv_cache``
    cells, bit-identity asserted before timing).  ``--admin-port P``
    mounts the HTTP admin plane on the mixed-phase service (0 = pick an
    ephemeral port) and records one live mid-burst scrape in the report.
compile FAMILY [--gs G] [--seed S] [--registry DIR]
    Build + calibrate one endpoint family, compile it to a
    content-addressed artifact (weight codes, scale plans, shift
    exponents, quantizer state) and store it in the artifact registry.
artifacts {list | inspect REF | gc [--keep REF,...]}
    Inspect or garbage-collect the artifact registry (``REF`` is a digest
    or unique digest prefix).
serve-admin {status | watch | drain NODE | deploy REF | reload REF | rollback | slo}
    Administer a supervised serve fleet booted from the registry's deploy
    pointers (``--families``, ``--nodes``).  ``status`` probes each
    endpoint and prints node health + routes; ``watch`` polls a live
    admin plane's ``/status`` at ``--interval`` seconds (``--count N``
    stops after N frames; with ``--url`` it attaches to an already
    running service instead of booting a fleet); ``drain NODE``
    gracefully stops one named node; ``deploy REF`` runs a
    canary-verified rolling deploy of a new artifact digest
    (``--canary-fraction``, ``--canary-batches``) and promotes the
    registry pointer; ``reload REF`` performs the same hot-swap over
    HTTP — ``POST /reload`` against ``--url`` (or against a fleet it
    boots itself) — exiting 1 if the canary rejects the digest;
    ``rollback`` swaps current/previous pointers and rolls the fleet
    back.  A canary digest mismatch aborts the deploy (exit 1) with the
    incumbent untouched.  ``slo`` boots an in-process service under a
    per-endpoint SLO budget, drives a seeded 2x-capacity overload, and
    prints the per-request outcome table + shed metrics (no fleet).
info
    Print the package/version and the configuration of the analytical
    accelerator.

``--jobs N`` shards the training-based experiment grid across N worker
processes; per-cell seeding keeps the metrics bit-identical to a serial
run.  The default comes from the ``REPRO_JOBS`` env var (1 = serial).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .experiments import PROFILES, fig1, fig5, fig6, get_profile, table1, table2, table3, table4
from .experiments.executor import default_jobs

ANALYTICAL = {
    "fig1": lambda _profile, _jobs: fig1.format_table(fig1.run()),
    "fig6": lambda _profile, _jobs: fig6.format_table(fig6.run()),
    "table2": lambda _profile, _jobs: table2.format_table(table2.run()),
    "table4": lambda _profile, _jobs: table4.format_table(table4.run()),
}
TRAINED = {
    "table1": lambda profile, jobs: table1.render(table1.run(profile=profile, jobs=jobs)),
    "table3": lambda profile, jobs: table3.render(table3.run(profile=profile, jobs=jobs)),
    "fig5": lambda profile, jobs: fig5.format_table(fig5.run(profile=profile, jobs=jobs)),
}
ARTEFACTS = {**ANALYTICAL, **TRAINED}


def cmd_list() -> str:
    lines = ["analytical artefacts (instant):"]
    lines.extend(f"  {name}" for name in sorted(ANALYTICAL))
    lines.append("training-based artefacts (honour --profile and --jobs):")
    lines.extend(f"  {name}" for name in sorted(TRAINED))
    lines.append(f"profiles: {', '.join(sorted(PROFILES))} (default: fast)")
    return "\n".join(lines)


def cmd_info() -> str:
    from .accelerator import AcceleratorConfig

    config = AcceleratorConfig()
    return "\n".join(
        [
            f"repro {__version__} — APSQ (DAC 2025) reproduction",
            f"accelerator: Po={config.po} Pci={config.pci} Pco={config.pco}",
            f"buffers: ifmap {config.ifmap_buffer // 1024} KiB, "
            f"ofmap {config.ofmap_buffer // 1024} KiB, "
            f"weight {config.weight_buffer // 1024} KiB",
            f"energy/access: mac {config.energy.e_mac} pJ, "
            f"sram {config.energy.e_sram} pJ/B, dram {config.energy.e_dram} pJ/B",
        ]
    )


def _add_effort_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", default="", help="smoke | fast | full")
    parser.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        help="worker processes for the experiment grid (default: REPRO_JOBS or 1)",
    )


def _render(name: str, profile_name: str, jobs: int) -> str:
    profile = get_profile(profile_name) if name in TRAINED else None
    return ARTEFACTS[name](profile, max(1, jobs))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiments and profiles")
    sub.add_parser("info", help="show package and accelerator configuration")
    run_parser = sub.add_parser("run", help="regenerate one artefact")
    run_parser.add_argument("artefact", choices=sorted(ARTEFACTS))
    _add_effort_args(run_parser)
    timings_parser = sub.add_parser(
        "timings", help="summarize benchmark timings; --check gates regressions"
    )
    timings_parser.add_argument(
        "--check", action="store_true", help="exit non-zero on hot-path regressions"
    )
    timings_parser.add_argument(
        "--current", default="benchmarks/results/timings.json", help="payload to check"
    )
    timings_parser.add_argument(
        "--baseline", default="", help="baseline payload (default: committed file)"
    )
    timings_parser.add_argument(
        "--threshold", type=float, default=1.5, help="regression ratio gate (default 1.5)"
    )
    serve_parser = sub.add_parser(
        "serve-bench", help="benchmark the micro-batching integer-inference service"
    )
    serve_parser.add_argument(
        "--families",
        default="bert,llama,segformer",
        help="comma-separated endpoint families for the mixed load phase",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=60, help="mixed-load request count"
    )
    serve_parser.add_argument(
        "--gate-requests", type=int, default=96, help="burst size for the BERT gate"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=24, help="micro-batch coalescing cap"
    )
    serve_parser.add_argument(
        "--max-delay-ms", type=float, default=2.0, help="coalescing latency bound"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="serve worker threads (mixed phase)"
    )
    serve_parser.add_argument(
        "--mode", choices=["closed", "open"], default="closed", help="arrival pattern"
    )
    serve_parser.add_argument(
        "--concurrency", type=int, default=16, help="closed-loop outstanding requests"
    )
    serve_parser.add_argument(
        "--rate", type=float, default=300.0, help="open-loop arrival rate (req/s)"
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--timings",
        default="benchmarks/results/timings.json",
        help="timings payload to merge the measured cells into",
    )
    serve_parser.add_argument(
        "--no-record", action="store_true", help="do not touch the timings payload"
    )
    serve_parser.add_argument(
        "--from-artifact",
        action="store_true",
        help="cold-start the endpoints from compiled artifacts",
    )
    serve_parser.add_argument(
        "--registry", default="", help="artifact registry root (default: REPRO_ARTIFACTS_DIR)"
    )
    serve_parser.add_argument(
        "--process-workers",
        type=int,
        default=0,
        help="serve the mixed phase from N artifact-backed worker processes",
    )
    serve_parser.add_argument(
        "--shed",
        action="store_true",
        help="also run the SLO-shedding overload phase (serve/shed cells)",
    )
    serve_parser.add_argument(
        "--generate",
        action="store_true",
        help="also run the KV-cache decode vs full-recompute phase "
        "(generate/recompute|kv_cache cells)",
    )
    serve_parser.add_argument(
        "--admin-port",
        type=int,
        default=None,
        help="mount the HTTP admin plane on the mixed phase (0 = ephemeral port)",
    )
    compile_parser = sub.add_parser(
        "compile", help="compile one endpoint family to a content-addressed artifact"
    )
    compile_parser.add_argument("family", help="endpoint family (bert | llama | segformer)")
    compile_parser.add_argument("--gs", type=int, default=2, help="APSQ group size")
    compile_parser.add_argument("--seed", type=int, default=0)
    compile_parser.add_argument("--rounding", default="half_even")
    compile_parser.add_argument(
        "--registry", default="", help="artifact registry root (default: REPRO_ARTIFACTS_DIR)"
    )
    artifacts_parser = sub.add_parser(
        "artifacts", help="list / inspect / gc the artifact registry"
    )
    artifacts_parser.add_argument("verb", choices=["list", "inspect", "gc"])
    artifacts_parser.add_argument(
        "ref", nargs="?", default="", help="digest or unique prefix (inspect)"
    )
    artifacts_parser.add_argument(
        "--registry", default="", help="artifact registry root (default: REPRO_ARTIFACTS_DIR)"
    )
    artifacts_parser.add_argument(
        "--keep", default="", help="gc: comma-separated digests/prefixes to keep"
    )
    admin_parser = sub.add_parser(
        "serve-admin",
        help="administer a supervised serve fleet "
        "(status/watch/drain/deploy/reload/rollback/slo)",
    )
    admin_parser.add_argument(
        "verb", choices=["status", "watch", "drain", "deploy", "reload", "rollback", "slo"]
    )
    admin_parser.add_argument(
        "ref",
        nargs="?",
        default="",
        help="deploy/reload: digest or prefix; drain: node name",
    )
    admin_parser.add_argument(
        "--families",
        default="bert",
        help="comma-separated endpoint families the fleet serves",
    )
    admin_parser.add_argument(
        "--endpoint", default="", help="deploy/rollback target endpoint (default: first family)"
    )
    admin_parser.add_argument("--nodes", type=int, default=2, help="fleet size")
    admin_parser.add_argument(
        "--registry", default="", help="artifact registry root (default: REPRO_ARTIFACTS_DIR)"
    )
    admin_parser.add_argument(
        "--canary-fraction", type=float, default=0.25, help="live-traffic canary share"
    )
    admin_parser.add_argument(
        "--canary-batches", type=int, default=4, help="synthetic canary probe batches"
    )
    admin_parser.add_argument(
        "--probes", type=int, default=2, help="status: probe batches per endpoint"
    )
    admin_parser.add_argument(
        "--url",
        default="",
        help="watch/reload: base URL of a running admin plane "
        "(e.g. http://127.0.0.1:8787); omit to boot a fleet in-process",
    )
    admin_parser.add_argument(
        "--admin-port",
        type=int,
        default=0,
        help="watch/reload without --url: port for the self-booted admin plane "
        "(default 0 = ephemeral)",
    )
    admin_parser.add_argument(
        "--interval", type=float, default=1.0, help="watch: seconds between frames"
    )
    admin_parser.add_argument(
        "--count", type=int, default=0, help="watch: stop after N frames (0 = forever)"
    )
    all_parser = sub.add_parser("all", help="regenerate every artefact")
    _add_effort_args(all_parser)
    for name in sorted(ARTEFACTS):
        artefact_parser = sub.add_parser(name, help=f"regenerate {name}")
        _add_effort_args(artefact_parser)

    args = parser.parse_args(argv)
    if args.command == "list":
        print(cmd_list())
    elif args.command == "timings":
        from pathlib import Path

        from .experiments.timings import check_timings

        return check_timings(
            current_path=Path(args.current),
            baseline_path=Path(args.baseline) if args.baseline else None,
            threshold=args.threshold,
            check=args.check,
        )
    elif args.command == "serve-bench":
        from pathlib import Path

        from .serve import format_bench_report, serve_bench

        result = serve_bench(
            families=tuple(f for f in args.families.split(",") if f),
            requests=args.requests,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
            workers=args.workers,
            mode=args.mode,
            concurrency=args.concurrency,
            rate_hz=args.rate,
            seed=args.seed,
            gate_requests=args.gate_requests,
            timings_path=None if args.no_record else Path(args.timings),
            from_artifact=args.from_artifact or args.process_workers > 0,
            artifact_root=Path(args.registry) if args.registry else None,
            process_workers=args.process_workers,
            shed=args.shed,
            generate=args.generate,
            admin_port=args.admin_port,
        )
        print(format_bench_report(result))
    elif args.command == "compile":
        from pathlib import Path

        from .artifacts import ArtifactRegistry, compile_into

        registry = ArtifactRegistry(Path(args.registry) if args.registry else None)
        path = compile_into(
            registry, args.family, seed=args.seed, gs=args.gs, rounding=args.rounding
        )
        manifest = registry.inspect(path.name)
        print(f"compiled {args.family} (gs={args.gs}, seed={args.seed})")
        print(f"  digest: {manifest['digest']}")
        print(f"  path:   {path}")
        print(f"  layers: {len(manifest['plan']['layers'])}")
    elif args.command == "artifacts":
        import json as _json
        from pathlib import Path

        from .artifacts import ArtifactRegistry

        registry = ArtifactRegistry(Path(args.registry) if args.registry else None)
        if args.verb == "list":
            records = registry.list()
            if not records:
                print(f"no artifacts under {registry.root}")
            for record in records:
                meta = record["meta"]
                print(
                    f"{record['digest'][:16]}  family={meta.get('family', '?'):<10} "
                    f"gs={meta.get('gs', '?')} seed={meta.get('seed', '?')} "
                    f"layers={record['layers']}"
                )
        elif args.verb == "inspect":
            if not args.ref:
                print("artifacts inspect needs a digest (or unique prefix)")
                return 2
            print(_json.dumps(registry.inspect(args.ref), indent=2, sort_keys=True))
        else:  # gc
            keep = [ref for ref in args.keep.split(",") if ref] or None
            removed = registry.gc(keep=keep)
            print(f"removed {len(removed)} artifact(s)")
            for digest in removed:
                print(f"  {digest[:16]}")
    elif args.command == "serve-admin":
        import json as _json
        from pathlib import Path

        import numpy as np

        if args.verb == "slo":
            # In-process SLO demo: no fleet, no artifacts — calibrate the
            # first family's capacity, overload it 2x under a budget, and
            # show the typed per-request outcomes and shed metrics.
            from .serve.bench import bench_slo_shedding

            family = tuple(f for f in args.families.split(",") if f)[0]
            result = bench_slo_shedding(family=family)
            print(
                f"slo overload: endpoint={family} requests={result['requests']} "
                f"rate={result['rate_hz']:.0f}/s "
                f"(2x capacity {result['capacity_rps']:.0f}/s)"
            )
            print(
                f"budget: p99 <= {result['budget_p99_s'] * 1e3:.1f} ms, "
                f"queue depth <= {result['budget_depth']}"
            )
            for label, run in (("shedding off", result["off"]), ("shedding on", result["on"])):
                outcomes = run["outcomes"]
                print(
                    f"{label}: p99={run['p99_s'] * 1e3:7.1f} ms "
                    f"high-tier p99={run['high_p99_s'] * 1e3:7.1f} ms  "
                    + "  ".join(f"{k}={v}" for k, v in outcomes.items())
                )
            print(f"shed metrics: {_json.dumps(result['on']['shed_metrics'], sort_keys=True)}")
            return 0

        if args.verb in ("watch", "reload"):
            # HTTP-plane verbs: attach to a running admin plane via
            # --url, or boot a supervised fleet with the plane mounted
            # and drive it over its own URL.
            from .serve.admin import post_reload, watch

            url = args.url.rstrip("/") if args.url else ""
            service = None
            if not url:
                from .artifacts import ArtifactRegistry
                from .serve.supervisor import supervised_service, supervisor_from_registry

                registry = ArtifactRegistry(Path(args.registry) if args.registry else None)
                families = tuple(f for f in args.families.split(",") if f)
                service = supervised_service(
                    supervisor_from_registry(
                        families=families, registry=registry, nodes=args.nodes
                    ),
                    shutdown_supervisor=True,
                    admin_port=args.admin_port,
                ).start()
                url = service.admin.url
                print(f"admin plane listening at {url}")
            try:
                if args.verb == "watch":
                    try:
                        frames = watch(url, interval_s=args.interval, count=args.count)
                    except KeyboardInterrupt:
                        return 0
                    print(f"watched {frames} frame(s) from {url}")
                    return 0
                if not args.ref:
                    print("serve-admin reload needs an artifact digest (or unique prefix)")
                    return 2
                status, payload = post_reload(
                    url,
                    args.ref,
                    endpoint=args.endpoint or None,
                    canary_fraction=args.canary_fraction,
                    canary_batches=args.canary_batches,
                )
                print(_json.dumps(payload, indent=2, sort_keys=True))
                if status != 200:
                    print(f"serve-admin reload failed: HTTP {status}")
                    return 1
                return 0
            finally:
                if service is not None:
                    service.drain()

        from .artifacts import ArtifactRegistry
        from .serve.supervisor import (
            CanaryMismatchError,
            SupervisorError,
            format_status,
            supervisor_from_registry,
        )
        from .serve.workers import ArtifactEndpointStub

        registry = ArtifactRegistry(Path(args.registry) if args.registry else None)
        families = tuple(f for f in args.families.split(",") if f)
        endpoint = args.endpoint or families[0]
        supervisor = supervisor_from_registry(
            families=families, registry=registry, nodes=args.nodes
        ).start()
        try:
            if args.verb == "status":
                rng = np.random.default_rng(0)
                for name, path in supervisor.artifact_paths().items():
                    stub = ArtifactEndpointStub(name, path)
                    for _ in range(max(0, args.probes)):
                        supervisor.dispatch(
                            name, [stub.request_payload(stub.synth_request(rng))]
                        )
                print(format_status(supervisor.status()))
            elif args.verb == "drain":
                if not args.ref:
                    print(f"serve-admin drain needs a node name: {supervisor.node_names()}")
                    return 2
                supervisor.drain_node(args.ref)
                print(format_status(supervisor.status()))
            elif args.verb == "deploy":
                if not args.ref:
                    print("serve-admin deploy needs an artifact digest (or unique prefix)")
                    return 2
                report = supervisor.deploy(
                    endpoint,
                    args.ref,
                    canary_fraction=args.canary_fraction,
                    canary_batches=args.canary_batches,
                )
                print(_json.dumps(report, indent=2, sort_keys=True))
            else:  # rollback
                report = supervisor.rollback(endpoint)
                print(_json.dumps(report, indent=2, sort_keys=True))
        except CanaryMismatchError as error:
            print(f"deploy aborted: {error}")
            print("incumbent still serving; registry pointer unchanged")
            return 1
        except (SupervisorError, KeyError) as error:
            print(f"serve-admin {args.verb} failed: {error}")
            return 1
        finally:
            supervisor.stop()
    elif args.command == "info":
        print(cmd_info())
    elif args.command == "run":
        print(_render(args.artefact, args.profile, args.jobs))
    elif args.command in ARTEFACTS:
        print(_render(args.command, args.profile, args.jobs))
    elif args.command == "all":
        for name in ["fig1", "fig6", "table2", "table4", "table1", "table3", "fig5"]:
            print(f"\n===== {name} =====")
            print(_render(name, args.profile, args.jobs))
    else:
        parser.print_help()
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
