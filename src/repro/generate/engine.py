"""Incremental autoregressive decode over the integer datapath.

The decode engine replays :class:`~repro.models.llama.LlamaTiny`'s forward
op for op, but recomputes only the *new* token rows of each sequence:
every quantized projection runs through an
:class:`~repro.rae.planner.IntegerExecutionPlan` (one fused
``reduce_batch`` per reduction-shape group, exactly like the planner's
full pass), k/v projection codes are captured into a per-sequence
:class:`~repro.generate.cache.KVCodeCache`, and attention runs the
cache-aware path (:meth:`~repro.nn.attention.MultiHeadAttention.attend_cached`).

Bit-identity with the full-context pass is the design invariant, not an
approximation: dequantization is an elementwise pure function of the
ScalePlan, rotary embedding depends only on the absolute position, the
causal mask row of a valid token is the same 0.0/-inf pattern as its
``tril`` row, the softmax denominator is the same strict left-to-right
fold as the pad-invariant mode, and padded key/value columns contribute
exact +0.0 tail terms to the BLAS reductions (the PR-7 bucketed-padding
invariant).  N generated tokens therefore match N single-shot
``next_token_logprobs`` full-context passes bit for bit — the oracle the
generation test suite pins.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.attention import apply_rope_at
from ..tensor import tril_mask
from .cache import KVCodeCache


class DecodeState:
    """One in-flight sequence: tokens so far, KV cache, last logprobs.

    ``logprobs`` always holds log p(next | tokens) for the *current*
    context, so greedy decoding reads ``logprobs.argmax()`` and feeds the
    choice back through :func:`decode_step`.
    """

    __slots__ = ("engine", "tokens", "cache", "logprobs", "steps")

    def __init__(self, engine: "DecodeEngine", tokens: np.ndarray, cache: KVCodeCache) -> None:
        self.engine = engine
        self.tokens = np.asarray(tokens, dtype=np.int64)
        self.cache = cache
        self.logprobs: Optional[np.ndarray] = None
        #: forward passes this sequence took part in (prefill counts as 1)
        self.steps = 0

    @property
    def length(self) -> int:
        """Current context length (prompt + appended tokens)."""
        return self.cache.length

    @property
    def exhausted(self) -> bool:
        """True when the context window is full (no further decode step)."""
        return self.cache.length >= self.engine.max_seq_len


class DecodeEngine:
    """Cache-aware prefill/decode executor for one quantized ``LlamaTiny``.

    Stateless across sequences — all per-sequence state lives in
    :class:`DecodeState` — and plan-agnostic: every method takes the
    :class:`IntegerExecutionPlan` to execute through, so an
    :class:`~repro.serve.endpoint.EnginePool` clone checked out per batch
    works exactly like the endpoint's pinned plan.
    """

    def __init__(self, model) -> None:
        config = model.config
        self.model = model
        self.num_heads = config.num_heads
        self.hidden = config.hidden
        self.head_dim = config.hidden // config.num_heads
        self.max_seq_len = config.max_seq_len
        self.vocab_size = config.vocab_size
        self.rope = model._rope
        self.blocks = list(model.layers)
        self._names = [
            {
                "q": f"layers.{i}.attention.q_proj",
                "k": f"layers.{i}.attention.k_proj",
                "v": f"layers.{i}.attention.v_proj",
                "out": f"layers.{i}.attention.out_proj",
                "gate": f"layers.{i}.ffn.gate_proj",
                "up": f"layers.{i}.ffn.up_proj",
                "down": f"layers.{i}.ffn.down_proj",
            }
            for i in range(len(self.blocks))
        ]
        self._checked_plans: set = set()

    def _check_plan(self, plan) -> None:
        """Verify (once per plan) that it covers every decode-path layer."""
        if id(plan) in self._checked_plans:
            return
        known = set(plan.layer_names)
        needed = {name for names in self._names for name in names.values()}
        needed.add("lm_head")
        missing = sorted(needed - known)
        if missing:
            raise KeyError(f"plan is missing decode-path layers: {missing}")
        self._checked_plans.add(id(plan))

    # ------------------------------------------------------------------
    # Float glue (numpy mirrors of the model's Tensor ops)
    # ------------------------------------------------------------------
    @staticmethod
    def _rms(x: np.ndarray, norm) -> np.ndarray:
        ms = (x * x).mean(axis=-1, keepdims=True)
        return x / np.sqrt(ms + norm.eps) * norm.weight.data

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    @staticmethod
    def _log_softmax(x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))

    def _ffn(self, plan, block_names, block, x: np.ndarray) -> np.ndarray:
        xf = self._rms(x, block.ffn_norm)
        outs = plan.run_model({block_names["gate"]: xf, block_names["up"]: xf})
        gate, up = outs[block_names["gate"]], outs[block_names["up"]]
        sig = 1.0 / (1.0 + np.exp(-gate))
        return x + plan.run_layer(block_names["down"], (gate * sig) * up)

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def prefill(self, plan, prompts: Sequence[np.ndarray]) -> List[DecodeState]:
        """Run ragged prompts through one padded full pass, capturing KV codes.

        Right-pads to the batch max (token 0 — any valid id: causal
        attention plus the pad-invariant softmax keep real rows'
        bits untouched), stores each sequence's real k/v code rows in a
        fresh :class:`KVCodeCache`, and seeds ``state.logprobs`` with the
        next-token distribution at each prompt's last real row — the bits
        of ``next_token_logprobs(padded, lengths)``.
        """
        self._check_plan(plan)
        prompts = [np.asarray(p, dtype=np.int64) for p in prompts]
        for p in prompts:
            if p.ndim != 1 or not 1 <= p.shape[0] <= self.max_seq_len:
                raise ValueError(
                    f"prompt must be 1-D with 1..{self.max_seq_len} tokens, got {p.shape}"
                )
            if p.size and (p.min() < 0 or p.max() >= self.vocab_size):
                raise ValueError(f"token ids outside [0, {self.vocab_size})")
        lengths = np.array([p.shape[0] for p in prompts], dtype=np.int64)
        s, t = len(prompts), int(lengths.max())
        ids = np.zeros((s, t), dtype=np.int64)
        for row, p in enumerate(prompts):
            ids[row, : p.shape[0]] = p
        states = [
            DecodeState(
                self,
                p,
                KVCodeCache(len(self.blocks), self.max_seq_len, self.hidden, self.num_heads),
            )
            for p in prompts
        ]

        cos, sin = self.rope
        x = self.model.token_embedding.weight.data[ids]  # (S, T, D)
        mask = tril_mask(t)
        scale = 1.0 / np.sqrt(self.head_dim)
        positions = np.arange(t, dtype=np.int64)[None, :]
        for i, block in enumerate(self.blocks):
            names = self._names[i]
            xn = self._rms(x, block.attn_norm)
            codes = plan.run_model_codes(
                {names["q"]: xn, names["k"]: xn, names["v"]: xn}
            )
            q, k, v = (
                self._split_heads(plan.dequantize_codes(names[key], *codes[names[key]]))
                for key in ("q", "k", "v")
            )
            q = apply_rope_at(q, cos, sin, positions)
            k = apply_rope_at(k, cos, sin, positions)
            # Capture each sequence's real rows as integer codes.
            k_rows = codes[names["k"]][0].reshape(s, t, self.hidden)
            v_rows = codes[names["v"]][0].reshape(s, t, self.hidden)
            for row, state in enumerate(states):
                state.cache.append(i, k_rows[row, : lengths[row]], v_rows[row, : lengths[row]])
            # Intra-prefill attention over the padded batch: identical to
            # the model's own causal forward on these ids (pad rows are
            # valid token-0 rows the mask keeps out of real rows' view).
            scores = (q @ k.swapaxes(-1, -2)) * scale + mask
            shifted = scores - scores.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            attn = exp / np.cumsum(exp, axis=-1).take([-1], axis=-1)
            merged = (attn @ v).transpose(0, 2, 1, 3).reshape(s, t, self.hidden)
            x = x + plan.run_layer(names["out"], merged)
            x = self._ffn(plan, names, block, x)
        logits = plan.run_layer("lm_head", self._rms(x, self.model.final_norm))
        logp = self._log_softmax(logits)
        for row, state in enumerate(states):
            state.cache.advance(int(lengths[row]))
            state.logprobs = logp[row, lengths[row] - 1]
            state.steps = 1
        return states

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode(self, plan, states: Sequence[DecodeState], tokens: np.ndarray) -> np.ndarray:
        """One batched decode step: append ``tokens[i]`` to ``states[i]``.

        Recomputes only the newest row of each sequence (M=1 GEMMs — the
        paper's Table IV decode phase), attends over the cached ragged
        contexts, and returns (and stores) the new next-token logprobs
        ``(S, vocab)``.
        """
        self._check_plan(plan)
        if not states:
            return np.zeros((0, self.vocab_size))
        tokens = np.asarray(tokens, dtype=np.int64).reshape(len(states))
        if tokens.min() < 0 or tokens.max() >= self.vocab_size:
            raise ValueError(f"token ids outside [0, {self.vocab_size})")
        for state in states:
            if state.engine is not self:
                raise ValueError("state belongs to a different DecodeEngine")
            if state.exhausted:
                raise ValueError(
                    f"context window full ({state.length}/{self.max_seq_len}); "
                    "sequence must leave the batch"
                )
        s = len(states)
        starts = np.array([state.length for state in states], dtype=np.int64)
        total = starts + 1
        t_max = int(total.max())
        cos, sin = self.rope
        positions = starts[:, None]  # (S, 1) absolute position of the new row

        x = self.model.token_embedding.weight.data[tokens[:, None]]  # (S, 1, D)
        for i, block in enumerate(self.blocks):
            names = self._names[i]
            xn = self._rms(x, block.attn_norm)
            codes = plan.run_model_codes(
                {names["q"]: xn, names["k"]: xn, names["v"]: xn}
            )
            q = self._split_heads(plan.dequantize_codes(names["q"], *codes[names["q"]]))
            q = apply_rope_at(q, cos, sin, positions)
            k_rows = codes[names["k"]][0]  # (S, hidden)
            v_rows = codes[names["v"]][0]
            keys = np.zeros((s, self.num_heads, t_max, self.head_dim))
            values = np.zeros_like(keys)
            for row, state in enumerate(states):
                state.cache.append(i, k_rows[row : row + 1], v_rows[row : row + 1])
                k_heads, v_heads = state.cache.ensure_derived(
                    i, plan, names["k"], names["v"], self.rope, upto=int(total[row])
                )
                keys[row, :, : total[row]] = k_heads
                values[row, :, : total[row]] = v_heads
            merged = block.attention.attend_cached(q, keys, values, total)
            x = x + plan.run_layer(names["out"], merged)
            x = self._ffn(plan, names, block, x)
        logits = plan.run_layer("lm_head", self._rms(x, self.model.final_norm))
        logp = self._log_softmax(logits)[:, 0, :]
        for row, state in enumerate(states):
            state.cache.advance(1)
            state.tokens = np.concatenate([state.tokens, tokens[row : row + 1]])
            state.logprobs = logp[row]
            state.steps += 1
        return logp

    # ------------------------------------------------------------------
    # Convenience loops
    # ------------------------------------------------------------------
    def generate(
        self, plan, prompt: np.ndarray, max_new_tokens: int
    ) -> Tuple[np.ndarray, np.ndarray, DecodeState]:
        """Greedy-decode one prompt: returns (tokens, per-step logprobs, state).

        Row ``k`` of the logprobs is the full next-token distribution the
        ``k``-th generated token was argmax-read from — bit-identical to
        ``next_token_logprobs(prompt + tokens[:k])``.  Stops early when
        the context window fills.
        """
        if max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
        state = self.prefill(plan, [prompt])[0]
        tokens: List[int] = []
        rows: List[np.ndarray] = []
        while True:
            token = int(state.logprobs.argmax())
            tokens.append(token)
            rows.append(state.logprobs)
            if len(tokens) >= max_new_tokens or state.exhausted:
                break
            self.decode(plan, [state], np.array([token], dtype=np.int64))
        return np.array(tokens, dtype=np.int64), np.stack(rows), state


def decode_step(plan, cache: DecodeState, token: int) -> np.ndarray:
    """One single-sequence decode step through ``plan``.

    Appends ``token`` to the sequence ``cache`` belongs to, recomputing
    only the new token's rows, and returns the new next-token logprobs
    ``(vocab,)`` — bit-identical to a full-context
    ``next_token_logprobs`` pass over the extended sequence.
    """
    return cache.engine.decode(plan, [cache], np.array([token], dtype=np.int64))[0]
