"""Autoregressive generation: integer KV-code cache + incremental decode.

The subsystem behind the serve layer's generation endpoint (ROADMAP item
4): prefill captures a sequence's key/value projections as quantized
engine codes, and each decode step recomputes only the new token's rows
(M=1 GEMMs per layer — the paper's Table IV decode phase) while attending
over the cached context.  Every generated token is bit-identical to a
full-context ``next_token_logprobs`` pass; see :mod:`repro.generate.engine`
for the invariant's proof sketch.
"""

from .cache import KVCodeCache
from .engine import DecodeEngine, DecodeState, decode_step

__all__ = ["KVCodeCache", "DecodeEngine", "DecodeState", "decode_step"]
