"""Per-sequence KV cache holding *quantized engine codes*.

The decode path's cache stores each block's key/value projections in the
same form the RAE emits them: post-requant integer codes, **before**
dequantization.  Floats are derived lazily per block and re-derived only
when the owning layer's requant constants change —
:meth:`~repro.rae.planner.IntegerExecutionPlan.scale_key` is the version
key, the companion of the planner's weight-code and ScalePlan caches.
Because :meth:`~repro.rae.planner.IntegerExecutionPlan.dequantize_codes`
is an elementwise pure function of the plan constants, a re-derived
context reproduces the original full-pass keys/values bit for bit; a QAT
step bumps the key and the cache resyncs instead of serving stale floats.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class KVCodeCache:
    """One sequence's cached context: integer k/v codes + derived heads.

    Codes live in preallocated ``(max_ctx, hidden)`` int64 buffers per
    block; derived rotary-applied key heads and value heads live in
    ``(num_heads, max_ctx, head_dim)`` float buffers.  ``length`` counts
    the valid context rows (shared by every block — a decode step appends
    one row to all blocks, then calls :meth:`advance` once).
    """

    def __init__(self, num_blocks: int, max_ctx: int, hidden: int, num_heads: int) -> None:
        if hidden % num_heads:
            raise ValueError(f"hidden {hidden} not divisible by heads {num_heads}")
        self.num_blocks = num_blocks
        self.max_ctx = max_ctx
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.length = 0
        self.k_codes: List[np.ndarray] = [
            np.zeros((max_ctx, hidden), dtype=np.int64) for _ in range(num_blocks)
        ]
        self.v_codes: List[np.ndarray] = [
            np.zeros((max_ctx, hidden), dtype=np.int64) for _ in range(num_blocks)
        ]
        self.k_heads: List[np.ndarray] = [
            np.zeros((num_heads, max_ctx, self.head_dim)) for _ in range(num_blocks)
        ]
        self.v_heads: List[np.ndarray] = [
            np.zeros((num_heads, max_ctx, self.head_dim)) for _ in range(num_blocks)
        ]
        #: rows of the derived float buffers that are valid per block
        self._derived: List[int] = [0] * num_blocks
        #: (k scale_key, v scale_key) the derived rows were computed under
        self._keys: List[Optional[tuple]] = [None] * num_blocks

    def append(self, block: int, k_codes: np.ndarray, v_codes: np.ndarray) -> None:
        """Store ``n`` new rows of one block's k/v codes at the tail.

        Call once per block within a step, then :meth:`advance` the shared
        length counter by ``n``.
        """
        n = k_codes.shape[0]
        if self.length + n > self.max_ctx:
            raise ValueError(
                f"KV cache overflow: {self.length} + {n} rows > max_ctx {self.max_ctx}"
            )
        self.k_codes[block][self.length : self.length + n] = k_codes
        self.v_codes[block][self.length : self.length + n] = v_codes

    def advance(self, n: int) -> None:
        """Commit ``n`` appended rows (after every block has them)."""
        self.length += n

    def ensure_derived(
        self,
        block: int,
        plan,
        k_name: str,
        v_name: str,
        rope: Tuple[np.ndarray, np.ndarray],
        upto: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Derived key/value heads for one block, resynced to ``plan``.

        Dequantizes any rows the float buffers don't cover yet — all of
        them if the layers' :meth:`scale_key` changed since the last
        derivation (a QAT step), only the newly appended rows otherwise —
        splits heads and applies rotary embedding to keys at their
        absolute positions.  ``upto`` includes rows appended but not yet
        committed by :meth:`advance` (the in-flight decode row); default
        is the committed ``length``.  Returns ``(k_heads, v_heads)`` views
        of shape ``(num_heads, upto, head_dim)``.
        """
        from ..nn.attention import apply_rope_at

        key = (plan.scale_key(k_name), plan.scale_key(v_name))
        if self._keys[block] != key:
            self._derived[block] = 0
            self._keys[block] = key
        start, stop = self._derived[block], self.length if upto is None else upto
        if start < stop:
            cos, sin = rope
            m = stop - start
            positions = np.arange(start, stop, dtype=np.int64)
            k = plan.dequantize_codes(
                k_name, self.k_codes[block][start:stop], (m, self.hidden)
            )
            v = plan.dequantize_codes(
                v_name, self.v_codes[block][start:stop], (m, self.hidden)
            )
            k = k.reshape(m, self.num_heads, self.head_dim).transpose(1, 0, 2)
            v = v.reshape(m, self.num_heads, self.head_dim).transpose(1, 0, 2)
            k = apply_rope_at(k[None], cos, sin, positions[None])[0]
            self.k_heads[block][:, start:stop] = k
            self.v_heads[block][:, start:stop] = v
            self._derived[block] = stop
        return self.k_heads[block][:, :stop], self.v_heads[block][:, :stop]
