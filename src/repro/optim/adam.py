"""Adam and AdamW optimizers."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; ``weight_decay`` adds L2 to the gradient."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _decay(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * p.data
        return grad

    def _apply_decoupled_decay(self, p: Parameter) -> None:
        pass

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = self._decay(p, p.grad)
            self._m[i] = b1 * self._m[i] + (1 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1 - b2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            self._apply_decoupled_decay(p)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (applied directly to the weights)."""

    def _decay(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        return grad

    def _apply_decoupled_decay(self, p: Parameter) -> None:
        if self.weight_decay:
            p.data = p.data * (1.0 - self.lr * self.weight_decay)
