"""Optimizers and LR schedulers."""

from .adam import Adam, AdamW
from .optimizer import Optimizer, clip_grad_norm
from .scheduler import CosineAnnealingLR, LRScheduler, StepLR, WarmupCosineLR
from .sgd import SGD

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
]
