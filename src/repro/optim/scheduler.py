"""Learning-rate schedulers."""

from __future__ import annotations

import math

from .optimizer import Optimizer


class LRScheduler:
    """Base scheduler; call :meth:`step` once per epoch/iteration."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_step = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.last_step += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        completed = max(self.last_step - 1, 0)
        return self.base_lr * self.gamma ** (completed // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from base LR to ``min_lr`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.last_step, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))


class WarmupCosineLR(LRScheduler):
    """Linear warmup for ``warmup`` steps, then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup: int,
        t_max: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        self.warmup = max(warmup, 0)
        self.t_max = max(t_max, self.warmup + 1)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        if self.last_step <= self.warmup and self.warmup > 0:
            return self.base_lr * self.last_step / self.warmup
        progress = (self.last_step - self.warmup) / (self.t_max - self.warmup)
        progress = min(progress, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
