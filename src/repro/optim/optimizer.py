"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
