"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class SGD(Optimizer):
    """Classic SGD: ``v = m·v + g + wd·p``; ``p -= lr·v``."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data = p.data - self.lr * v
