"""Generation endpoint: KV-code decode behind the serving front door.

A :class:`GenerationEndpoint` pairs a quantized causal LM with a
:class:`~repro.generate.engine.DecodeEngine`.  Two execution paths share
its bits:

- :meth:`infer_batch` generates a *fixed* batch of requests to completion
  (sequences leave as their budget or the context window fills).  This is
  the path process workers and ``serve_one`` take — no joins, so one call
  is a pure function of its payloads.
- The in-process service loop (:meth:`InferenceService._execute_generation
  <repro.serve.service.InferenceService._execute_generation>`) drives
  prefill/decode step by step instead, so queued sequences can *join* the
  running batch between steps and deadlines/shedding can evict per token.

Both paths produce bit-identical tokens because every decode step is
bit-identical to a full-context pass regardless of batch composition —
the :mod:`repro.generate` invariant.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..generate import DecodeEngine, DecodeState
from ..rae.planner import IntegerExecutionPlan
from .endpoint import ModelEndpoint, decode_generation_payload
from .types import GenerationResponse


class GenerationEndpoint(ModelEndpoint):
    """One served causal LM with an incremental-decode engine."""

    def __init__(
        self,
        name: str,
        scenario: str,
        model,
        request_shape: Tuple[int, ...],
        rounding: str = "half_even",
        plan: IntegerExecutionPlan | None = None,
        cache_activations: object = False,
        engine_pool: Optional[int] = None,
        bucketing: bool = True,
    ) -> None:
        if scenario != "generation":
            raise ValueError(f"GenerationEndpoint requires scenario 'generation', got {scenario!r}")
        super().__init__(
            name,
            scenario,
            model,
            request_shape,
            rounding=rounding,
            plan=plan,
            cache_activations=cache_activations,
            engine_pool=engine_pool,
            bucketing=bucketing,
        )
        self.decoder = DecodeEngine(model)
        self._gen_lock = threading.Lock()
        self._gen_stats = {
            "prefills": 0,
            "prefill_rows": 0,
            "decode_steps": 0,
            "decode_rows": 0,
            "tokens": 0,
            "sequences": 0,
        }

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    def coalesce_key(self, payload: np.ndarray) -> tuple:
        """All generation traffic for the endpoint shares one queue key.

        Prompt lengths need no bucketing dimension here: the continuous
        batcher pads ragged prompts at prefill (pad-invariant), and the
        per-*step* coalescing keys the service records carry the context
        bucket as their step dimension instead.
        """
        return (self.name, ("generate",))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def note_prefill(self, rows: int) -> None:
        with self._gen_lock:
            self._gen_stats["prefills"] += 1
            self._gen_stats["prefill_rows"] += rows

    def note_decode(self, rows: int) -> None:
        with self._gen_lock:
            self._gen_stats["decode_steps"] += 1
            self._gen_stats["decode_rows"] += rows

    def note_finished(self, tokens: int) -> None:
        with self._gen_lock:
            self._gen_stats["sequences"] += 1
            self._gen_stats["tokens"] += tokens

    def gen_stats(self) -> Dict[str, int]:
        """Cumulative prefill/decode counters (``status()`` surfaces these)."""
        with self._gen_lock:
            return dict(self._gen_stats)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer_batch(self, payloads: Sequence[np.ndarray]) -> List[object]:
        """Generate a fixed batch of encoded payloads to completion."""
        if not payloads:
            return []
        jobs = [decode_generation_payload(p) for p in payloads]
        with self.engines.engine() as plan:
            return self.generate_batch(plan, jobs)

    def generate_batch(
        self, plan, jobs: Sequence[Tuple[np.ndarray, int]]
    ) -> List[GenerationResponse]:
        """Greedy-decode ``(prompt, max_new_tokens)`` jobs as one batch.

        Sequences leave the decode batch as they finish (budget reached or
        context window full); the rest keep stepping together.  Tokens are
        bit-identical to serving each job alone.
        """
        states = self.prefill_states(plan, [prompt for prompt, _ in jobs])
        budgets = [int(budget) for _, budget in jobs]
        tokens: List[List[int]] = [[] for _ in jobs]
        rows: List[List[np.ndarray]] = [[] for _ in jobs]
        live = list(range(len(jobs)))
        while live:
            keep: List[int] = []
            for i in live:
                state = states[i]
                token = int(state.logprobs.argmax())
                tokens[i].append(token)
                rows[i].append(state.logprobs)
                if len(tokens[i]) < budgets[i] and not state.exhausted:
                    keep.append(i)
            if keep:
                self.decode_states(
                    plan,
                    [states[i] for i in keep],
                    np.array([tokens[i][-1] for i in keep], dtype=np.int64),
                )
            live = keep
        return [
            self.finish_response(seq_tokens, seq_rows)
            for seq_tokens, seq_rows in zip(tokens, rows)
        ]

    # ------------------------------------------------------------------
    # Step primitives (shared with the service's continuous loop)
    # ------------------------------------------------------------------
    def prefill_states(self, plan, prompts: Sequence[np.ndarray]) -> List[DecodeState]:
        states = self.decoder.prefill(plan, prompts)
        self.note_prefill(len(prompts))
        return states

    def decode_states(
        self, plan, states: Sequence[DecodeState], tokens: np.ndarray
    ) -> np.ndarray:
        logp = self.decoder.decode(plan, states, tokens)
        self.note_decode(len(states))
        return logp

    def finish_response(
        self, tokens: Sequence[int], rows: Sequence[np.ndarray]
    ) -> GenerationResponse:
        self.note_finished(len(tokens))
        return GenerationResponse(
            tokens=np.array(tokens, dtype=np.int64),
            logprobs=np.stack(rows),
            steps=len(tokens),
        )

    def __repr__(self) -> str:
        return (
            f"GenerationEndpoint({self.name!r}, "
            f"layers={len(self.plan.layer_names)}, groups={len(self.plan.groups)})"
        )
