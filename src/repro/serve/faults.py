"""Deterministic fault injection for the serve stack.

Every recovery path in the serve stack (crash-mid-batch replay, heartbeat
respawn, arena backpressure shedding, descriptor-corruption replay) used
to be exercised by ad-hoc ``kill -9`` helpers and sleeps.  This module
makes faults first-class: a seeded :class:`FaultPlan` names *sites* in
the stack and fires rules on specific hit numbers, so a chaos run is a
reproducible seed instead of a race.

Sites instrumented across the stack (fired via :func:`fire`):

- ``worker.batch`` — a worker process is about to serve a batch
  (``supervisor._node_main`` infer ops and the process-pool worker).
  ``crash`` exits the process mid-batch; ``slow`` sleeps before serving.
- ``node.loop`` — one iteration of the supervised child's heartbeat
  loop.  ``stall`` sleeps in-loop, which stops heartbeats (the watchdog
  must notice); ``crash`` kills the node between batches.
- ``arena.acquire`` — parent-side shared-memory slot acquisition.
  ``arena_exhaust`` raises the arena's backpressure error immediately,
  as if every slot were in flight.
- ``arena.read`` — parent-side descriptor verification.  ``corrupt``
  forces the digest check to fail, as if the payload bytes were torn.
- ``service.batch`` — the in-process service is about to dispatch a
  coalesced batch.  ``slow`` sleeps first; ``error`` raises
  :class:`FaultError` (the batch is rejected, never silently dropped).

Plans serialize to JSON and install from the ``REPRO_FAULTS``
environment variable, so spawned worker processes inherit the plan
without any extra plumbing; hit counters are per-process by
construction.  Rules fire on explicit 1-based hit numbers (``at``),
optionally bounded by ``limit``, or probabilistically with a per-rule
``random.Random`` seeded from ``(plan.seed, rule index, site)`` — the
same plan always fires at the same hits.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field

ENV_FAULTS = "REPRO_FAULTS"

#: Fault kinds understood by the call-site helpers.
FAULT_KINDS = ("crash", "stall", "slow", "error", "arena_exhaust", "corrupt")

#: Exit status used by injected crashes, distinct from real SIGKILL so a
#: post-mortem can tell an injected death from an organic one.
CRASH_EXIT_CODE = 86


class FaultError(RuntimeError):
    """Raised by an ``error``-kind rule at a site that supports it."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``kind`` at ``site`` on selected hits.

    ``at`` lists 1-based hit numbers (per process).  When empty, the
    rule fires probabilistically with ``prob`` per hit.  ``limit``
    bounds total fires per process (0 = unlimited).  ``param`` is the
    sleep duration in seconds for ``stall``/``slow`` rules.
    """

    site: str
    kind: str
    at: tuple[int, ...] = ()
    prob: float = 0.0
    param: float = 0.0
    limit: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": list(self.at),
            "prob": self.prob,
            "param": self.param,
            "limit": self.limit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            site=data["site"],
            kind=data["kind"],
            at=tuple(int(n) for n in data.get("at", ())),
            prob=float(data.get("prob", 0.0)),
            param=float(data.get("param", 0.0)),
            limit=int(data.get("limit", 0)),
        )


@dataclass
class FaultPlan:
    """A seeded, serializable set of fault rules."""

    rules: list = field(default_factory=list)
    seed: int = 0

    def rule(self, site, kind, *, at=(), prob=0.0, param=0.0, limit=0):
        """Append a rule and return self (builder style)."""
        if isinstance(at, int):
            at = (at,)
        self.rules.append(
            FaultRule(site=site, kind=kind, at=tuple(at), prob=prob, param=param, limit=limit)
        )
        return self

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            rules=[FaultRule.from_dict(r) for r in data.get("rules", ())],
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        text = (environ if environ is not None else os.environ).get(ENV_FAULTS, "").strip()
        if not text:
            return None
        return cls.from_json(text)


class _FaultState:
    """Per-process mutable firing state for one installed plan."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._rngs: dict[int, random.Random] = {
            i: random.Random((plan.seed, i, rule.site).__repr__())
            for i, rule in enumerate(plan.rules)
        }

    def fire(self, site: str) -> FaultRule | None:
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for i, rule in enumerate(self.plan.rules):
                if rule.site != site:
                    continue
                if rule.limit and self._fired.get(i, 0) >= rule.limit:
                    continue
                if rule.at:
                    if hit not in rule.at:
                        continue
                elif not (rule.prob > 0.0 and self._rngs[i].random() < rule.prob):
                    continue
                self._fired[i] = self._fired.get(i, 0) + 1
                return rule
        return None

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)


_STATE: _FaultState | None = None
_STATE_LOCK = threading.Lock()
_INITIALIZED = False


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active plan (None clears it)."""
    global _STATE, _INITIALIZED
    with _STATE_LOCK:
        _STATE = _FaultState(plan) if plan is not None else None
        _INITIALIZED = True


def install_from_env() -> FaultPlan | None:
    """Install the plan serialized in ``REPRO_FAULTS``, if any.

    Called from worker-process bootstrap paths; spawned children inherit
    the parent's environment, so setting the env var in the parent is
    enough to arm every process in the fleet.
    """
    plan = FaultPlan.from_env()
    install_plan(plan)
    return plan


def active_plan() -> FaultPlan | None:
    state = _STATE
    return state.plan if state is not None else None


def fire(site: str) -> FaultRule | None:
    """Record a hit at ``site``; return the rule that fires, if any.

    Cheap no-op (two global reads) when no plan is installed, so
    instrumentation sites cost nothing in production.  The first hit in
    a process that never called :func:`install_plan` arms itself from
    ``REPRO_FAULTS``, so parent-side sites (arena, service) see an
    env-declared plan without explicit bootstrap.
    """
    state = _STATE
    if state is None:
        if _INITIALIZED:
            return None
        install_from_env()
        state = _STATE
        if state is None:
            return None
    return state.fire(site)


def site_hits(site: str) -> int:
    """How many times ``site`` has been hit in this process (testing aid)."""
    state = _STATE
    return state.hits(site) if state is not None else 0


def crash_point(site: str) -> FaultRule | None:
    """Fire ``site`` and act on process-level kinds in place.

    ``crash`` exits the process immediately (``os._exit`` — no cleanup,
    exactly like a SIGKILL from the parent's point of view).  ``stall``
    and ``slow`` sleep for ``rule.param`` seconds, then return the rule
    so the caller can continue.  Other kinds are returned untouched for
    the caller to interpret.
    """
    rule = fire(site)
    if rule is None:
        return None
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if rule.kind in ("stall", "slow"):
        time.sleep(rule.param)
    return rule


__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "crash_point",
    "fire",
    "install_from_env",
    "install_plan",
    "site_hits",
]
