"""Supervised serve fleet: named workers, health-checked restarts, deploys.

``ProcessEndpointPool`` (PR 5) proved that artifact-backed worker
processes serve bit-identical traffic — but a ``ProcessPoolExecutor``
has no failure story: one ``kill -9`` raises ``BrokenProcessPool`` on
every outstanding future and wedges the pool for good.  This module is
the supervision layer on top of the same artifact cold-start economics
(the proactor/actor discipline: long-lived named workers, watchdog
monitoring, restart-on-failure):

- :class:`WorkerNode` — one **named** worker process pinned to an
  artifact digest per endpoint, talking over its own duplex pipe.  The
  node's serve loop doubles as its health signal: it emits a heartbeat
  whenever it is idle and able to serve, so a crashed *or wedged* worker
  goes silent and the watchdog notices.
- :class:`ServeSupervisor` — owns the fleet.  Dispatch claims a free
  node (round-robin per endpoint), and when a node dies mid-batch the
  pipe EOF surfaces immediately: the in-flight batch is **re-queued and
  replayed** on a surviving or respawned node.  Requests are idempotent
  integer programs, so replay is safe and bit-identical — the chaos
  property ``tests/serve/test_supervisor.py`` and the CI chaos job pin.
  Failed nodes respawn from their artifacts (~ms) under bounded
  exponential backoff; a node that fails ``circuit_threshold`` times
  without an intervening successful batch trips its **circuit breaker**
  and stays down until :meth:`ServeSupervisor.reset_node`.
- **Rolling artifact deploys** — :meth:`ServeSupervisor.deploy` drains
  one node, restarts it on the new digest (the canary), routes a
  deterministic fraction of live traffic to it *mirrored* against an
  incumbent (response digests compared before anything is trusted), runs
  seeded synthetic canary probes, then promotes node by node.  Content
  addressing makes old and new coexist, so promotion and
  :meth:`ServeSupervisor.rollback` are registry pointer swaps
  (:meth:`~repro.artifacts.registry.ArtifactRegistry.set_pointer`).

CLI: ``python -m repro serve-admin status|drain|deploy <digest>|rollback``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from . import faults
from .batcher import BatchPolicy
from .metrics import percentile
from .service import InferenceService
from .shm import (
    ShmArena,
    ShmIntegrityError,
    SlotOverflowError,
    pack_results,
    shm_enabled,
    unpack_results,
)
from .types import DeadlineMiss, raw_output

PathLike = Union[str, Path]

#: Node lifecycle states.  ``starting`` → ``ready`` ⇄ (``draining`` →)
#: ``stopped``; any detected failure lands in ``failed`` (watchdog will
#: respawn) or ``broken`` (circuit breaker tripped; manual reset only).
NODE_STATES = ("starting", "ready", "draining", "stopped", "failed", "broken")


class SupervisorError(RuntimeError):
    """Base class for supervision failures."""


class FleetUnavailableError(SupervisorError):
    """No live or respawnable node can serve the endpoint."""


class CanaryMismatchError(SupervisorError):
    """A canary response's digest diverged from the incumbent's."""


class NodeFailure(SupervisorError):
    """Internal: the node serving a batch died, wedged, or went away."""


@dataclass(frozen=True)
class RetryPolicy:
    """Replay backoff + hedging knobs for :meth:`ServeSupervisor.dispatch`.

    Replays (a batch re-queued after node loss) sleep a bounded
    exponential backoff between attempts so a flapping fleet is not
    hammered.  With ``hedge`` on, a primary batch that outlives the
    fleet's observed ``hedge_percentile`` service time (scaled by
    ``hedge_factor``, floored at ``hedge_min_s``) is *also* dispatched
    to a second healthy node; requests are idempotent integer programs,
    so both attempts produce the same bits and the first response wins.
    """

    backoff_base_s: float = 0.01
    backoff_max_s: float = 0.25
    hedge: bool = False
    hedge_percentile: float = 95.0
    hedge_factor: float = 2.0
    hedge_min_s: float = 0.05

    def backoff_s(self, replays: int) -> float:
        return min(self.backoff_base_s * (2.0 ** max(0, replays - 1)), self.backoff_max_s)


def response_digest(results: Sequence[object]) -> str:
    """SHA-256 over the raw output bytes of a batch of responses.

    The canary comparator: two artifacts serving the same requests are
    interchangeable exactly when these digests match (same discipline as
    the artifact content digest — bytes, not floats-with-tolerance).
    """
    h = hashlib.sha256()
    for result in results:
        value = np.asarray(raw_output(result))
        h.update(str(value.dtype.str).encode("ascii"))
        h.update(repr(value.shape).encode("ascii"))
        h.update(value.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Worker-process main loop
# ----------------------------------------------------------------------


def _node_main(
    conn,
    name: str,
    assignments: Dict[str, str],
    dtype_name: str,
    heartbeat_s: float,
    cache_activations: object = False,
    arena_geometry=None,
) -> None:
    """Serve loop of one worker node (runs in the child process).

    Loads every assigned endpoint from its artifact, reports ``ready``
    with the loaded digests, then serves ``infer`` commands.  Heartbeats
    are sent *from the serve loop itself* — not a side thread — so a
    wedged loop stops beating and the parent watchdog can tell "alive
    but unable to serve" from "idle".

    With ``arena_geometry`` the node also serves ``infer_shm``: payloads
    arrive as arena descriptors and the response tensors go back through
    a parent-pre-allocated slot.  The node never allocates arena slots —
    all slot lifecycle stays in the parent, which is what makes a
    ``kill -9`` here reclaimable by a plain parent-side ``finally``.
    """
    from ..artifacts import read_manifest
    from .workers import load_worker_endpoints, serve_rows_with_deadlines

    try:
        endpoints = load_worker_endpoints(
            assignments, dtype_name, cache_activations=cache_activations
        )
        digests = {ep: read_manifest(path)["digest"] for ep, path in assignments.items()}
        arena = (
            ShmArena.attach(*arena_geometry) if arena_geometry is not None else None
        )
        conn.send(("ready", digests))
    except BaseException as error:  # pragma: no cover - load failure path
        try:
            conn.send(("load-error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
        return
    while True:
        # ``stall`` here wedges the loop in place (heartbeats stop — the
        # watchdog must notice); ``crash`` kills the node between batches.
        faults.crash_point("node.loop")
        try:
            if not conn.poll(heartbeat_s):
                conn.send(("hb",))
                continue
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        op = message[0]
        if op == "stop":
            return
        if op == "stall":
            # Chaos hook (tests/CLI only): wedge the serve loop without
            # killing the process — heartbeats stop, the watchdog must
            # notice.  A real wedge (runaway batch, deadlock) looks
            # exactly like this from the parent's side.
            time.sleep(float(message[1]))
            continue
        if op == "infer":
            _, task_id, endpoint_name, payloads, deadlines = message
            try:
                faults.crash_point("worker.batch")
                results, _ = serve_rows_with_deadlines(
                    endpoints[endpoint_name], payloads, deadlines
                )
            except BaseException as error:
                conn.send(("error", task_id, f"{type(error).__name__}: {error}"))
                continue
            conn.send(("result", task_id, results))
        elif op == "infer_shm":
            _, task_id, endpoint_name, request, resp_slot, deadlines = message
            payloads = None
            try:
                faults.crash_point("worker.batch")
                endpoint = endpoints[endpoint_name]
                payloads = arena.read(request, copy=False)
                results, had_miss = serve_rows_with_deadlines(
                    endpoint, payloads, deadlines
                )
                # Drop the zero-copy views now: lingering views would pin
                # the mapping open past arena close / process teardown.
                payloads = None
                if had_miss:
                    # DeadlineMiss markers cannot stack into arena tensors;
                    # the partial batch degrades to the pickle lane.
                    reply = ("result", task_id, results)
                else:
                    try:
                        descriptor = arena.write(
                            resp_slot, [pack_results(endpoint.scenario, results)]
                        )
                        reply = ("result_shm", task_id, descriptor, endpoint.scenario)
                    except SlotOverflowError:
                        # Response outgrew its slot: same results, pickled.
                        reply = ("result", task_id, results)
            except BaseException as error:
                payloads = None
                conn.send(("error", task_id, f"{type(error).__name__}: {error}"))
                continue
            conn.send(reply)


# ----------------------------------------------------------------------
# Parent-side node record
# ----------------------------------------------------------------------


class ArtifactPin:
    """One endpoint's pinned artifact: path + expected content digest."""

    __slots__ = ("path", "digest")

    def __init__(self, path: PathLike, digest: str) -> None:
        self.path = Path(path)
        self.digest = digest

    def __repr__(self) -> str:
        return f"ArtifactPin({self.path.name!r}, {self.digest[:12]!r})"


class WorkerNode:
    """Parent-side record of one named worker process."""

    def __init__(self, name: str, assignments: Dict[str, ArtifactPin]) -> None:
        self.name = name
        self.assignments = assignments
        self.process = None
        self.conn = None
        self.state = "stopped"
        self.busy = False
        self.last_seen = 0.0
        self.started_at = 0.0
        self.restarts = 0
        self.consecutive_failures = 0
        self.backoff_until = 0.0
        self.last_error: Optional[str] = None
        self.send_lock = threading.Lock()
        #: per-endpoint service seconds (bounded) — the health/latency
        #: trail ``status()`` summarizes and the admin plane will reuse.
        self.service_times: Dict[str, deque] = {}
        self.batches_served = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def record_service(self, endpoint: str, seconds: float) -> None:
        self.service_times.setdefault(endpoint, deque(maxlen=256)).append(seconds)
        self.batches_served += 1

    def __repr__(self) -> str:
        return f"WorkerNode({self.name!r}, state={self.state!r}, pid={self.pid})"


class RouteState:
    """Per-endpoint routing: the digest pointer plus any staged canary."""

    def __init__(self, endpoint: str, current: ArtifactPin, previous: Optional[str]) -> None:
        self.endpoint = endpoint
        self.current = current
        self.previous = previous  # digest only; path resolves via registry
        self.canary: Optional[ArtifactPin] = None
        self.canary_fraction = 0.0
        self.canary_node: Optional[str] = None
        self.served = 0
        self.canary_served = 0
        self.canary_matches = 0
        self.canary_mismatches = 0
        self.rr = 0  # round-robin cursor


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


class ServeSupervisor:
    """Named worker nodes + watchdog + routing + rolling deploys.

    ``assignments`` maps endpoint name → artifact path; every node loads
    every endpoint (uniform fleet), each pinned to the artifact's content
    digest.  ``registry`` (optional) enables deploy-by-ref and persists
    route pointers across runs.
    """

    def __init__(
        self,
        assignments: Mapping[str, PathLike],
        nodes: int = 2,
        node_names: Optional[Sequence[str]] = None,
        registry=None,
        heartbeat_interval_s: float = 0.05,
        heartbeat_timeout_s: float = 1.0,
        monitor_poll_s: float = 0.02,
        batch_timeout_s: float = 60.0,
        start_timeout_s: float = 60.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        circuit_threshold: int = 5,
        max_replays: int = 8,
        retry_policy: Optional[RetryPolicy] = None,
        cache_activations: object = False,
        use_shm: Optional[bool] = None,
        shm_timeout_s: float = 30.0,
    ) -> None:
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if not assignments:
            raise ValueError("at least one endpoint artifact is required")
        from ..artifacts import read_manifest
        from ..tensor.tensor import default_dtype

        names = list(node_names) if node_names else [f"node-{i}" for i in range(nodes)]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate node names: {names}")
        self.registry = registry
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.monitor_poll_s = monitor_poll_s
        self.batch_timeout_s = batch_timeout_s
        self.start_timeout_s = start_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.circuit_threshold = circuit_threshold
        self.max_replays = max_replays
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.cache_activations = cache_activations
        self.use_shm = shm_enabled() if use_shm is None else bool(use_shm)
        self.shm_timeout_s = shm_timeout_s
        self._arena: Optional[ShmArena] = None
        self._dataplane = {"shm_batches": 0, "pickle_batches": 0, "shm_fallbacks": 0}
        self._dtype_name = default_dtype().__name__
        self._ctx = multiprocessing.get_context()

        pins: Dict[str, ArtifactPin] = {}
        self._routes: Dict[str, RouteState] = {}
        for endpoint, path in assignments.items():
            manifest = read_manifest(path)
            pins[endpoint] = ArtifactPin(path, manifest["digest"])
            previous = None
            if registry is not None:
                pointer = registry.pointer(endpoint)
                if pointer is not None:
                    previous = pointer.get("previous")
            self._routes[endpoint] = RouteState(endpoint, pins[endpoint], previous)
        self._nodes: Dict[str, WorkerNode] = {
            name: WorkerNode(name, dict(pins)) for name in names
        }
        self._cond = threading.Condition()
        self._next_task = 0
        self._running = False
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = True) -> "ServeSupervisor":
        if self.use_shm and self._arena is None:
            self._arena = ShmArena()
        with self._cond:
            if self._running:
                raise RuntimeError("supervisor already running")
            self._running = True
            for node in self._nodes.values():
                self._spawn(node)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serve-supervisor", daemon=True
        )
        self._monitor.start()
        if wait_ready:
            self.wait_ready()
        return self

    def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until every non-broken node reports ready."""
        deadline = time.monotonic() + (timeout or self.start_timeout_s)
        with self._cond:
            while True:
                states = {n.state for n in self._nodes.values()}
                if states <= {"ready", "broken", "stopped"}:
                    if "ready" not in states:
                        raise FleetUnavailableError("no node came up ready")
                    return
                if time.monotonic() > deadline:
                    raise SupervisorError(f"fleet not ready before timeout: {states}")
                self._cond.wait(0.05)

    def stop(self) -> None:
        with self._cond:
            self._running = False
            nodes = list(self._nodes.values())
            self._cond.notify_all()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
        for node in nodes:
            self._stop_node_process(node)
        with self._cond:
            for node in nodes:
                if node.state != "broken":
                    node.state = "stopped"
            self._cond.notify_all()
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "ServeSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Spawning and failure handling (callers hold self._cond unless noted)
    # ------------------------------------------------------------------
    def _spawn(self, node: WorkerNode) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_node_main,
            name=f"serve-{node.name}",
            args=(
                child_conn,
                node.name,
                {ep: str(pin.path) for ep, pin in node.assignments.items()},
                self._dtype_name,
                self.heartbeat_interval_s,
                self.cache_activations,
                self._arena.geometry() if self._arena is not None else None,
            ),
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end: the child must hold
        # the only handle, so its death (even SIGKILL) surfaces as an
        # immediate EOF on our end instead of a silent forever-poll.
        child_conn.close()
        node.process = process
        node.conn = parent_conn
        node.state = "starting"
        node.busy = False
        node.started_at = time.monotonic()
        node.last_seen = node.started_at

    def _stop_node_process(self, node: WorkerNode) -> None:
        """Politely stop a node's process; escalate to kill (no lock needed)."""
        process, conn = node.process, node.conn
        if process is None:
            return
        if process.is_alive():
            try:
                with node.send_lock:
                    conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        if conn is not None:
            conn.close()

    def _mark_failed(self, node: WorkerNode, reason: str) -> None:
        """Record a node failure and arm the respawn backoff / breaker."""
        if node.state in ("stopped", "broken", "failed"):
            return
        node.state = "failed"
        node.busy = False
        node.consecutive_failures += 1
        node.last_error = reason
        backoff = min(
            self.backoff_base_s * (2.0 ** (node.consecutive_failures - 1)),
            self.backoff_max_s,
        )
        node.backoff_until = time.monotonic() + backoff
        if node.consecutive_failures >= self.circuit_threshold:
            node.state = "broken"
        process = node.process
        if process is not None and process.is_alive():
            process.kill()
        self._cond.notify_all()

    def _drain_idle_conn(self, node: WorkerNode) -> None:
        """Pull heartbeats (and stale replies) off an idle node's pipe."""
        conn = node.conn
        try:
            while conn.poll(0):
                message = conn.recv()
                node.last_seen = time.monotonic()
                if message[0] == "load-error":
                    self._mark_failed(node, message[1])
                    return
        except (EOFError, OSError):
            self._mark_failed(node, "pipe closed")

    def _monitor_loop(self) -> None:
        """The watchdog: liveness, heartbeat expiry, ready waits, respawns."""
        while True:
            with self._cond:
                if not self._running:
                    return
                now = time.monotonic()
                for node in self._nodes.values():
                    if node.state == "starting":
                        self._check_starting(node, now)
                    elif node.state in ("ready", "draining") and not node.busy:
                        self._check_idle(node, now)
                    if node.state == "failed" and now >= node.backoff_until:
                        old = node.process
                        node.restarts += 1
                        self._spawn(node)
                        if old is not None:
                            old.join(timeout=0)
                self._cond.wait(self.monitor_poll_s)

    def _check_starting(self, node: WorkerNode, now: float) -> None:
        conn = node.conn
        try:
            while conn.poll(0):
                message = conn.recv()
                node.last_seen = now
                if message[0] == "ready":
                    digests = message[1]
                    expected = {ep: pin.digest for ep, pin in node.assignments.items()}
                    if digests != expected:
                        self._mark_failed(
                            node, f"digest mismatch: loaded {digests}, pinned {expected}"
                        )
                        return
                    node.state = "ready"
                    self._cond.notify_all()
                    return
                if message[0] == "load-error":
                    self._mark_failed(node, message[1])
                    return
        except (EOFError, OSError):
            self._mark_failed(node, "died during startup")
            return
        if not node.process.is_alive():
            self._mark_failed(node, "died during startup")
        elif now - node.started_at > self.start_timeout_s:
            self._mark_failed(node, "startup timed out")

    def _check_idle(self, node: WorkerNode, now: float) -> None:
        self._drain_idle_conn(node)
        if node.state not in ("ready", "draining"):
            return
        if not node.process.is_alive():
            self._mark_failed(node, "process died while idle")
        elif now - node.last_seen > self.heartbeat_timeout_s:
            self._mark_failed(
                node,
                f"heartbeat expired ({now - node.last_seen:.2f}s > "
                f"{self.heartbeat_timeout_s:.2f}s)",
            )

    # ------------------------------------------------------------------
    # Dispatch: claim a node, run, replay on failure
    # ------------------------------------------------------------------
    def dispatch(
        self,
        endpoint: str,
        payloads: List[np.ndarray],
        meta: Optional[dict] = None,
    ) -> list:
        """Serve one coalesced batch; replays transparently on node loss.

        The entry point :func:`supervised_service` plugs into
        :class:`~repro.serve.service.InferenceService` as its dispatcher.
        Thread-safe; each claimed node serves one batch at a time.

        ``meta`` (optional) carries per-row absolute ``deadlines`` in —
        the node skips rows already past due, returning typed
        :class:`~repro.serve.types.DeadlineMiss` markers — and reports
        ``replays``/``hedged`` back out for the service's metrics.
        Replays sleep the :class:`RetryPolicy` backoff between attempts;
        with hedging enabled a slow primary races a second healthy node
        and the first response wins (bit-identical by construction).
        """
        deadlines = (meta or {}).get("deadlines")
        if deadlines is not None and not any(d is not None for d in deadlines):
            deadlines = None
        # Span channel for sampled request traces: the service seeds
        # ``meta["trace"]`` and folds whatever lands here into every
        # traced request of the batch.
        trace_events = meta.get("trace") if meta is not None else None
        policy = self.retry_policy
        replays = 0
        hedged = False
        while True:
            node, role = self._claim_node(endpoint)
            if trace_events is not None:
                trace_events.append(("node", time.monotonic(), f"{node.name}:{role}"))
            hedging = policy.hedge and role == "primary"
            try:
                if hedging:
                    results, used_hedge = self._run_hedged(
                        node, endpoint, payloads, deadlines
                    )
                    hedged = hedged or used_hedge
                else:
                    results = self._run_on_node(node, endpoint, payloads, deadlines)
            except NodeFailure as failure:
                if not hedging:  # _run_hedged marks its own nodes failed
                    with self._cond:
                        self._mark_failed(node, str(failure))
                replays += 1
                if trace_events is not None:
                    trace_events.append(
                        ("retry", time.monotonic(), f"replay={replays}")
                    )
                if replays > self.max_replays:
                    raise FleetUnavailableError(
                        f"batch for {endpoint!r} failed after {replays} replays: {failure}"
                    ) from failure
                time.sleep(policy.backoff_s(replays))
                continue  # re-queue: identical integer program, identical bits
            except BaseException:
                if not hedging:  # hedge runner threads manage their own nodes
                    self._release_node(node, ok=False)
                raise
            if trace_events is not None and hedged:
                trace_events.append(("hedge", time.monotonic(), "raced"))
            if meta is not None:
                meta["replays"] = replays
                meta["hedged"] = hedged
            if role == "canary":
                return self._verify_canary(node, endpoint, payloads, results)
            self._release_node(node, ok=True)
            return results

    def _hedge_trigger_s(self, endpoint: str) -> float:
        """Latency threshold after which a primary batch gets hedged."""
        policy = self.retry_policy
        values: List[float] = []
        with self._cond:
            for node in self._nodes.values():
                values.extend(node.service_times.get(endpoint, ()))
        if not values:
            return policy.hedge_min_s
        return max(
            policy.hedge_min_s,
            percentile(values, policy.hedge_percentile) * policy.hedge_factor,
        )

    def _try_claim_free(
        self, endpoint: str, exclude: Tuple[str, ...] = ()
    ) -> Optional[WorkerNode]:
        """Claim an idle incumbent-pinned node *right now*, else ``None``.

        Hedging must never queue behind the fleet: a hedge that waits for
        capacity adds load exactly when the fleet is saturated, which is
        the classic hedging failure mode.
        """
        with self._cond:
            if not self._running:
                return None
            route = self._routes.get(endpoint)
            if route is None:
                return None
            for node in self._nodes.values():
                if node.name not in exclude and self._eligible(
                    node, endpoint, route.current.digest
                ):
                    node.busy = True
                    return node
        return None

    def _run_hedged(
        self,
        primary: WorkerNode,
        endpoint: str,
        payloads: List[np.ndarray],
        deadlines: Optional[List[Optional[float]]],
    ) -> Tuple[list, bool]:
        """Race the primary against a late-claimed hedge node.

        The primary runs in a helper thread.  If it outlives the hedge
        trigger (fleet ``hedge_percentile`` service time × factor) and a
        second node is idle, the same batch is dispatched there too; the
        first successful response wins and the loser finishes (and
        releases its node) in the background — requests are idempotent
        integer programs, so both attempts hold identical bits.  Raises
        :class:`NodeFailure` only when every attempt lost its node; the
        nodes involved are already marked failed.
        """
        outcomes: "queue.Queue" = queue.Queue()

        def run(node: WorkerNode) -> None:
            try:
                results = self._run_on_node(node, endpoint, payloads, deadlines)
            except NodeFailure as failure:
                with self._cond:
                    self._mark_failed(node, str(failure))
                outcomes.put(("fail", failure))
            except BaseException as error:
                # Application errors release the node inside _run_on_node.
                outcomes.put(("error", error))
            else:
                self._release_node(node, ok=True)
                outcomes.put(("ok", results))

        threading.Thread(
            target=run, args=(primary,), name="serve-hedge-primary", daemon=True
        ).start()
        used_hedge = False
        outstanding = 1
        try:
            first = outcomes.get(timeout=self._hedge_trigger_s(endpoint))
        except queue.Empty:
            hedge_node = self._try_claim_free(endpoint, exclude=(primary.name,))
            if hedge_node is not None:
                used_hedge = True
                outstanding += 1
                threading.Thread(
                    target=run, args=(hedge_node,), name="serve-hedge", daemon=True
                ).start()
            first = outcomes.get()
        while True:
            kind, value = first
            outstanding -= 1
            if kind == "ok":
                return value, used_hedge
            if kind == "error":
                raise value
            if outstanding == 0:
                raise value  # NodeFailure: dispatch replays with backoff
            first = outcomes.get()

    def _eligible(self, node: WorkerNode, endpoint: str, digest: str) -> bool:
        pin = node.assignments.get(endpoint)
        return (
            pin is not None
            and pin.digest == digest
            and node.state == "ready"
            and not node.busy
        )

    def _claim_node(
        self, endpoint: str, allow_canary: bool = True, exclude: Tuple[str, ...] = ()
    ) -> Tuple[WorkerNode, str]:
        with self._cond:
            if endpoint not in self._routes:
                raise KeyError(f"no route for endpoint {endpoint!r}")
            while True:
                if not self._running:
                    raise SupervisorError("supervisor is stopped")
                route = self._routes[endpoint]
                role = "primary"
                pool = [
                    n
                    for n in self._nodes.values()
                    if n.name not in exclude
                    and self._eligible(n, endpoint, route.current.digest)
                ]
                if (
                    allow_canary
                    and route.canary is not None
                    and route.canary_served < route.canary_fraction * (route.served + 1)
                ):
                    canary_pool = [
                        n
                        for n in self._nodes.values()
                        if n.name not in exclude
                        and self._eligible(n, endpoint, route.canary.digest)
                    ]
                    if canary_pool:
                        pool, role = canary_pool, "canary"
                if pool:
                    node = pool[route.rr % len(pool)]
                    route.rr += 1
                    route.served += 1
                    if role == "canary":
                        route.canary_served += 1
                    node.busy = True
                    return node, role
                viable = [
                    n
                    for n in self._nodes.values()
                    if n.name not in exclude
                    and n.state in ("starting", "ready", "failed")
                    and any(
                        pin.digest in (route.current.digest, getattr(route.canary, "digest", None))
                        for ep, pin in n.assignments.items()
                        if ep == endpoint
                    )
                ]
                if not viable:
                    raise FleetUnavailableError(
                        f"no live or respawnable node serves {endpoint!r} "
                        f"(states: { {n.name: n.state for n in self._nodes.values()} })"
                    )
                self._cond.wait(0.05)

    def _release_node(self, node: WorkerNode, ok: bool) -> None:
        with self._cond:
            node.busy = False
            if ok:
                node.consecutive_failures = 0
            self._cond.notify_all()

    def _run_on_node(
        self,
        node: WorkerNode,
        endpoint: str,
        payloads: List[np.ndarray],
        deadlines: Optional[List[Optional[float]]] = None,
    ) -> list:
        """One batch on one claimed node; raises :class:`NodeFailure` on loss.

        While a node is busy, its claiming thread is the only pipe
        reader (the watchdog skips busy nodes), so heartbeats emitted
        mid-wait are consumed here and still refresh ``last_seen``.
        """
        with self._cond:
            task_id = self._next_task
            self._next_task += 1
        conn = node.conn
        # Shm dataplane: stage the payloads in the arena and ship only a
        # descriptor.  BOTH slots (request + the response slot the node
        # will write into) are allocated here, parent-side, and released
        # in the finally below — so any exit, including the NodeFailure a
        # kill -9 raises via pipe EOF, reclaims them in full.
        arena = self._arena
        outbound = None
        req_slot = resp_slot = None
        if arena is not None:
            req_slot = arena.acquire(timeout=self.shm_timeout_s)
            try:
                request = arena.write(req_slot, payloads)
                resp_slot = arena.acquire(timeout=self.shm_timeout_s)
                outbound = ("infer_shm", task_id, endpoint, request, resp_slot, deadlines)
            except SlotOverflowError:
                arena.release(req_slot)
                req_slot = None
                with self._cond:
                    self._dataplane["shm_fallbacks"] += 1
            except BaseException:
                arena.release(req_slot)
                raise
        try:
            try:
                with node.send_lock:
                    conn.send(outbound or ("infer", task_id, endpoint, payloads, deadlines))
            except (BrokenPipeError, OSError) as error:
                raise NodeFailure(f"send failed: {error}") from error
            deadline = time.monotonic() + self.batch_timeout_s
            started = time.monotonic()
            while True:
                try:
                    if not conn.poll(0.05):
                        if not node.process.is_alive():
                            raise NodeFailure("process died mid-batch")
                        if time.monotonic() > deadline:
                            raise NodeFailure(
                                f"batch timed out after {self.batch_timeout_s:.1f}s"
                            )
                        continue
                    message = conn.recv()
                except (EOFError, OSError) as error:
                    raise NodeFailure(f"pipe closed mid-batch: {error}") from error
                node.last_seen = time.monotonic()
                op = message[0]
                if op == "hb":
                    continue
                if op == "result" and message[1] == task_id:
                    node.record_service(endpoint, time.monotonic() - started)
                    with self._cond:
                        self._dataplane["pickle_batches"] += 1
                    return message[2]
                if op == "result_shm" and message[1] == task_id:
                    node.record_service(endpoint, time.monotonic() - started)
                    try:
                        (stacked,) = arena.read(message[2])
                    except ShmIntegrityError as error:
                        # Torn/corrupt transport is a node fault, not an
                        # application error: replay on another node.
                        raise NodeFailure(f"shm result corrupted: {error}") from error
                    with self._cond:
                        self._dataplane["shm_batches"] += 1
                    return unpack_results(message[3], stacked)
                if op == "error" and message[1] == task_id:
                    # An application error (bad payload reached a worker) is
                    # not a node failure: the node stays up, the batch fails.
                    self._release_node(node, ok=True)
                    raise SupervisorError(f"endpoint {endpoint!r} raised: {message[2]}")
        finally:
            if resp_slot is not None:
                arena.release(resp_slot)
            if req_slot is not None:
                arena.release(req_slot)

    def _verify_canary(
        self,
        canary_node: WorkerNode,
        endpoint: str,
        payloads: List[np.ndarray],
        canary_results: list,
    ) -> list:
        """Mirror a canary-served batch on an incumbent and compare digests.

        The caller always receives incumbent-equivalent bits: on a match
        the canary results *are* byte-identical, on a mismatch the
        incumbent's results are returned and the canary stage is rolled
        back — a bad deploy can never leak divergent responses.
        """
        self._release_node(canary_node, ok=True)
        if any(isinstance(r, DeadlineMiss) for r in canary_results):
            # A mirror run happens later, so its set of expired rows can
            # legitimately differ — there is no byte-stable digest to
            # compare.  Served rows are still pinned bit-identical by the
            # seeded canary probes; skip the verdict for this batch.
            return canary_results
        mirror_node, _ = self._claim_node(
            endpoint, allow_canary=False, exclude=(canary_node.name,)
        )
        try:
            mirror_results = self._run_on_node(mirror_node, endpoint, payloads)
        except NodeFailure as failure:
            with self._cond:
                self._mark_failed(mirror_node, str(failure))
            return self.dispatch(endpoint, payloads)  # replay path, no verdict
        self._release_node(mirror_node, ok=True)
        with self._cond:
            route = self._routes.get(endpoint)
            matched = response_digest(canary_results) == response_digest(mirror_results)
            if route is not None and route.canary is not None:
                if matched:
                    route.canary_matches += 1
                else:
                    route.canary_mismatches += 1
        if not matched:
            self.rollback(endpoint)
            return mirror_results
        return canary_results

    # ------------------------------------------------------------------
    # Node admin: drain / restart / reset
    # ------------------------------------------------------------------
    def drain_node(self, name: str, timeout: float = 30.0) -> None:
        """Stop routing to a node, wait out its in-flight batch, stop it."""
        deadline = time.monotonic() + timeout
        with self._cond:
            node = self._node(name)
            if node.state not in ("ready", "starting"):
                raise SupervisorError(f"cannot drain node in state {node.state!r}")
            node.state = "draining"
            while node.busy:
                if time.monotonic() > deadline:
                    raise SupervisorError(f"drain of {name!r} timed out")
                self._cond.wait(0.05)
        self._stop_node_process(node)
        with self._cond:
            if node.state == "draining":
                node.state = "stopped"
            self._cond.notify_all()

    def restart_node(
        self, name: str, repin: Optional[Mapping[str, ArtifactPin]] = None
    ) -> None:
        """Respawn a stopped/drained node, optionally on new artifact pins."""
        with self._cond:
            node = self._node(name)
            if node.state not in ("stopped", "broken", "failed"):
                raise SupervisorError(f"cannot restart node in state {node.state!r}")
            if repin:
                node.assignments = {**node.assignments, **dict(repin)}
            node.consecutive_failures = 0
            node.restarts += 1
            self._spawn(node)

    def reset_node(self, name: str) -> None:
        """Clear a tripped circuit breaker and respawn the node."""
        with self._cond:
            node = self._node(name)
            if node.state != "broken":
                raise SupervisorError(f"node {name!r} is {node.state!r}, not broken")
            node.state = "failed"
            node.consecutive_failures = 0
            node.backoff_until = 0.0
            self._cond.notify_all()

    def stall_node(self, name: str, seconds: float) -> None:
        """Chaos hook: wedge a node's serve loop (heartbeats stop)."""
        with self._cond:
            node = self._node(name)
            if node.state != "ready" or node.busy:
                raise SupervisorError(f"can only stall an idle ready node, {name!r} is busy/{node.state}")
        with node.send_lock:
            node.conn.send(("stall", float(seconds)))

    def kill_node(self, name: str) -> int:
        """Chaos hook: SIGKILL a node's process outright; returns the pid."""
        node = self._node(name)
        pid = node.pid
        if pid is None:
            raise SupervisorError(f"node {name!r} has no process")
        os.kill(pid, 9)
        return pid

    def _node(self, name: str) -> WorkerNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; fleet: {sorted(self._nodes)}"
            ) from None

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def busy_nodes(self) -> List[str]:
        with self._cond:
            return [n.name for n in self._nodes.values() if n.busy]

    def artifact_paths(self) -> Dict[str, Path]:
        """endpoint → current artifact path (the stubs' source of truth)."""
        return {ep: route.current.path for ep, route in self._routes.items()}

    # ------------------------------------------------------------------
    # Rolling deploys
    # ------------------------------------------------------------------
    def _resolve_pin(self, endpoint: str, ref: PathLike) -> ArtifactPin:
        """An :class:`ArtifactPin` for a digest ref (via registry) or path."""
        from ..artifacts import read_manifest

        path = Path(ref)
        if not (path / "manifest.json").exists() and self.registry is not None:
            path = self.registry.resolve(str(ref))
        manifest = read_manifest(path)
        meta = manifest["meta"]
        route = self._routes[endpoint]
        current_meta = read_manifest(route.current.path)["meta"]
        for field in ("family", "scenario", "request_shape"):
            if meta.get(field) != current_meta.get(field):
                raise SupervisorError(
                    f"artifact {manifest['digest'][:12]} is not deployable to "
                    f"{endpoint!r}: {field} {meta.get(field)!r} != "
                    f"{current_meta.get(field)!r}"
                )
        return ArtifactPin(path, manifest["digest"])

    def stage_canary(
        self, endpoint: str, ref: PathLike, canary_fraction: float = 0.25
    ) -> str:
        """Restart one node on the new digest and start canary routing.

        Returns the canary node's name.  Live traffic starts flowing to
        the canary at ``canary_fraction`` (deterministic token-bucket
        split), every canary batch mirrored against an incumbent.
        """
        if not 0.0 < canary_fraction <= 1.0:
            raise ValueError(f"canary_fraction must be in (0, 1], got {canary_fraction}")
        pin = self._resolve_pin(endpoint, ref)
        route = self._routes[endpoint]
        if route.canary is not None:
            raise SupervisorError(
                f"a canary for {endpoint!r} is already staged ({route.canary.digest[:12]})"
            )
        with self._cond:
            ready = [n.name for n in self._nodes.values() if n.state == "ready"]
        if len(ready) < 2:
            raise SupervisorError(
                f"rolling deploy needs >= 2 ready nodes, have {len(ready)}"
            )
        canary_name = ready[0]
        self.drain_node(canary_name)
        self.restart_node(canary_name, repin={endpoint: pin})
        self.wait_ready()
        with self._cond:
            route.canary = pin
            route.canary_fraction = canary_fraction
            route.canary_node = canary_name
            route.canary_served = 0
            route.canary_matches = 0
            route.canary_mismatches = 0
        return canary_name

    def run_canary_probes(
        self, endpoint: str, batches: int = 4, seed: int = 0
    ) -> Dict[str, int]:
        """Seeded synthetic batches through canary AND incumbent; compare.

        Raises :class:`CanaryMismatchError` (after rolling the canary
        back) on the first digest divergence.
        """
        from .workers import ArtifactEndpointStub

        route = self._routes[endpoint]
        if route.canary is None:
            raise SupervisorError(f"no canary staged for {endpoint!r}")
        stub = ArtifactEndpointStub(endpoint, route.canary.path)
        rng = np.random.default_rng(seed)
        matches = 0
        for _ in range(batches):
            payloads = [stub.request_payload(stub.synth_request(rng))]
            canary_node = self._claim_pinned(endpoint, route.canary.digest)
            try:
                new_results = self._run_on_node(canary_node, endpoint, payloads)
            finally:
                self._release_node(canary_node, ok=True)
            incumbent = self._claim_pinned(endpoint, route.current.digest)
            try:
                old_results = self._run_on_node(incumbent, endpoint, payloads)
            finally:
                self._release_node(incumbent, ok=True)
            if response_digest(new_results) != response_digest(old_results):
                canary_digest = route.canary.digest
                with self._cond:
                    route.canary_mismatches += 1
                self.rollback(endpoint)
                raise CanaryMismatchError(
                    f"canary {canary_digest[:12]} diverged from incumbent "
                    f"{route.current.digest[:12]} on {endpoint!r} after "
                    f"{matches} matching probes"
                )
            matches += 1
            with self._cond:
                route.canary_matches += 1
        return {"probes": batches, "matches": matches, "mismatches": 0}

    def _claim_pinned(self, endpoint: str, digest: str) -> WorkerNode:
        """Claim any ready node whose pin for ``endpoint`` is ``digest``."""
        deadline = time.monotonic() + self.batch_timeout_s
        with self._cond:
            while True:
                pool = [
                    n for n in self._nodes.values() if self._eligible(n, endpoint, digest)
                ]
                if pool:
                    pool[0].busy = True
                    return pool[0]
                if time.monotonic() > deadline:
                    raise FleetUnavailableError(
                        f"no ready node pinned to {digest[:12]} for {endpoint!r}"
                    )
                self._cond.wait(0.05)

    def promote(self, endpoint: str) -> Dict[str, object]:
        """Roll every remaining node to the canary digest; swap pointers."""
        route = self._routes[endpoint]
        if route.canary is None:
            raise SupervisorError(f"no canary staged for {endpoint!r}")
        new_pin = route.canary
        rolled = []
        for name in list(self._nodes):
            node = self._nodes[name]
            if node.assignments.get(endpoint, new_pin).digest == new_pin.digest:
                continue
            self.drain_node(name)
            self.restart_node(name, repin={endpoint: new_pin})
            self.wait_ready()
            rolled.append(name)
        with self._cond:
            route.previous = route.current.digest
            route.current = new_pin
            route.canary = None
            route.canary_fraction = 0.0
            route.canary_node = None
        if self.registry is not None:
            self.registry.set_pointer(endpoint, new_pin.digest)
        return {
            "endpoint": endpoint,
            "digest": new_pin.digest,
            "previous": route.previous,
            "rolled_nodes": rolled,
            "canary_matches": route.canary_matches,
            "canary_mismatches": route.canary_mismatches,
        }

    def deploy(
        self,
        endpoint: str,
        ref: PathLike,
        canary_fraction: float = 0.25,
        canary_batches: int = 4,
        seed: int = 0,
    ) -> Dict[str, object]:
        """The full rolling deploy: stage → probe → promote.

        Drains one node onto the new digest, compares ``canary_batches``
        seeded probe batches (plus whatever live traffic the canary
        fraction routes meanwhile) digest-for-digest against the
        incumbent, then rolls the rest of the fleet one node at a time.
        Any mismatch rolls the canary back and raises
        :class:`CanaryMismatchError` — the incumbent never stopped
        serving, so the failed deploy is invisible to callers.
        """
        canary_name = self.stage_canary(endpoint, ref, canary_fraction)
        probe = self.run_canary_probes(endpoint, batches=canary_batches, seed=seed)
        report = self.promote(endpoint)
        report["canary_node"] = canary_name
        report["probes"] = probe["probes"]
        return report

    def rollback(self, endpoint: str) -> Dict[str, object]:
        """Instant rollback: staged canary is unstaged, else pointer swap."""
        route = self._routes[endpoint]
        with self._cond:
            staged = route.canary is not None
            canary_pin = route.canary
            canary_node = route.canary_node
            route.canary = None
            route.canary_fraction = 0.0
            route.canary_node = None
        if staged:
            # Un-stage: put the canary node back on the incumbent digest.
            for name, node in self._nodes.items():
                if canary_node is not None and name != canary_node:
                    continue
                if node.assignments.get(endpoint) is None:
                    continue
                if canary_pin and node.assignments[endpoint].digest != canary_pin.digest:
                    continue
                try:
                    self.drain_node(name)
                except SupervisorError:
                    pass  # already failed/stopped; restart_node repins anyway
                self.restart_node(name, repin={endpoint: route.current})
            self.wait_ready()
            return {"endpoint": endpoint, "unstaged": True, "digest": route.current.digest}
        if route.previous is None:
            raise SupervisorError(f"no previous digest recorded for {endpoint!r}")
        if self.registry is None:
            raise SupervisorError("rollback across digests needs a registry")
        previous_path = self.registry.resolve(route.previous)
        pin = ArtifactPin(previous_path, route.previous)
        for name in list(self._nodes):
            node = self._nodes[name]
            if node.assignments.get(endpoint, pin).digest == pin.digest:
                continue
            self.drain_node(name)
            self.restart_node(name, repin={endpoint: pin})
            self.wait_ready()
        with self._cond:
            route.previous = route.current.digest
            route.current = pin
        self.registry.swap_pointer(endpoint)
        return {"endpoint": endpoint, "unstaged": False, "digest": pin.digest}

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Fleet health: per-node state + per-endpoint latency and routes."""
        with self._cond:
            now = time.monotonic()
            nodes = {}
            for node in self._nodes.values():
                latency = {}
                for endpoint, times in node.service_times.items():
                    values = list(times)
                    latency[endpoint] = {
                        "batches": len(values),
                        "p50_s": percentile(values, 50),
                        "p95_s": percentile(values, 95),
                    }
                nodes[node.name] = {
                    "state": node.state,
                    "pid": node.pid,
                    "busy": node.busy,
                    "restarts": node.restarts,
                    "consecutive_failures": node.consecutive_failures,
                    "last_seen_age_s": max(0.0, now - node.last_seen),
                    "last_error": node.last_error,
                    "batches_served": node.batches_served,
                    "endpoints": {
                        ep: pin.digest[:12] for ep, pin in node.assignments.items()
                    },
                    "latency": latency,
                }
            routes = {}
            for endpoint, route in self._routes.items():
                routes[endpoint] = {
                    "current": route.current.digest,
                    "previous": route.previous,
                    "canary": route.canary.digest if route.canary else None,
                    "canary_node": route.canary_node,
                    "canary_fraction": route.canary_fraction,
                    "served": route.served,
                    "canary_served": route.canary_served,
                    "canary_matches": route.canary_matches,
                    "canary_mismatches": route.canary_mismatches,
                }
            dataplane = dict(self._dataplane)
            dataplane["transport"] = "shm" if self._arena is not None else "pipe"
            dataplane["arena_slots"] = self._arena.slots if self._arena else 0
            dataplane["arena_in_use"] = self._arena.in_use() if self._arena else 0
            return {
                "running": self._running,
                "nodes": nodes,
                "routes": routes,
                "dataplane": dataplane,
            }

    def __repr__(self) -> str:
        with self._cond:
            states = {n.name: n.state for n in self._nodes.values()}
        return f"ServeSupervisor(nodes={states}, endpoints={sorted(self._routes)})"


# ----------------------------------------------------------------------
# Wiring: supervisor-backed InferenceService, registry boot
# ----------------------------------------------------------------------


def supervisor_from_registry(
    families: Sequence[str] = ("bert", "llama", "segformer"),
    registry=None,
    nodes: int = 2,
    seed: int = 0,
    gs: int = 2,
    **kwargs,
) -> ServeSupervisor:
    """A fleet over registry pointers, compiling whatever is missing.

    Each family routes to its registry pointer when one is set (so a
    promoted deploy survives restarts); otherwise the artifact is
    compiled/located and the pointer initialized — deploys from here on
    are pointer swaps.
    """
    from ..artifacts import ArtifactRegistry, ensure_artifact, read_manifest

    registry = registry if registry is not None else ArtifactRegistry()
    assignments: Dict[str, Path] = {}
    for family in families:
        pointer = registry.pointer(family)
        if pointer is not None:
            try:
                assignments[family] = registry.resolve(pointer["current"])
                continue
            except KeyError:
                pass  # pointer target was gc'd/removed; fall through
        path = ensure_artifact(registry, family, seed=seed, gs=gs)
        registry.set_pointer(family, read_manifest(path)["digest"])
        assignments[family] = path
    return ServeSupervisor(assignments, nodes=nodes, registry=registry, **kwargs)


def supervised_service(
    supervisor_or_assignments,
    policy: Optional[BatchPolicy] = None,
    nodes: int = 2,
    dispatch_threads: Optional[int] = None,
    shutdown_supervisor: Optional[bool] = None,
    admin_port: Optional[int] = None,
    **service_kwargs,
) -> InferenceService:
    """An :class:`InferenceService` dispatching through a supervised fleet.

    Accepts either a running/unstarted :class:`ServeSupervisor` or a
    plain ``{endpoint: artifact path}`` mapping (a fleet of ``nodes``
    workers is built and owned by the service).  The parent keeps only
    manifest-backed stubs; every coalesced batch routes through
    :meth:`ServeSupervisor.dispatch`, so crashed workers replay instead
    of failing requests.

    ``admin_port`` mounts the HTTP admin plane on the service (0 =
    ephemeral port, read back from ``service.admin.port``); when omitted
    the ``REPRO_ADMIN_PORT`` environment default applies.  The admin
    server is closed by the service's own shutdown.
    """
    from .admin import admin_port_from_env, mount_admin
    from .workers import stub_registry

    if isinstance(supervisor_or_assignments, ServeSupervisor):
        supervisor = supervisor_or_assignments
        owns = False if shutdown_supervisor is None else shutdown_supervisor
    else:
        supervisor = ServeSupervisor(supervisor_or_assignments, nodes=nodes)
        owns = True if shutdown_supervisor is None else shutdown_supervisor
    if not supervisor._running:
        supervisor.start()
    service = InferenceService(
        stub_registry(supervisor.artifact_paths()),
        policy=policy,
        workers=dispatch_threads or len(supervisor.node_names()),
        dispatcher=supervisor.dispatch,
        **service_kwargs,
    )
    service.supervisor = supervisor
    if owns:
        service.on_shutdown(supervisor.stop)
    if admin_port is None:
        admin_port = admin_port_from_env()
    if admin_port is not None:
        mount_admin(service, port=admin_port)
    return service


def format_status(status: Dict[str, object]) -> str:
    """Human-readable fleet status (what ``serve-admin status`` prints)."""
    lines = [f"fleet: {'running' if status['running'] else 'stopped'}"]
    dataplane = status.get("dataplane")
    if dataplane:
        lines.append(
            f"dataplane: {dataplane['transport']} "
            f"shm={dataplane['shm_batches']} pickle={dataplane['pickle_batches']} "
            f"fallbacks={dataplane['shm_fallbacks']} "
            f"slots={dataplane['arena_in_use']}/{dataplane['arena_slots']}"
        )
    lines.append("nodes:")
    for name, node in status["nodes"].items():
        lines.append(
            f"  {name:<10} {node['state']:<9} pid={node['pid']} "
            f"restarts={node['restarts']} failures={node['consecutive_failures']} "
            f"served={node['batches_served']} "
            f"hb_age={node['last_seen_age_s'] * 1e3:6.0f} ms"
        )
        for endpoint, digest in node["endpoints"].items():
            latency = node["latency"].get(endpoint)
            tail = (
                f" p50={latency['p50_s'] * 1e3:6.1f} ms p95={latency['p95_s'] * 1e3:6.1f} ms"
                if latency
                else ""
            )
            lines.append(f"    {endpoint:<12} @{digest}{tail}")
        if node["last_error"]:
            lines.append(f"    last error: {node['last_error']}")
    lines.append("routes:")
    for endpoint, route in status["routes"].items():
        lines.append(
            f"  {endpoint:<12} current={route['current'][:12]} "
            f"previous={(route['previous'] or '-')[:12]} served={route['served']}"
        )
        if route["canary"]:
            lines.append(
                f"    canary {route['canary'][:12]} on {route['canary_node']} "
                f"fraction={route['canary_fraction']:.2f} "
                f"matches={route['canary_matches']} mismatches={route['canary_mismatches']}"
            )
    return "\n".join(lines)


#: Re-exported for the CLI / tests that want the raw hook.
__all__ = [
    "ArtifactPin",
    "CanaryMismatchError",
    "FleetUnavailableError",
    "NodeFailure",
    "RetryPolicy",
    "RouteState",
    "ServeSupervisor",
    "SupervisorError",
    "WorkerNode",
    "format_status",
    "response_digest",
    "supervised_service",
    "supervisor_from_registry",
]
