"""Live admin plane: HTTP introspection over a running service.

:class:`AdminServer` mounts a stdlib-only (``http.server`` + ``json``)
HTTP endpoint on a live :class:`~repro.serve.service.InferenceService`
and serves four routes:

- ``GET /status`` — the full ``service.status()`` snapshot as JSON:
  state, per-key queue depths, per-bucket coalescing stats, latency
  percentiles, shed/deadline/hedge counters, generation and act-cache
  metrics, the shm/pickle dataplane counters and (when supervised) the
  fleet's node health with pinned artifact digests.
- ``GET /metrics`` — Prometheus-style text exposition of the same
  counters (``repro_serve_*``), scrapeable by anything that speaks the
  format.
- ``GET /trace`` — the tracer's ring of finished per-request span
  chains (admit → queue → coalesce → transport → engine → respond, plus
  retry/hedge/dataplane/decode-step events).  Empty unless sampling is
  on (``REPRO_TRACE_SAMPLE``).
- ``POST /reload`` — artifact hot-swap through the supervisor's
  existing deploy path (stage canary → probe → promote); a canary
  digest mismatch answers 409 and leaves the incumbent serving.

The server binds loopback only, threads per request (scrapes never
queue behind each other), and every handler reads through the service's
own thread-safe snapshot paths — a scrape takes the service lock for
exactly one snapshot, never across a dispatch.

Mount one with :func:`mount_admin` (port 0 = ephemeral), or pass
``admin_port=``/``--admin-port`` to ``supervised_service``/
``serve-bench``; ``REPRO_ADMIN_PORT`` mounts one on every supervised
service without code changes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse
from urllib.request import Request, urlopen


def admin_port_from_env(environ=None) -> Optional[int]:
    """The ``REPRO_ADMIN_PORT`` port, or ``None`` when unset (off)."""
    env = environ if environ is not None else os.environ
    raw = env.get("REPRO_ADMIN_PORT", "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_ADMIN_PORT must be an integer, got {raw!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"REPRO_ADMIN_PORT must be in [0, 65535], got {port}")
    return port


def _json_default(value):
    return str(value)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels(**labels) -> str:
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}" if inner else ""


def render_prometheus(status: dict) -> str:
    """Render a ``service.status()`` snapshot as Prometheus text format.

    One line per sample, ``repro_serve_`` prefix throughout; labels for
    endpoint/quantile/reason/stage/lane/node dimensions.  Pure function
    of the snapshot, so it is exactly as fresh (and as consistent) as
    one ``/status`` scrape.
    """
    lines = []

    def sample(name: str, value, **labels) -> None:
        lines.append(f"repro_serve_{name}{_labels(**labels)} {value}")

    metrics = status.get("metrics", {})
    sample("up", 1 if status.get("state") == "running" else 0)
    sample("snapshot_seq", metrics.get("snapshot_seq", 0))
    sample("snapshot_timestamp_seconds", metrics.get("ts", 0.0))
    sample("queue_depth", status.get("queue_depth", 0))
    for counter in ("submitted", "completed", "rejected", "failed", "retried"):
        sample(f"{counter}_total", metrics.get(counter, 0))
    sample("hedged_batches_total", metrics.get("hedged", 0))
    sample("peak_queue_depth", metrics.get("peak_queue_depth", 0))
    sample("throughput_rps", metrics.get("throughput_rps", 0.0))
    for name, ep in metrics.get("endpoints", {}).items():
        sample("requests_total", ep.get("requests", 0), endpoint=name)
        sample("batches_total", ep.get("batches", 0), endpoint=name)
        sample("mean_batch_size", ep.get("mean_batch", 0.0), endpoint=name)
        sample("queue_wait_seconds_mean", ep.get("mean_queue_s", 0.0), endpoint=name)
        sample("service_seconds_mean", ep.get("mean_service_s", 0.0), endpoint=name)
        latency = ep.get("latency", {})
        for quantile, key in (("0.5", "p50_s"), ("0.95", "p95_s"), ("0.99", "p99_s")):
            sample(
                "latency_seconds",
                latency.get(key, 0.0),
                endpoint=name,
                quantile=quantile,
            )
        sample("latency_seconds_max", latency.get("max_s", 0.0), endpoint=name)
        gen = ep.get("generation")
        if gen:
            sample("generation_sequences_total", gen.get("sequences", 0), endpoint=name)
            sample("generation_tokens_total", gen.get("tokens", 0), endpoint=name)
            sample("generation_steps_total", gen.get("steps", 0), endpoint=name)
            sample("generation_tokens_per_s", gen.get("tokens_per_s", 0.0), endpoint=name)
            sample(
                "generation_mean_live_batch",
                gen.get("mean_live_batch", 0.0),
                endpoint=name,
            )
        cache = ep.get("act_cache")
        if cache:
            sample("act_cache_hits_total", cache.get("hits", 0), endpoint=name)
            sample("act_cache_misses_total", cache.get("misses", 0), endpoint=name)
    shed = metrics.get("shed", {})
    sample("shed_total", shed.get("total", 0))
    for reason, n in shed.get("by_reason", {}).items():
        sample("shed_requests_total", n, reason=reason)
    deadline = metrics.get("deadline_exceeded", {})
    sample("deadline_exceeded_total", deadline.get("total", 0))
    for stage, n in deadline.get("by_stage", {}).items():
        sample("deadline_exceeded_requests_total", n, stage=stage)
    trace = status.get("trace")
    if trace:
        sample("trace_sample_rate", trace.get("sample", 0.0))
        sample("traces_sampled_total", trace.get("sampled", 0))
        sample("trace_ring_size", trace.get("ring", 0))
    dataplane = status.get("dataplane") or (status.get("fleet") or {}).get("dataplane")
    if dataplane:
        for lane in ("shm", "pickle"):
            sample("dataplane_batches_total", dataplane.get(f"{lane}_batches", 0), lane=lane)
        sample("shm_fallbacks_total", dataplane.get("shm_fallbacks", 0))
        sample("arena_slots", dataplane.get("arena_slots", 0))
        sample("arena_slots_in_use", dataplane.get("arena_in_use", 0))
    fleet = status.get("fleet")
    if fleet:
        sample("fleet_running", 1 if fleet.get("running") else 0)
        for name, node in fleet.get("nodes", {}).items():
            sample("node_up", 1 if node.get("state") == "ready" else 0, node=name)
            sample("node_busy", 1 if node.get("busy") else 0, node=name)
            sample("node_restarts_total", node.get("restarts", 0), node=name)
            sample("node_batches_served_total", node.get("batches_served", 0), node=name)
            sample(
                "node_heartbeat_age_seconds",
                node.get("last_seen_age_s", 0.0),
                node=name,
            )
        for endpoint, route in fleet.get("routes", {}).items():
            sample("route_served_total", route.get("served", 0), endpoint=endpoint)
            sample(
                "canary_mismatches_total",
                route.get("canary_mismatches", 0),
                endpoint=endpoint,
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The HTTP server
# ----------------------------------------------------------------------


class AdminServer:
    """Threaded loopback HTTP server bound to one live service."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "AdminServer":
        if self._thread is not None:
            raise RuntimeError("admin server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-admin-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Idempotent shutdown (registered as a service shutdown hook)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join()
        if not self._closed:
            self._closed = True
            self._httpd.server_close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    # -- handler -------------------------------------------------------
    def _make_handler(self):
        admin = self

        class Handler(BaseHTTPRequestHandler):
            server_version = "repro-serve-admin"
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002 - stdlib API
                pass  # scrapes are telemetry, not stdout traffic

            def _reply(self, code: int, body: bytes, content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _reply_json(self, code: int, payload) -> None:
                body = json.dumps(payload, default=_json_default).encode()
                self._reply(code, body, "application/json")

            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                parsed = urlparse(self.path)
                try:
                    if parsed.path == "/status":
                        self._reply_json(200, admin.service.status())
                    elif parsed.path == "/metrics":
                        text = render_prometheus(admin.service.status())
                        self._reply(200, text.encode(), "text/plain; version=0.0.4")
                    elif parsed.path == "/trace":
                        query = parse_qs(parsed.query)
                        limit = None
                        if "limit" in query:
                            limit = int(query["limit"][0])
                        tracer = admin.service.tracer
                        self._reply_json(
                            200,
                            {
                                "sample": tracer.rate,
                                **tracer.counters(),
                                "traces": tracer.snapshot(limit=limit),
                            },
                        )
                    elif parsed.path == "/healthz":
                        self._reply_json(200, {"state": admin.service.state})
                    else:
                        self._reply_json(404, {"error": f"no route {parsed.path!r}"})
                except BrokenPipeError:
                    pass  # scraper went away mid-reply
                except Exception as error:  # surface, never kill the server
                    self._reply_json(500, {"error": f"{type(error).__name__}: {error}"})

            def do_POST(self) -> None:  # noqa: N802 - stdlib API
                parsed = urlparse(self.path)
                try:
                    if parsed.path != "/reload":
                        self._reply_json(404, {"error": f"no route {parsed.path!r}"})
                        return
                    self._reply_reload(parsed)
                except BrokenPipeError:
                    pass
                except Exception as error:
                    self._reply_json(500, {"error": f"{type(error).__name__}: {error}"})

            def _reply_reload(self, parsed) -> None:
                from .supervisor import CanaryMismatchError, SupervisorError

                supervisor = admin.service.supervisor
                if supervisor is None:
                    self._reply_json(
                        503, {"error": "no supervisor attached: reload needs a fleet"}
                    )
                    return
                params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    try:
                        params.update(json.loads(self.rfile.read(length) or b"{}"))
                    except json.JSONDecodeError as error:
                        self._reply_json(400, {"error": f"bad JSON body: {error}"})
                        return
                ref = params.get("ref") or params.get("digest")
                if not ref:
                    self._reply_json(
                        400,
                        {"error": "reload needs an artifact digest: "
                                  '{"ref": "<digest-or-prefix>"}'},
                    )
                    return
                endpoint = params.get("endpoint")
                if not endpoint:
                    served = list(supervisor.artifact_paths())
                    if len(served) != 1:
                        self._reply_json(
                            400,
                            {"error": "fleet serves multiple endpoints; "
                                      f'pick one of {served} via "endpoint"'},
                        )
                        return
                    endpoint = served[0]
                try:
                    report = supervisor.deploy(
                        endpoint,
                        ref,
                        canary_fraction=float(params.get("canary_fraction", 0.25)),
                        canary_batches=int(params.get("canary_batches", 4)),
                    )
                except CanaryMismatchError as error:
                    self._reply_json(409, {"error": str(error), "rolled_back": True})
                    return
                except (SupervisorError, KeyError, FileNotFoundError) as error:
                    self._reply_json(400, {"error": f"{type(error).__name__}: {error}"})
                    return
                self._reply_json(200, {"deployed": report})

        return Handler


def mount_admin(service, port: int = 0, host: str = "127.0.0.1") -> AdminServer:
    """Start an :class:`AdminServer` on ``service``; dies with the service.

    Port 0 binds an ephemeral port (read it back from ``server.port``).
    The server is registered as a shutdown hook, so ``drain()``/
    ``abort()`` closes it — no separate lifecycle to manage.
    """
    server = AdminServer(service, host=host, port=port).start()
    service.on_shutdown(server.close)
    service.admin = server
    return server


# ----------------------------------------------------------------------
# Client helpers (the `serve-admin watch` / `reload` verbs)
# ----------------------------------------------------------------------


def fetch_json(url: str, timeout: float = 10.0) -> dict:
    """GET ``url`` and decode the JSON payload (loopback admin traffic)."""
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - loopback admin
        return json.loads(response.read())


def fetch_text(url: str, timeout: float = 10.0) -> str:
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - loopback admin
        return response.read().decode()


def post_reload(
    base_url: str,
    ref: str,
    endpoint: Optional[str] = None,
    canary_fraction: float = 0.25,
    canary_batches: int = 4,
    timeout: float = 300.0,
) -> tuple:
    """POST ``/reload``; returns ``(http_status, decoded payload)``.

    Deploy errors come back as structured payloads (409 for a canary
    mismatch), not exceptions — the CLI turns them into exit codes.
    """
    body = {
        "ref": ref,
        "canary_fraction": canary_fraction,
        "canary_batches": canary_batches,
    }
    if endpoint:
        body["endpoint"] = endpoint
    request = Request(
        base_url.rstrip("/") + "/reload",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urlopen(request, timeout=timeout) as response:  # noqa: S310
            return response.status, json.loads(response.read())
    except Exception as error:
        status = getattr(error, "code", None)
        if status is None:
            raise
        return status, json.loads(error.read())


def format_live_status(status: dict) -> str:
    """Human-readable rendering of one ``/status`` payload (watch frame)."""
    from .supervisor import format_status

    metrics = status.get("metrics", {})
    lines = [
        f"service: {status.get('state', '?')}  "
        f"queue={status.get('queue_depth', 0)}  "
        f"snapshot#{metrics.get('snapshot_seq', 0)}",
        f"requests: submitted={metrics.get('submitted', 0)} "
        f"completed={metrics.get('completed', 0)} "
        f"rejected={metrics.get('rejected', 0)} "
        f"failed={metrics.get('failed', 0)} "
        f"shed={metrics.get('shed', {}).get('total', 0)} "
        f"deadline={metrics.get('deadline_exceeded', {}).get('total', 0)} "
        f"retried={metrics.get('retried', 0)} hedged={metrics.get('hedged', 0)}",
    ]
    for name, ep in metrics.get("endpoints", {}).items():
        latency = ep.get("latency", {})
        lines.append(
            f"  {name:<12} n={ep.get('requests', 0):<6} "
            f"p50={latency.get('p50_s', 0.0) * 1e3:7.1f} ms "
            f"p99={latency.get('p99_s', 0.0) * 1e3:7.1f} ms "
            f"batch={ep.get('mean_batch', 0.0):.1f}"
        )
    trace = status.get("trace")
    if trace:
        lines.append(
            f"trace: sample={trace.get('sample', 0.0)} "
            f"sampled={trace.get('sampled', 0)} ring={trace.get('ring', 0)}"
        )
    fleet = status.get("fleet")
    if fleet:
        lines.append(format_status(fleet))
    return "\n".join(lines)


def watch(
    url: str,
    interval_s: float = 1.0,
    count: int = 0,
    out=print,
    clear: bool = True,
) -> int:
    """Poll ``/status`` and render frames until ``count`` (0 = forever).

    The staleness check rides on ``snapshot_seq``: a frame whose
    sequence did not advance past the previous frame's is reported as
    stale rather than silently redrawn.
    """
    status_url = url.rstrip("/") + "/status"
    frames = 0
    last_seq = -1
    while True:
        status = fetch_json(status_url)
        seq = status.get("metrics", {}).get("snapshot_seq", 0)
        frame = format_live_status(status)
        if clear:
            out("\x1b[2J\x1b[H" + frame)
        else:
            out(frame)
        if seq <= last_seq:
            out(f"(stale snapshot: seq {seq} <= {last_seq})")
        last_seq = seq
        frames += 1
        if count and frames >= count:
            return frames
        time.sleep(interval_s)
