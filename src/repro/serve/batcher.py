"""Request coalescing: key-partitioned FIFO queues under a batch policy.

The :class:`MicroBatcher` holds pending requests in one FIFO deque per
coalescing key — ``(endpoint, payload shape)`` or ``(endpoint,
("bucket", length))`` for bucketed scoring traffic, since only payloads
that can stack (exactly or after in-bucket padding) may share a planner
pass.  A queue becomes *ready* when it holds a full batch (``max_batch``)
or its oldest request has waited ``max_delay_s`` (the classic
size-or-timeout micro-batching policy); ``pop_ready`` always serves the
ready queue whose head request is oldest, so dispatch stays FIFO-fair
across keys.

Readiness is tracked by two lazy-deletion min-heaps ordered by head
enqueue time — one over every non-empty queue, one over full queues — so
``pop_ready`` and ``next_deadline`` are O(log keys) amortized instead of
the O(keys) linear scan they replaced (bucketed variable-length traffic
multiplies live keys, which made that scan a per-dispatch tax).  Heap
entries are invalidated by *head change*: each entry pins the head
timestamp it saw, and any pop moves the head, so stale entries fail the
comparison and are discarded on the next peek.

The batcher is a pure data structure — no locks, no threads.  The
service serializes access under its own condition variable, which keeps
the coalescing decisions deterministic and directly unit-testable.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """When does a partially-filled queue dispatch?

    ``max_batch`` caps the coalesced batch size; ``max_delay_s`` bounds
    how long the oldest request may wait for co-riders.  ``max_batch=1``
    degenerates to sequential single-request dispatch (the baseline the
    serve bench compares against).
    """

    max_batch: int = 16
    max_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")


@dataclass(eq=False)
class PendingRequest:
    """One queued request: payload + identity + completion slot."""

    request_id: int
    endpoint: str
    payload: np.ndarray
    enqueued_at: float
    future: object = None


@dataclass(eq=False)
class Batch:
    """A coalesced dispatch unit: same endpoint, same coalescing key."""

    key: tuple
    endpoint: str
    requests: List[PendingRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Key-partitioned FIFO queues with the size-or-timeout ready rule."""

    def __init__(self, policy: Optional[BatchPolicy] = None) -> None:
        self.policy = policy or BatchPolicy()
        self._queues: Dict[tuple, Deque[PendingRequest]] = {}
        self._depth = 0
        # Lazy-deletion heaps of (head_enqueued_at, seq, key).  ``seq`` is
        # a strictly increasing push counter: it breaks timestamp ties
        # deterministically AND keeps heterogeneous keys (shape tuples vs
        # ("bucket", n)) out of the comparison entirely.
        self._heads: List[Tuple[float, int, tuple]] = []
        self._full: List[Tuple[float, int, tuple]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    def _push(self, heap: List[Tuple[float, int, tuple]], key: tuple) -> None:
        heapq.heappush(heap, (self._queues[key][0].enqueued_at, self._seq, key))
        self._seq += 1

    def _peek(
        self, heap: List[Tuple[float, int, tuple]], full: bool = False
    ) -> Optional[Tuple[float, tuple]]:
        """Top live entry, discarding stale ones (head moved or queue gone).

        An entry is live while its queue still has the pinned head
        timestamp.  Ties make that test too weak for the full heap —
        different requests can share a timestamp, so a post-pop remainder
        can impersonate the pinned head — hence full-heap entries also
        re-check the actual length (a queue only shrinks by popping, and
        every pop that leaves a full backlog re-registers it, so
        discarding a short entry never loses a full queue).
        """
        while heap:
            head_at, _, key = heap[0]
            queue = self._queues.get(key)
            if (
                queue
                and queue[0].enqueued_at == head_at
                and (not full or len(queue) >= self.policy.max_batch)
            ):
                return head_at, key
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    def put(self, key: tuple, pending: PendingRequest) -> int:
        """Enqueue under ``key``; returns the total queued depth."""
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
        queue.append(pending)
        self._depth += 1
        if len(queue) == 1:
            self._push(self._heads, key)
        if len(queue) == self.policy.max_batch:
            self._push(self._full, key)
        return self._depth

    def depth(self) -> int:
        """Total requests currently queued (all keys)."""
        return self._depth

    def key_depths(self) -> dict:
        return {key: len(q) for key, q in self._queues.items() if q}

    # ------------------------------------------------------------------
    def pop_ready(self, now: float, flush: bool = False) -> Optional[Batch]:
        """Dispatch the ready queue with the oldest head, if any.

        With ``flush=True`` every non-empty queue is ready (graceful
        drain).  Pops at most ``max_batch`` requests; a queue holding more
        stays ready for the next call.

        FIFO fairness falls out of the heap order: the global oldest head
        is served whenever it is ready, and when it is not (young + below
        ``max_batch``) no *older* head can be ready either, so serving
        the oldest *full* queue is exactly the original oldest-ready-head
        rule.
        """
        top = self._peek(self._heads)
        if top is None:
            return None
        head_at, key = top
        if (
            flush
            or (now - head_at) >= self.policy.max_delay_s
            or len(self._queues[key]) >= self.policy.max_batch
        ):
            return self._pop_from(key)
        full_top = self._peek(self._full, full=True)
        if full_top is not None:
            return self._pop_from(full_top[1])
        return None

    def _pop_from(self, key: tuple) -> Batch:
        queue = self._queues[key]
        batch = Batch(key=key, endpoint=key[0])
        while queue and len(batch.requests) < self.policy.max_batch:
            batch.requests.append(queue.popleft())
        if queue:
            # The survivors got a new head: re-register it (and its
            # fullness, if the backlog still tops a whole batch).
            self._push(self._heads, key)
            if len(queue) >= self.policy.max_batch:
                self._push(self._full, key)
        else:
            del self._queues[key]
        self._depth -= len(batch.requests)
        return batch

    def next_deadline(self, now: float) -> Optional[float]:
        """Earliest moment some queue becomes ready; ``now`` if one is.

        ``None`` means nothing is queued — the dispatch loop can sleep
        until the next enqueue wakes it.
        """
        if self._peek(self._full, full=True) is not None:
            return now
        top = self._peek(self._heads)
        if top is None:
            return None
        return top[0] + self.policy.max_delay_s

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(depth={self._depth}, "
            f"keys={len(self.key_depths())}, policy={self.policy})"
        )
