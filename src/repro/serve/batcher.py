"""Request coalescing: key-partitioned FIFO queues under a batch policy.

The :class:`MicroBatcher` holds pending requests in one FIFO deque per
coalescing key — ``(endpoint, payload shape)`` or ``(endpoint,
("bucket", length))`` for bucketed scoring traffic, since only payloads
that can stack (exactly or after in-bucket padding) may share a planner
pass.  A queue becomes *ready* when it holds a full batch (``max_batch``)
or its oldest request has waited ``max_delay_s`` (the classic
size-or-timeout micro-batching policy); ``pop_ready`` always serves the
ready queue whose head request is oldest, so dispatch stays FIFO-fair
across keys.

Readiness is tracked by two lazy-deletion min-heaps ordered by head
enqueue time — one over every non-empty queue, one over full queues — so
``pop_ready`` and ``next_deadline`` are O(log keys) amortized instead of
the O(keys) linear scan they replaced (bucketed variable-length traffic
multiplies live keys, which made that scan a per-dispatch tax).  Heap
entries are invalidated by *head change*: each entry pins the head
timestamp it saw, and any pop moves the head, so stale entries fail the
comparison and are discarded on the next peek.

Requests additionally carry a *lifecycle*: an optional absolute deadline
and a priority.  Two more lazy-deletion heaps track them — a deadline
min-heap so :meth:`expire` can retire past-due work in O(log n) without
scanning queues, and a per-endpoint priority heap so admission control
can :meth:`shed_lowest` when an SLO budget is breached.  A request
leaves the queued state exactly once (dispatched, expired, or shed);
dead entries are skipped lazily everywhere and purged eagerly only at
queue heads, where they would otherwise corrupt the head-timestamp
invalidation rule.

The batcher is a pure data structure — no locks, no threads.  The
service serializes access under its own condition variable, which keeps
the coalescing decisions deterministic and directly unit-testable.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """When does a partially-filled queue dispatch?

    ``max_batch`` caps the coalesced batch size; ``max_delay_s`` bounds
    how long the oldest request may wait for co-riders.  ``max_batch=1``
    degenerates to sequential single-request dispatch (the baseline the
    serve bench compares against).
    """

    max_batch: int = 16
    max_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")


@dataclass(eq=False)
class PendingRequest:
    """One queued request: payload + identity + lifecycle + completion slot.

    ``deadline_at`` is an absolute ``time.monotonic()`` instant (or
    ``None`` for no deadline); ``priority`` orders shedding — higher
    values survive longer.  ``state`` is the lifecycle flag the lazy
    heaps test: ``"queued"`` entries are live, anything else
    (``"dispatched"``, ``"expired"``, ``"shed"``) is dead and skipped.
    """

    request_id: int
    endpoint: str
    payload: np.ndarray
    enqueued_at: float
    future: object = None
    deadline_at: Optional[float] = None
    priority: int = 0
    state: str = "queued"
    #: Sampled span chain (``repro.serve.trace.RequestTrace``) or None
    #: for the unsampled common case; the batcher stamps queue/coalesce
    #: events on it.
    trace: Optional[object] = None


@dataclass(eq=False)
class Batch:
    """A coalesced dispatch unit: same endpoint, same coalescing key."""

    key: tuple
    endpoint: str
    requests: List[PendingRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Key-partitioned FIFO queues with the size-or-timeout ready rule."""

    def __init__(self, policy: Optional[BatchPolicy] = None) -> None:
        self.policy = policy or BatchPolicy()
        self._queues: Dict[tuple, Deque[PendingRequest]] = {}
        self._depth = 0
        # Lazy-deletion heaps of (head_enqueued_at, seq, key).  ``seq`` is
        # a strictly increasing push counter: it breaks timestamp ties
        # deterministically AND keeps heterogeneous keys (shape tuples vs
        # ("bucket", n)) out of the comparison entirely.
        self._heads: List[Tuple[float, int, tuple]] = []
        self._full: List[Tuple[float, int, tuple]] = []
        self._seq = 0
        # Live (still-queued) request counts.  Deques may hold dead
        # entries mid-queue, so ``len(queue)`` overcounts; every fullness
        # and depth decision reads these instead.
        self._live: Dict[tuple, int] = {}
        self._endpoint_live: Dict[str, int] = {}
        # Lifecycle heaps, lazy-deleted via ``pending.state``:
        # (deadline_at, seq, key, pending) ordered soonest-first, and a
        # per-endpoint (priority, -seq, key, pending) heap ordered
        # lowest-priority-then-youngest-first for shedding.
        self._deadlines: List[Tuple[float, int, tuple, PendingRequest]] = []
        self._prio: Dict[str, List[Tuple[int, int, tuple, PendingRequest]]] = {}
        #: Optional ``estimator(endpoint) -> seconds`` the service wires
        #: in: the expected batch service time.  With it, ``_pop_from``
        #: refuses to coalesce a request into a batch that cannot finish
        #: before the request's deadline — such rows are expired at pop
        #: time (service time only grows with queueing, so an unmeetable
        #: row now is unmeetable forever).
        self.estimator: Optional[callable] = None
        self._expired_at_pop: List[PendingRequest] = []

    # ------------------------------------------------------------------
    def _push(self, heap: List[Tuple[float, int, tuple]], key: tuple) -> None:
        heapq.heappush(heap, (self._queues[key][0].enqueued_at, self._seq, key))
        self._seq += 1

    def _peek(
        self, heap: List[Tuple[float, int, tuple]], full: bool = False
    ) -> Optional[Tuple[float, tuple]]:
        """Top live entry, discarding stale ones (head moved or queue gone).

        An entry is live while its queue still has the pinned head
        timestamp.  Ties make that test too weak for the full heap —
        different requests can share a timestamp, so a post-pop remainder
        can impersonate the pinned head — hence full-heap entries also
        re-check the actual live count (a count only shrinks by popping
        or retiring, and every change that leaves a full backlog
        re-registers it, so discarding a short entry never loses a full
        queue).
        """
        while heap:
            head_at, _, key = heap[0]
            queue = self._queues.get(key)
            if (
                queue
                and queue[0].enqueued_at == head_at
                and (not full or self._live.get(key, 0) >= self.policy.max_batch)
            ):
                return head_at, key
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    def put(self, key: tuple, pending: PendingRequest) -> int:
        """Enqueue under ``key``; returns the total queued depth."""
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
        queue.append(pending)
        if pending.trace is not None:
            pending.trace.event("queue")
        self._depth += 1
        self._live[key] = self._live.get(key, 0) + 1
        self._endpoint_live[pending.endpoint] = (
            self._endpoint_live.get(pending.endpoint, 0) + 1
        )
        if len(queue) == 1:
            self._push(self._heads, key)
        if self._live[key] == self.policy.max_batch:
            self._push(self._full, key)
        if pending.deadline_at is not None:
            heapq.heappush(
                self._deadlines, (pending.deadline_at, self._seq, key, pending)
            )
            self._seq += 1
        prio_heap = self._prio.get(pending.endpoint)
        if prio_heap is None:
            prio_heap = self._prio[pending.endpoint] = []
        heapq.heappush(prio_heap, (pending.priority, -self._seq, key, pending))
        self._seq += 1
        return self._depth

    def depth(self) -> int:
        """Total live requests currently queued (all keys)."""
        return self._depth

    def key_depths(self) -> dict:
        return {key: n for key, n in self._live.items() if n}

    def endpoint_depth(self, endpoint: str) -> int:
        """Live queued requests for one endpoint (SLO admission input)."""
        return self._endpoint_live.get(endpoint, 0)

    # ------------------------------------------------------------------
    def _retire(self, key: tuple, pending: PendingRequest, state: str) -> None:
        """Move a queued request to a dead state and fix the live counts.

        Mid-queue corpses stay in the deque for lazy skipping, but a dead
        *head* would break the head-timestamp invalidation rule (stale
        heap entries would keep matching it), so heads are purged eagerly
        and the survivors re-registered.
        """
        pending.state = state
        self._depth -= 1
        self._live[key] -= 1
        self._endpoint_live[pending.endpoint] -= 1
        queue = self._queues.get(key)
        if queue is not None and queue and queue[0] is pending:
            self._purge_head(key)

    def _purge_head(self, key: tuple) -> None:
        """Drop dead entries off the head of ``key``'s queue."""
        queue = self._queues[key]
        while queue and queue[0].state != "queued":
            queue.popleft()
        if not queue:
            del self._queues[key]
            self._live.pop(key, None)
            return
        # The survivors got a new head: re-register it (and its fullness,
        # if the live backlog still tops a whole batch).
        self._push(self._heads, key)
        if self._live.get(key, 0) >= self.policy.max_batch:
            self._push(self._full, key)

    def expire(self, now: float) -> List[PendingRequest]:
        """Retire every queued request whose deadline has passed.

        Returns the newly-expired requests so the caller can reject each
        with a typed ``DeadlineExceeded`` — expiry is never a silent
        drop.  O(log n) per expired request via the deadline heap; dead
        entries (already dispatched/shed) are skipped lazily.
        """
        expired: List[PendingRequest] = []
        while self._deadlines and self._deadlines[0][0] <= now:
            _, _, key, pending = heapq.heappop(self._deadlines)
            if pending.state != "queued":
                continue
            self._retire(key, pending, "expired")
            expired.append(pending)
        return expired

    def lowest_priority(self, endpoint: str) -> Optional[int]:
        """Priority of the endpoint's most sheddable queued request."""
        heap = self._prio.get(endpoint)
        if not heap:
            return None
        while heap:
            priority, _, _, pending = heap[0]
            if pending.state == "queued":
                return priority
            heapq.heappop(heap)
        return None

    def highest_priority(self, key: tuple) -> Optional[int]:
        """Highest priority among one key's queued requests.

        The continuous generation loop reads this to decide whether a
        queued sequence outranks the lowest-priority *live* one and may
        preempt it when the batch is full under SLO breach.  O(queue) —
        generation queues are short and the check runs at most once per
        decode step.
        """
        queue = self._queues.get(key)
        if not queue:
            return None
        live = [p.priority for p in queue if p.state == "queued"]
        return max(live) if live else None

    def shed_lowest(self, endpoint: str) -> Optional[PendingRequest]:
        """Retire the endpoint's lowest-priority queued request.

        Ties shed the *youngest* first (older work has waited longest and
        is closest to dispatch).  Returns the shed request for a typed
        rejection, or ``None`` if nothing is queued for the endpoint.
        """
        heap = self._prio.get(endpoint)
        while heap:
            _, _, key, pending = heapq.heappop(heap)
            if pending.state != "queued":
                continue
            self._retire(key, pending, "shed")
            return pending
        return None

    # ------------------------------------------------------------------
    def pop_ready(self, now: float, flush: bool = False) -> Optional[Batch]:
        """Dispatch the ready queue with the oldest head, if any.

        With ``flush=True`` every non-empty queue is ready (graceful
        drain).  Pops at most ``max_batch`` requests; a queue holding more
        stays ready for the next call.

        FIFO fairness falls out of the heap order: the global oldest head
        is served whenever it is ready, and when it is not (young + below
        ``max_batch``) no *older* head can be ready either, so serving
        the oldest *full* queue is exactly the original oldest-ready-head
        rule.
        """
        top = self._peek(self._heads)
        if top is None:
            return None
        head_at, key = top
        if (
            flush
            or (now - head_at) >= self.policy.max_delay_s
            or self._live.get(key, 0) >= self.policy.max_batch
        ):
            return self._pop_from(key, now)
        full_top = self._peek(self._full, full=True)
        if full_top is not None:
            return self._pop_from(full_top[1], now)
        return None

    def take_expired(self) -> List[PendingRequest]:
        """Drain requests expired at pop time (unmeetable deadlines)."""
        expired, self._expired_at_pop = self._expired_at_pop, []
        return expired

    def pop_join(self, key: tuple, now: float, limit: int) -> List[PendingRequest]:
        """Pop up to ``limit`` queued requests from one key (continuous join).

        The continuous generation batcher admits queued sequences into the
        *running* batch between decode steps, so the size-or-timeout ready
        rule does not apply: whatever is queued under the key joins, up to
        the live batch's free capacity.  Unmeetable deadlines are expired
        at pop time exactly like :meth:`pop_ready` (drain them via
        :meth:`take_expired`).  Returns a possibly-empty list.
        """
        if limit < 1 or key not in self._queues:
            return []
        return self._pop_from(key, now, limit=limit).requests

    def _pop_from(
        self, key: tuple, now: Optional[float] = None, limit: Optional[int] = None
    ) -> Batch:
        queue = self._queues[key]
        batch = Batch(key=key, endpoint=key[0])
        est: Optional[float] = None
        taken = 0
        cap = self.policy.max_batch if limit is None else limit
        while queue and len(batch.requests) < cap:
            pending = queue.popleft()
            if pending.state != "queued":
                continue
            taken += 1
            if now is not None and pending.deadline_at is not None:
                if est is None:
                    est = self.estimator(batch.endpoint) if self.estimator else 0.0
                if pending.deadline_at <= now + est:
                    pending.state = "expired"
                    self._expired_at_pop.append(pending)
                    continue
            pending.state = "dispatched"
            if pending.trace is not None:
                pending.trace.event("coalesce")
            batch.requests.append(pending)
        self._depth -= taken
        if taken:
            self._live[key] -= taken
            self._endpoint_live[batch.endpoint] -= taken
        if queue:
            # Dead entries may now lead the remainder; purge so the new
            # head is live before re-registering (it also handles the
            # heads/full re-push and empty-queue cleanup).
            self._purge_head(key)
        else:
            del self._queues[key]
            self._live.pop(key, None)
        return batch

    def next_deadline(self, now: float) -> Optional[float]:
        """Earliest moment some queue becomes ready *or* a request expires.

        ``now`` if a queue is ready already; ``None`` means nothing is
        queued — the dispatch loop can sleep until the next enqueue wakes
        it.  Request deadlines participate so the loop wakes in time to
        expire dead work instead of serving it.
        """
        if self._peek(self._full, full=True) is not None:
            return now
        top = self._peek(self._heads)
        if top is None:
            return None
        ready_at = top[0] + self.policy.max_delay_s
        while self._deadlines and self._deadlines[0][3].state != "queued":
            heapq.heappop(self._deadlines)
        if self._deadlines:
            ready_at = min(ready_at, self._deadlines[0][0])
        return ready_at

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(depth={self._depth}, "
            f"keys={len(self.key_depths())}, policy={self.policy})"
        )
