"""Request coalescing: key-partitioned FIFO queues under a batch policy.

The :class:`MicroBatcher` holds pending requests in one FIFO deque per
coalescing key — ``(endpoint, payload shape)``, since only same-shape
payloads of one model can stack into a single planner pass.  A queue
becomes *ready* when it holds a full batch (``max_batch``) or its oldest
request has waited ``max_delay_s`` (the classic size-or-timeout
micro-batching policy); ``pop_ready`` always serves the ready queue whose
head request is oldest, so dispatch stays FIFO-fair across keys.

The batcher is a pure data structure — no locks, no threads.  The
service serializes access under its own condition variable, which keeps
the coalescing decisions deterministic and directly unit-testable.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """When does a partially-filled queue dispatch?

    ``max_batch`` caps the coalesced batch size; ``max_delay_s`` bounds
    how long the oldest request may wait for co-riders.  ``max_batch=1``
    degenerates to sequential single-request dispatch (the baseline the
    serve bench compares against).
    """

    max_batch: int = 16
    max_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")


@dataclass(eq=False)
class PendingRequest:
    """One queued request: payload + identity + completion slot."""

    request_id: int
    endpoint: str
    payload: np.ndarray
    enqueued_at: float
    future: object = None


@dataclass(eq=False)
class Batch:
    """A coalesced dispatch unit: same endpoint, same payload shape."""

    key: tuple
    endpoint: str
    requests: List[PendingRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Key-partitioned FIFO queues with the size-or-timeout ready rule."""

    def __init__(self, policy: Optional[BatchPolicy] = None) -> None:
        self.policy = policy or BatchPolicy()
        self._queues: "OrderedDict[tuple, Deque[PendingRequest]]" = OrderedDict()
        self._depth = 0

    # ------------------------------------------------------------------
    def put(self, key: tuple, pending: PendingRequest) -> int:
        """Enqueue under ``key``; returns the total queued depth."""
        self._queues.setdefault(key, deque()).append(pending)
        self._depth += 1
        return self._depth

    def depth(self) -> int:
        """Total requests currently queued (all keys)."""
        return self._depth

    def key_depths(self) -> dict:
        return {key: len(q) for key, q in self._queues.items() if q}

    # ------------------------------------------------------------------
    def _ready(self, queue: Deque[PendingRequest], now: float, flush: bool) -> bool:
        if not queue:
            return False
        if flush or len(queue) >= self.policy.max_batch:
            return True
        return (now - queue[0].enqueued_at) >= self.policy.max_delay_s

    def pop_ready(self, now: float, flush: bool = False) -> Optional[Batch]:
        """Dispatch the ready queue with the oldest head, if any.

        With ``flush=True`` every non-empty queue is ready (graceful
        drain).  Pops at most ``max_batch`` requests; a queue holding more
        stays ready for the next call.
        """
        best_key = None
        best_head = None
        for key, queue in self._queues.items():
            if not self._ready(queue, now, flush):
                continue
            head = queue[0].enqueued_at
            if best_head is None or head < best_head:
                best_key, best_head = key, head
        if best_key is None:
            return None
        queue = self._queues[best_key]
        batch = Batch(key=best_key, endpoint=best_key[0])
        while queue and len(batch.requests) < self.policy.max_batch:
            batch.requests.append(queue.popleft())
        if not queue:
            del self._queues[best_key]
        self._depth -= len(batch.requests)
        return batch

    def next_deadline(self, now: float) -> Optional[float]:
        """Earliest moment some queue becomes ready; ``now`` if one is.

        ``None`` means nothing is queued — the dispatch loop can sleep
        until the next enqueue wakes it.
        """
        deadline: Optional[float] = None
        for queue in self._queues.values():
            if not queue:
                continue
            if len(queue) >= self.policy.max_batch:
                return now
            candidate = queue[0].enqueued_at + self.policy.max_delay_s
            if deadline is None or candidate < deadline:
                deadline = candidate
        return deadline

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(depth={self._depth}, "
            f"keys={len(self.key_depths())}, policy={self.policy})"
        )
