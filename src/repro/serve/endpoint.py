"""Model endpoints: one pinned quantized model + integer plan per scenario.

A :class:`ModelEndpoint` is the serving unit: it holds a calibrated,
quantized model, builds its :class:`~repro.rae.planner.IntegerExecutionPlan`
exactly once, and executes whole request batches through the plan —
:func:`~repro.rae.planner.integer_execution` routes every tiled
PSUM-quantized layer through the shared per-shape engines while the float
glue (embeddings, norms, attention) runs batched numpy.  Plan caches
(weight codes, scale plans, activation codes) are
``Parameter.version``-checked, so a pinned plan revalidates itself across
calls instead of being rebuilt.

Endpoint construction follows the executor's determinism idioms
(:mod:`repro.experiments.executor`): a builder is a pure function of
``(family, seed, gs, rounding)`` — ``manual_seed(seed)`` before the model
is built, a seeded rng for the calibration batch — and is memoized per
process, exactly like the experiment runner's teachers.
"""

from __future__ import annotations

import os
import queue
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..models import (
    BertConfig,
    BertTiny,
    EfficientViTConfig,
    EfficientViTTiny,
    LlamaConfig,
    LlamaTiny,
    SegformerConfig,
    SegformerTiny,
)
from ..rae.planner import IntegerExecutionPlan
from .types import (
    ClassificationRequest,
    ClassificationResponse,
    GenerationRequest,
    ImageClassificationRequest,
    ScoringRequest,
    ScoringResponse,
    SegmentationRequest,
    SegmentationResponse,
)

#: scenario name -> request dataclass
SCENARIOS: Dict[str, type] = {
    "classification": ClassificationRequest,
    "scoring": ScoringRequest,
    "segmentation": SegmentationRequest,
    "image_classification": ImageClassificationRequest,
    "generation": GenerationRequest,
}

#: scenarios whose request carries one (C, H, W) image
IMAGE_SCENARIOS = ("segmentation", "image_classification")


def encode_generation_payload(tokens: np.ndarray, max_new_tokens: int) -> np.ndarray:
    """Pack a generation request into one 1-D int64 payload array.

    Payloads travel the batcher and both process transports as plain
    ndarrays; element 0 carries the token budget, the rest the prompt.
    """
    return np.concatenate(
        [np.array([max_new_tokens], dtype=np.int64), np.asarray(tokens, dtype=np.int64)]
    )


def decode_generation_payload(payload: np.ndarray) -> Tuple[np.ndarray, int]:
    """Unpack :func:`encode_generation_payload`: ``(prompt, max_new_tokens)``."""
    payload = np.asarray(payload, dtype=np.int64)
    return payload[1:], int(payload[0])


def normalize_payload(
    name: str,
    scenario: str,
    request,
    *,
    in_channels: int = 0,
    max_seq_len: int = 0,
    vocab_size: int = 0,
) -> np.ndarray:
    """Validate a request against its scenario limits; return the payload.

    Shared by :class:`ModelEndpoint` (limits read off the pinned model's
    config) and the artifact-backed stubs of :mod:`repro.serve.workers`
    (limits read off the artifact manifest) — both front doors apply the
    exact same validation.
    """
    request_type = SCENARIOS[scenario]
    if not isinstance(request, request_type):
        raise TypeError(
            f"endpoint {name!r} ({scenario}) expects "
            f"{request_type.__name__}, got {type(request).__name__}"
        )
    if scenario in IMAGE_SCENARIOS:
        image = np.asarray(request.image, dtype=float)
        if image.ndim != 3 or image.shape[0] != in_channels:
            raise ValueError(
                f"endpoint {name!r}: expected image (C={in_channels}, H, W), "
                f"got shape {image.shape}"
            )
        return image
    tokens = np.asarray(request.tokens, dtype=np.int64)
    if tokens.ndim != 1 or not 1 <= tokens.shape[0] <= max_seq_len:
        raise ValueError(
            f"endpoint {name!r}: expected 1-D tokens of length 1..{max_seq_len}, "
            f"got shape {tokens.shape}"
        )
    if tokens.min() < 0 or tokens.max() >= vocab_size:
        raise ValueError(f"endpoint {name!r}: token ids outside [0, {vocab_size})")
    if scenario == "generation":
        max_new = request.max_new_tokens
        if not isinstance(max_new, (int, np.integer)) or max_new < 1:
            raise ValueError(
                f"endpoint {name!r}: max_new_tokens must be a positive int, "
                f"got {max_new!r}"
            )
        return encode_generation_payload(tokens, int(max_new))
    return tokens


def synth_request(
    scenario: str,
    request_shape: Tuple[int, ...],
    rng: np.random.Generator,
    vocab_size: int = 0,
    length: Optional[int] = None,
):
    """A deterministic synthetic request (load generator / warmup).

    ``length`` overrides the token count for sequence scenarios — the
    hook the load generator's variable-sequence-length mode uses to
    exercise bucketed padding with honest traffic.
    """
    if scenario in IMAGE_SCENARIOS:
        return SCENARIOS[scenario](image=rng.normal(size=request_shape))
    shape = (int(length),) if length is not None else request_shape
    tokens = rng.integers(0, vocab_size, size=shape)
    if scenario == "generation":
        return GenerationRequest(tokens=tokens, max_new_tokens=int(rng.integers(1, 6)))
    return SCENARIOS[scenario](tokens=tokens)


def bucketing_enabled() -> bool:
    """The ``REPRO_BUCKETING`` gate (default on; ``0`` restores exact-shape
    coalescing keys — the pre-bucketing dataplane, kept for A/B benches)."""
    return os.environ.get("REPRO_BUCKETING", "1") not in ("0", "false", "no", "off")


def length_bucket(length: int, cap: int) -> int:
    """The power-of-two length class ``length`` coalesces into (≤ ``cap``).

    Shared by :class:`ModelEndpoint` and the artifact stubs so parent-
    side coalescing keys and worker-side padding always agree.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    bucket = 1 << (length - 1).bit_length()
    return min(bucket, cap) if cap else bucket


class EnginePool:
    """N integer-plan clones behind a blocking queue, one model patch.

    :func:`~repro.rae.planner.integer_execution` patches each planned
    layer's ``forward`` on entry and pops it on exit — correct for one
    batch at a time, but a data race the moment two threads serve the
    same endpoint.  The pool installs the patch **once** and routes it
    per-thread instead: a worker checks a clone out of the queue, binds
    it to a ``threading.local`` slot for the duration of its batch, and
    every planned forward executes through whichever clone the *current
    thread* holds.  Clones share the read-only compile-time arrays
    (weight codes, GEMM operands, scale plans — see
    :meth:`~repro.rae.planner.IntegerExecutionPlan.clone_for_serving`)
    and own only engines and scratch, so N same-endpoint batches run
    concurrently with the memory footprint of one plan.

    A thread holding no clone falls through to the layer's original
    (float fake-quant) forward — exactly the pre-pool behaviour of a
    model outside an ``integer_execution`` context.
    """

    def __init__(self, model, plan, size: int) -> None:
        if size < 1:
            raise ValueError(f"engine pool size must be >= 1, got {size}")
        self.model = model
        self.source = plan
        self.size = size
        if plan.cache_activations:
            # The digest-keyed activation cache lives on the source plan;
            # running it concurrently would race its one-deep entries, so
            # digest-caching endpoints pin a single shared engine.
            if size != 1:
                raise ValueError(
                    "cache_activations='digest' requires engine_pool=1 "
                    "(the activation cache is single-writer)"
                )
            clones = [plan]
        else:
            clones = plan.clone_for_serving(size)
        self._free: "queue.Queue" = queue.Queue()
        for clone in clones:
            self._free.put(clone)
        self._tls = threading.local()
        self._patches: Dict[str, tuple] = {}
        self._install()

    def _install(self) -> None:
        from ..tensor.tensor import Tensor

        tls = self._tls
        for name in self.source.layer_names:
            layer = self.model.get_submodule(name)
            original = type(layer).forward

            def pooled_forward(
                x, _name=name, _layer=layer, _original=original, _tls=tls
            ):
                active = getattr(_tls, "plan", None)
                if active is None:
                    return _original(_layer, x)
                arr = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=float)
                return Tensor(active.run_layer(_name, arr))

            layer.__dict__["forward"] = pooled_forward
            self._patches[name] = (layer, pooled_forward)

    def _ensure_patched(self) -> None:
        # A stray ``integer_execution`` context on the same model pops
        # our patch on exit; cheap to heal at every checkout.
        for layer, patched in self._patches.values():
            if layer.__dict__.get("forward") is not patched:
                layer.__dict__["forward"] = patched

    @contextmanager
    def engine(self):
        """Check a clone out (blocking) and route this thread through it."""
        clone = self._free.get()
        self._ensure_patched()
        self._tls.plan = clone
        try:
            yield clone
        finally:
            self._tls.plan = None
            self._free.put(clone)

    def __repr__(self) -> str:
        return f"EnginePool(size={self.size}, layers={len(self._patches)})"


class ModelEndpoint:
    """One served model: quantize/load once, pin the plan, serve batches.

    ``infer_batch`` is the only compute entry point: it stacks request
    payloads into one batch (padding variable-length scoring payloads to
    their power-of-two bucket), checks an execution clone out of the
    :class:`EnginePool`, runs a single integer-datapath forward, and
    splits the batch back into per-request responses.  Because every
    planned layer reduces through the bit-exact batched engine, every
    float glue op works row-wise, and causal attention's softmax is
    pad-invariant, the response for request *i* is bit-identical whether
    it was served alone, coalesced, or padded — the invariant the
    micro-batcher relies on.
    """

    def __init__(
        self,
        name: str,
        scenario: str,
        model,
        request_shape: Tuple[int, ...],
        rounding: str = "half_even",
        plan: IntegerExecutionPlan | None = None,
        cache_activations: object = False,
        engine_pool: Optional[int] = None,
        bucketing: bool = True,
    ) -> None:
        if scenario not in SCENARIOS:
            raise KeyError(f"unknown scenario {scenario!r}; options: {sorted(SCENARIOS)}")
        if cache_activations not in (False, "digest"):
            raise ValueError(
                f"cache_activations must be False or 'digest', got {cache_activations!r}"
            )
        self.name = name
        self.scenario = scenario
        self.model = model
        self.request_shape = tuple(request_shape)
        model.eval()
        # An artifact loader passes a pre-seeded plan (imported weight
        # codes and scale plans); the default path builds a fresh one.
        self.plan = plan if plan is not None else IntegerExecutionPlan.from_model(
            model, rounding=rounding
        )
        self.cache_activations = cache_activations
        # By default served batches are treated as always-fresh, so
        # content-hashing activations would be pure overhead (and would
        # pin the largest coalesced batch's row codes per layer for the
        # endpoint's lifetime).  ``cache_activations="digest"`` opts into
        # the planner's digest-keyed one-deep cache for traffic with
        # repeated identical requests; hit rates surface in the serve
        # metrics snapshot.
        self.plan.cache_activations = cache_activations == "digest"
        # Same-endpoint batches used to serialize on one RLock around
        # the (patch-and-unpatch) integer_execution context; the engine
        # pool runs them concurrently on plan clones instead.
        if engine_pool is None:
            engine_pool = int(os.environ.get("REPRO_ENGINE_POOL", "1") or "1")
        self.engines = EnginePool(model, self.plan, engine_pool)
        #: Bucketed padded coalescing (scoring endpoints only): payloads
        #: coalesce on power-of-two length classes and pad within the
        #: bucket.  Safe exactly because the model's causal attention
        #: uses the pad-invariant softmax — padded rows are bit-identical
        #: to unpadded singles (pinned by the hypothesis sweeps).
        self.bucketing = bool(bucketing) and scenario == "scoring" and bucketing_enabled()
        self._pad_lock = threading.Lock()
        self._pad_stats = {
            "batches": 0,
            "padded_batches": 0,
            "padded_requests": 0,
            "pad_tokens": 0,
        }

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    @property
    def request_type(self) -> type:
        return SCENARIOS[self.scenario]

    def request_payload(self, request) -> np.ndarray:
        """Validate a request and return its normalized payload array."""
        config = self.model.config
        return normalize_payload(
            self.name,
            self.scenario,
            request,
            in_channels=getattr(config, "in_channels", 0),
            max_seq_len=getattr(config, "max_seq_len", 0),
            vocab_size=getattr(config, "vocab_size", 0),
        )

    def length_bucket(self, length: int) -> int:
        """The power-of-two class ``length`` pads into (≤ ``max_seq_len``)."""
        return length_bucket(length, getattr(self.model.config, "max_seq_len", 0))

    def coalesce_key(self, payload: np.ndarray) -> tuple:
        """Batching key: same endpoint, same shape — or same length bucket.

        Scoring traffic with variable sequence lengths used to fragment
        into singleton batches (exact-shape keys); with bucketing, all
        lengths in one power-of-two class coalesce and pad together.
        """
        if self.bucketing:
            return (self.name, ("bucket", self.length_bucket(payload.shape[0])))
        return (self.name, payload.shape)

    def synth_request(self, rng: np.random.Generator, length: Optional[int] = None):
        """A deterministic synthetic request (load generator / warmup)."""
        return synth_request(
            self.scenario,
            self.request_shape,
            rng,
            vocab_size=getattr(self.model.config, "vocab_size", 0),
            length=length,
        )

    def act_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the opt-in activation-code cache."""
        return self.plan.act_cache_stats()

    def pad_stats(self) -> Dict[str, int]:
        """Bucketed-coalescing counters (``status()`` surfaces these)."""
        with self._pad_lock:
            return dict(self._pad_stats)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _padded_batch(
        self, payloads: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stack variable-length token payloads padded to their bucket.

        Pads with token 0 (any valid id works: causal attention plus the
        pad-invariant softmax keep every real position's bits untouched)
        and returns the per-row true lengths for logit extraction.
        """
        lengths = np.array([p.shape[0] for p in payloads], dtype=np.int64)
        target = self.length_bucket(int(lengths.max()))
        batch = np.zeros((len(payloads), target), dtype=np.int64)
        for row, payload in enumerate(payloads):
            batch[row, : payload.shape[0]] = payload
        pad_tokens = int(batch.shape[1] * len(payloads) - lengths.sum())
        with self._pad_lock:
            self._pad_stats["batches"] += 1
            if pad_tokens:
                self._pad_stats["padded_batches"] += 1
                self._pad_stats["padded_requests"] += int(
                    np.count_nonzero(lengths < batch.shape[1])
                )
                self._pad_stats["pad_tokens"] += pad_tokens
        return batch, lengths

    def infer_batch(self, payloads: Sequence[np.ndarray]) -> List[object]:
        """Serve a coalesced batch through one integer-datapath forward."""
        if not payloads:
            return []
        if self.scenario == "generation":
            raise RuntimeError(
                f"endpoint {self.name!r}: generation batches are served by "
                "GenerationEndpoint (repro.serve.generation)"
            )
        from ..tensor import no_grad
        from ..tensor.tensor import Tensor

        lengths = None
        if self.scenario == "scoring" and self.bucketing:
            batch, lengths = self._padded_batch(payloads)
        else:
            shapes = {tuple(p.shape) for p in payloads}
            if len(shapes) > 1:
                raise ValueError(f"cannot stack mixed payload shapes: {sorted(shapes)}")
            batch = np.stack(payloads)

        with self.engines.engine():
            if self.scenario == "scoring":
                logprobs = self.model.next_token_logprobs(batch, lengths=lengths)
                return [
                    ScoringResponse(logprobs=row, top_token=int(row.argmax()))
                    for row in logprobs
                ]
            with no_grad():
                if self.scenario == "segmentation":
                    logits = self.model(Tensor(batch)).data
                    return [
                        SegmentationResponse(
                            logits=row, class_map=row.argmax(axis=-1)
                        )
                        for row in logits
                    ]
                if self.scenario == "image_classification":
                    logits = self.model(Tensor(batch)).data  # (B, classes)
                    return [
                        ClassificationResponse(logits=row, label=int(row.argmax()))
                        for row in logits
                    ]
                logits = self.model(batch).data
                return [
                    ClassificationResponse(logits=row, label=int(row.argmax()))
                    for row in logits
                ]

    def resize_engine_pool(self, size: int) -> None:
        """Swap in a fresh pool of ``size`` clones (idle endpoints only)."""
        if size == self.engines.size:
            return
        self.engines = EnginePool(self.model, self.plan, size)

    def serve_one(self, request) -> object:
        """Single-request convenience path (the determinism oracle)."""
        return self.infer_batch([self.request_payload(request)])[0]

    def warmup(self, seed: int = 0) -> None:
        """Populate the plan's weight-code/scale caches with one batch."""
        rng = np.random.default_rng(seed)
        self.serve_one(self.synth_request(rng))

    def __repr__(self) -> str:
        return (
            f"ModelEndpoint({self.name!r}, scenario={self.scenario!r}, "
            f"layers={len(self.plan.layer_names)}, groups={len(self.plan.groups)})"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class EndpointRegistry:
    """Named endpoints the service can route requests to."""

    def __init__(self) -> None:
        self._endpoints: "OrderedDict[str, ModelEndpoint]" = OrderedDict()

    def register(self, endpoint: ModelEndpoint) -> ModelEndpoint:
        if endpoint.name in self._endpoints:
            raise ValueError(f"duplicate endpoint name {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        return endpoint

    def get(self, name: str) -> ModelEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; registered: {sorted(self._endpoints)}"
            ) from None

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._endpoints)

    def __iter__(self) -> Iterator[ModelEndpoint]:
        return iter(self._endpoints.values())

    def __len__(self) -> int:
        return len(self._endpoints)


# ----------------------------------------------------------------------
# Family specs: architecture vs calibration, split on purpose
# ----------------------------------------------------------------------
# The artifact pipeline (:mod:`repro.artifacts`) needs to rebuild a
# family's *architecture* without re-running its calibration — state
# dict, quantizer scales and calibration flags come from the compiled
# artifact.  So each family is a spec with three separable pieces:
# config construction, (uncalibrated) quantized-model construction, and
# the seeded calibration pass.  ``build_endpoint`` composes all three;
# ``load_endpoint`` composes only the first two.


class FamilySpec:
    """One servable model family: how to build, quantize and calibrate it."""

    def __init__(
        self,
        name: str,
        scenario: str,
        config_cls: type,
        model_cls: type,
        request_shape: Callable[[object], Tuple[int, ...]],
        calibrate: Callable[[object, object, np.random.Generator], None],
        config_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.scenario = scenario
        self.config_cls = config_cls
        self.model_cls = model_cls
        self._request_shape = request_shape
        self._calibrate = calibrate
        self.config_kwargs = dict(config_kwargs or {})

    def make_config(self, overrides: Optional[Dict[str, object]] = None):
        """The family's model config; ``overrides`` come from a manifest.

        JSON round-trips turn tuples into lists, so list-valued overrides
        are normalized back to tuples (dataclass fields like Segformer's
        ``stage_dims`` are declared as tuples).
        """
        kwargs = dict(self.config_kwargs)
        for key, value in (overrides or {}).items():
            kwargs[key] = tuple(value) if isinstance(value, list) else value
        return self.config_cls(**kwargs)

    def build_model(self, config, gs: int):
        """The *uncalibrated* quantized model for ``config``."""
        from ..quant import apsq_config, quantize_model

        return quantize_model(self.model_cls(config), apsq_config(gs=gs, pci=8))

    def calibrate(self, model, config, rng: np.random.Generator) -> None:
        """Run the family's deterministic calibration batch through ``model``."""
        self._calibrate(model, config, rng)

    def request_shape(self, config) -> Tuple[int, ...]:
        return tuple(self._request_shape(config))


def _calibrate_tokens(batch: Tuple[int, int]):
    def calibrate(model, config, rng):
        model(rng.integers(0, config.vocab_size, size=batch))

    return calibrate


def _calibrate_images(model, config, rng):
    from ..tensor.tensor import Tensor

    model(Tensor(rng.normal(size=(2, config.in_channels, 16, 16))))


FAMILIES: Dict[str, FamilySpec] = {
    "bert": FamilySpec(
        "bert",
        "classification",
        BertConfig,
        BertTiny,
        request_shape=lambda config: (8,),
        calibrate=_calibrate_tokens((8, 8)),
        config_kwargs=dict(num_classes=2, num_layers=2, hidden=64, max_seq_len=16),
    ),
    "llama": FamilySpec(
        "llama",
        "scoring",
        LlamaConfig,
        LlamaTiny,
        request_shape=lambda config: (12,),
        calibrate=_calibrate_tokens((4, 12)),
    ),
    "segformer": FamilySpec(
        "segformer",
        "segmentation",
        SegformerConfig,
        SegformerTiny,
        request_shape=lambda config: (config.in_channels, 16, 16),
        calibrate=_calibrate_images,
    ),
    "efficientvit": FamilySpec(
        "efficientvit",
        "image_classification",
        EfficientViTConfig,
        EfficientViTTiny,
        request_shape=lambda config: (config.in_channels, 16, 16),
        calibrate=_calibrate_images,
        config_kwargs=dict(
            head="classification", image_size=16, stage_dims=(16, 32), num_heads=(2, 2)
        ),
    ),
    "llama-gen": FamilySpec(
        "llama-gen",
        "generation",
        LlamaConfig,
        LlamaTiny,
        request_shape=lambda config: (12,),
        calibrate=_calibrate_tokens((4, 12)),
    ),
}


def family_spec(family: str) -> FamilySpec:
    try:
        return FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown endpoint family {family!r}; options: {sorted(FAMILIES)}"
        ) from None


_ENDPOINT_MEMO: "OrderedDict[tuple, ModelEndpoint]" = OrderedDict()
_ENDPOINT_MEMO_CAP = 6


def clear_endpoint_memo() -> None:
    _ENDPOINT_MEMO.clear()


def build_endpoint(
    family: str,
    seed: int = 0,
    gs: int = 2,
    rounding: str = "half_even",
    engine_pool: Optional[int] = None,
    config_overrides: Optional[Dict[str, object]] = None,
) -> ModelEndpoint:
    """A calibrated endpoint for one model family (memoized per process).

    Deterministic per key: ``manual_seed(seed)`` before construction and a
    seeded rng for the calibration batch, so any process (or serve
    worker) building the same key pins an identical model and plan.
    An explicit ``engine_pool`` resizes a memoized endpoint's pool.
    ``config_overrides`` tweak the family config (e.g. a longer
    ``max_seq_len`` for generation benches) and are part of the memo key.
    """
    from ..tensor import manual_seed

    spec = family_spec(family)
    overrides = dict(config_overrides or {})
    key = (family, seed, gs, rounding, tuple(sorted(overrides.items())))
    if key in _ENDPOINT_MEMO:
        _ENDPOINT_MEMO.move_to_end(key)
        endpoint = _ENDPOINT_MEMO[key]
        if engine_pool is not None:
            endpoint.resize_engine_pool(engine_pool)
        return endpoint
    manual_seed(seed)
    config = spec.make_config(overrides)
    model = spec.build_model(config, gs)
    spec.calibrate(model, config, np.random.default_rng(seed))
    model.eval()
    if spec.scenario == "generation":
        from .generation import GenerationEndpoint

        endpoint_cls = GenerationEndpoint
    else:
        endpoint_cls = ModelEndpoint
    endpoint = endpoint_cls(
        family,
        spec.scenario,
        model,
        spec.request_shape(config),
        rounding=rounding,
        engine_pool=engine_pool,
    )
    _ENDPOINT_MEMO[key] = endpoint
    while len(_ENDPOINT_MEMO) > _ENDPOINT_MEMO_CAP:
        _ENDPOINT_MEMO.popitem(last=False)
    return endpoint


def default_registry(
    families: Sequence[str] = ("bert", "llama", "segformer"),
    seed: int = 0,
    gs: int = 2,
    engine_pool: Optional[int] = None,
) -> EndpointRegistry:
    """The three-scenario registry the CLI and the benches serve from."""
    registry = EndpointRegistry()
    for family in families:
        registry.register(build_endpoint(family, seed=seed, gs=gs, engine_pool=engine_pool))
    return registry
