"""Model endpoints: one pinned quantized model + integer plan per scenario.

A :class:`ModelEndpoint` is the serving unit: it holds a calibrated,
quantized model, builds its :class:`~repro.rae.planner.IntegerExecutionPlan`
exactly once, and executes whole request batches through the plan —
:func:`~repro.rae.planner.integer_execution` routes every tiled
PSUM-quantized layer through the shared per-shape engines while the float
glue (embeddings, norms, attention) runs batched numpy.  Plan caches
(weight codes, scale plans, activation codes) are
``Parameter.version``-checked, so a pinned plan revalidates itself across
calls instead of being rebuilt.

Endpoint construction follows the executor's determinism idioms
(:mod:`repro.experiments.executor`): a builder is a pure function of
``(family, seed, gs, rounding)`` — ``manual_seed(seed)`` before the model
is built, a seeded rng for the calibration batch — and is memoized per
process, exactly like the experiment runner's teachers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..models import (
    BertConfig,
    BertTiny,
    LlamaConfig,
    LlamaTiny,
    SegformerConfig,
    SegformerTiny,
)
from ..rae.planner import IntegerExecutionPlan, integer_execution
from .types import (
    ClassificationRequest,
    ClassificationResponse,
    ScoringRequest,
    ScoringResponse,
    SegmentationRequest,
    SegmentationResponse,
)

#: scenario name -> request dataclass
SCENARIOS: Dict[str, type] = {
    "classification": ClassificationRequest,
    "scoring": ScoringRequest,
    "segmentation": SegmentationRequest,
}


class ModelEndpoint:
    """One served model: quantize/load once, pin the plan, serve batches.

    ``infer_batch`` is the only compute entry point: it stacks same-shape
    request payloads into one batch, runs a single integer-datapath
    forward under the endpoint lock (plan engines are stateful), and
    splits the batch back into per-request responses.  Because every
    planned layer reduces through the bit-exact batched engine and every
    float glue op works row-wise, the response for request *i* is
    bit-identical whether it was served alone or coalesced — the
    invariant the micro-batcher relies on.
    """

    def __init__(
        self,
        name: str,
        scenario: str,
        model,
        request_shape: Tuple[int, ...],
        rounding: str = "half_even",
    ) -> None:
        if scenario not in SCENARIOS:
            raise KeyError(f"unknown scenario {scenario!r}; options: {sorted(SCENARIOS)}")
        self.name = name
        self.scenario = scenario
        self.model = model
        self.request_shape = tuple(request_shape)
        model.eval()
        self.plan = IntegerExecutionPlan.from_model(model, rounding=rounding)
        # Served batches are always fresh, so content-hashing activations
        # would be pure overhead (and would pin the largest coalesced
        # batch's row codes per layer for the endpoint's lifetime).
        self.plan.cache_activations = False
        # Engines and the layer patching are stateful: one batch at a time.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    @property
    def request_type(self) -> type:
        return SCENARIOS[self.scenario]

    def request_payload(self, request) -> np.ndarray:
        """Validate a request and return its normalized payload array."""
        if not isinstance(request, self.request_type):
            raise TypeError(
                f"endpoint {self.name!r} ({self.scenario}) expects "
                f"{self.request_type.__name__}, got {type(request).__name__}"
            )
        if self.scenario == "segmentation":
            image = np.asarray(request.image, dtype=float)
            channels = self.model.config.in_channels
            if image.ndim != 3 or image.shape[0] != channels:
                raise ValueError(
                    f"endpoint {self.name!r}: expected image (C={channels}, H, W), "
                    f"got shape {image.shape}"
                )
            return image
        tokens = np.asarray(request.tokens, dtype=np.int64)
        max_len = self.model.config.max_seq_len
        if tokens.ndim != 1 or not 1 <= tokens.shape[0] <= max_len:
            raise ValueError(
                f"endpoint {self.name!r}: expected 1-D tokens of length 1..{max_len}, "
                f"got shape {tokens.shape}"
            )
        vocab = self.model.config.vocab_size
        if tokens.min() < 0 or tokens.max() >= vocab:
            raise ValueError(f"endpoint {self.name!r}: token ids outside [0, {vocab})")
        return tokens

    def coalesce_key(self, payload: np.ndarray) -> tuple:
        """Batching key: only same-endpoint, same-shape payloads stack."""
        return (self.name, payload.shape)

    def synth_request(self, rng: np.random.Generator):
        """A deterministic synthetic request (load generator / warmup)."""
        if self.scenario == "segmentation":
            return SegmentationRequest(image=rng.normal(size=self.request_shape))
        tokens = rng.integers(0, self.model.config.vocab_size, size=self.request_shape)
        return self.request_type(tokens=tokens)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer_batch(self, payloads: Sequence[np.ndarray]) -> List[object]:
        """Serve a coalesced batch through one integer-datapath forward."""
        if not payloads:
            return []
        shapes = {tuple(p.shape) for p in payloads}
        if len(shapes) > 1:
            raise ValueError(f"cannot stack mixed payload shapes: {sorted(shapes)}")
        batch = np.stack(payloads)
        from ..tensor import no_grad
        from ..tensor.tensor import Tensor

        with self.lock, integer_execution(self.model, self.plan):
            if self.scenario == "scoring":
                logprobs = self.model.next_token_logprobs(batch)
                return [
                    ScoringResponse(logprobs=row, top_token=int(row.argmax()))
                    for row in logprobs
                ]
            with no_grad():
                if self.scenario == "segmentation":
                    logits = self.model(Tensor(batch)).data
                    return [
                        SegmentationResponse(
                            logits=row, class_map=row.argmax(axis=-1)
                        )
                        for row in logits
                    ]
                logits = self.model(batch).data
                return [
                    ClassificationResponse(logits=row, label=int(row.argmax()))
                    for row in logits
                ]

    def serve_one(self, request) -> object:
        """Single-request convenience path (the determinism oracle)."""
        return self.infer_batch([self.request_payload(request)])[0]

    def warmup(self, seed: int = 0) -> None:
        """Populate the plan's weight-code/scale caches with one batch."""
        rng = np.random.default_rng(seed)
        self.serve_one(self.synth_request(rng))

    def __repr__(self) -> str:
        return (
            f"ModelEndpoint({self.name!r}, scenario={self.scenario!r}, "
            f"layers={len(self.plan.layer_names)}, groups={len(self.plan.groups)})"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class EndpointRegistry:
    """Named endpoints the service can route requests to."""

    def __init__(self) -> None:
        self._endpoints: "OrderedDict[str, ModelEndpoint]" = OrderedDict()

    def register(self, endpoint: ModelEndpoint) -> ModelEndpoint:
        if endpoint.name in self._endpoints:
            raise ValueError(f"duplicate endpoint name {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        return endpoint

    def get(self, name: str) -> ModelEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; registered: {sorted(self._endpoints)}"
            ) from None

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._endpoints)

    def __iter__(self) -> Iterator[ModelEndpoint]:
        return iter(self._endpoints.values())

    def __len__(self) -> int:
        return len(self._endpoints)


# ----------------------------------------------------------------------
# Deterministic, memoized endpoint builders (the teacher-memo idiom)
# ----------------------------------------------------------------------


def _quantized(model_ctor: Callable[[], object], calibrate, gs: int):
    from ..quant import apsq_config, quantize_model

    model = quantize_model(model_ctor(), apsq_config(gs=gs, pci=8))
    calibrate(model)
    model.eval()
    return model


def _build_bert(seed: int, gs: int):
    from ..tensor import manual_seed

    manual_seed(seed)
    config = BertConfig(num_classes=2, num_layers=2, hidden=64, max_seq_len=16)
    rng = np.random.default_rng(seed)

    def calibrate(model):
        model(rng.integers(0, config.vocab_size, size=(8, 8)))

    return _quantized(lambda: BertTiny(config), calibrate, gs), "classification", (8,)


def _build_llama(seed: int, gs: int):
    from ..tensor import manual_seed

    manual_seed(seed)
    config = LlamaConfig()
    rng = np.random.default_rng(seed)

    def calibrate(model):
        model(rng.integers(0, config.vocab_size, size=(4, 12)))

    return _quantized(lambda: LlamaTiny(config), calibrate, gs), "scoring", (12,)


def _build_segformer(seed: int, gs: int):
    from ..tensor import manual_seed
    from ..tensor.tensor import Tensor

    manual_seed(seed)
    config = SegformerConfig()
    rng = np.random.default_rng(seed)

    def calibrate(model):
        model(Tensor(rng.normal(size=(2, config.in_channels, 16, 16))))

    return (
        _quantized(lambda: SegformerTiny(config), calibrate, gs),
        "segmentation",
        (config.in_channels, 16, 16),
    )


FAMILIES: Dict[str, Callable[[int, int], tuple]] = {
    "bert": _build_bert,
    "llama": _build_llama,
    "segformer": _build_segformer,
}

_ENDPOINT_MEMO: "OrderedDict[tuple, ModelEndpoint]" = OrderedDict()
_ENDPOINT_MEMO_CAP = 6


def clear_endpoint_memo() -> None:
    _ENDPOINT_MEMO.clear()


def build_endpoint(
    family: str, seed: int = 0, gs: int = 2, rounding: str = "half_even"
) -> ModelEndpoint:
    """A calibrated endpoint for one model family (memoized per process).

    Deterministic per key: ``manual_seed(seed)`` before construction and a
    seeded rng for the calibration batch, so any process (or serve
    worker) building the same key pins an identical model and plan.
    """
    try:
        builder = FAMILIES[family]
    except KeyError:
        raise KeyError(f"unknown endpoint family {family!r}; options: {sorted(FAMILIES)}")
    key = (family, seed, gs, rounding)
    if key in _ENDPOINT_MEMO:
        _ENDPOINT_MEMO.move_to_end(key)
        return _ENDPOINT_MEMO[key]
    model, scenario, request_shape = builder(seed, gs)
    endpoint = ModelEndpoint(family, scenario, model, request_shape, rounding=rounding)
    _ENDPOINT_MEMO[key] = endpoint
    while len(_ENDPOINT_MEMO) > _ENDPOINT_MEMO_CAP:
        _ENDPOINT_MEMO.popitem(last=False)
    return endpoint


def default_registry(
    families: Sequence[str] = ("bert", "llama", "segformer"),
    seed: int = 0,
    gs: int = 2,
) -> EndpointRegistry:
    """The three-scenario registry the CLI and the benches serve from."""
    registry = EndpointRegistry()
    for family in families:
        registry.register(build_endpoint(family, seed=seed, gs=gs))
    return registry
