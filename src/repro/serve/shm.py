"""Zero-copy payload transport: a shared-memory slot arena + descriptors.

The process dataplane used to pickle every coalesced batch — request
payloads down the executor/node pipe, response arrays back up — which
puts serialization, not inference, at the top of the serve profile once
batches are large.  This module replaces the payload bytes with a
``multiprocessing.shared_memory`` **arena**: a fixed number of aligned,
fixed-size slots over one segment.  The parent writes request tensors
into a slot and ships only a tiny :class:`SlotDescriptor` — ``(slot,
(dtype, shape, offset, nbytes) spans, sha256 digest)`` — over the pipe;
the worker maps the same segment, reads the arrays zero-copy, writes its
response arrays into a second, parent-pre-allocated slot, and replies
with another descriptor.

Design rules that make this crash-safe:

- **All allocation is parent-side.**  Slot free lists and refcounts live
  in ordinary parent memory, never in the shared segment, so a worker
  that dies mid-batch (``kill -9`` included) cannot corrupt allocator
  state.  The parent releases a dead worker's in-flight slots the moment
  the pipe EOF surfaces — reclamation is a ``finally`` block, not a
  distributed protocol.
- **Descriptors are verified.**  Every read recomputes the spans' sha256
  and compares it to the descriptor's digest; a torn write or corrupted
  descriptor raises :class:`ShmIntegrityError` instead of serving wrong
  bytes.
- **Backpressure, then failure.**  ``acquire`` blocks while the arena is
  full (bounded memory under load) and raises
  :class:`ArenaExhaustedError` after its timeout.
- **Graceful fallback.**  A payload bigger than one slot raises
  :class:`SlotOverflowError`; callers fall back to the pickle path for
  that batch.  ``REPRO_SHM=0`` disables the arena wholesale (the
  supported fallback configuration, exercised in CI).

Knobs: ``REPRO_SHM`` (default on), ``REPRO_SHM_SLOTS`` (default 32),
``REPRO_SHM_SLOT_KB`` (default 1024).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import faults

#: Spans are aligned to this many bytes inside a slot, so every mapped
#: array view is properly aligned (same discipline as the artifact
#: payload packing in :mod:`repro.artifacts.format`).
SPAN_ALIGN = 64


class ShmError(RuntimeError):
    """Base class for arena transport failures."""


class ArenaExhaustedError(ShmError):
    """No free slot became available within the acquire timeout."""


class SlotOverflowError(ShmError):
    """The arrays do not fit in one slot; use the pickle fallback."""


class ShmIntegrityError(ShmError):
    """A descriptor's digest does not match the bytes it points at."""


def shm_enabled() -> bool:
    """The ``REPRO_SHM`` gate (default on; ``0`` falls back to pickle)."""
    return os.environ.get("REPRO_SHM", "1") not in ("0", "false", "no", "off")


def default_geometry() -> Tuple[int, int]:
    """(slots, slot_bytes) from the environment knobs."""
    slots = int(os.environ.get("REPRO_SHM_SLOTS", "32") or "32")
    slot_kb = int(os.environ.get("REPRO_SHM_SLOT_KB", "1024") or "1024")
    return max(1, slots), max(SPAN_ALIGN, slot_kb * 1024)


def _spans_digest(views: Sequence[np.ndarray]) -> str:
    h = hashlib.sha256()
    for view in views:
        h.update(str(view.dtype.str).encode("ascii"))
        h.update(repr(view.shape).encode("ascii"))
        h.update(view.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class SlotDescriptor:
    """What actually crosses the pipe: where the arrays live, not the bytes.

    ``spans`` is a tuple of ``(dtype_str, shape, offset, nbytes)`` — the
    offsets are slot-relative.  ``digest`` is the sha256 over every
    span's dtype/shape/bytes, verified on read.
    """

    slot: int
    spans: Tuple[Tuple[str, Tuple[int, ...], int, int], ...]
    digest: str

    @property
    def nbytes(self) -> int:
        return sum(span[3] for span in self.spans)


class ShmArena:
    """A ring of fixed-size aligned slots over one shared-memory segment.

    The creating (parent) process owns the allocator — ``acquire`` /
    ``release`` / refcounts are parent-side only.  Workers attach with
    :meth:`attach` and may only read descriptors handed to them and
    write into slots the parent pre-allocated (:meth:`write`).
    """

    def __init__(
        self,
        slots: Optional[int] = None,
        slot_bytes: Optional[int] = None,
        name: Optional[str] = None,
        _create: bool = True,
    ) -> None:
        default_slots, default_bytes = default_geometry()
        self.slots = int(slots if slots is not None else default_slots)
        self.slot_bytes = int(slot_bytes if slot_bytes is not None else default_bytes)
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.slot_bytes < SPAN_ALIGN:
            raise ValueError(f"slot_bytes must be >= {SPAN_ALIGN}, got {self.slot_bytes}")
        self._owner = _create
        if _create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=self.slots * self.slot_bytes
            )
        else:
            # Attach without registering with the resource tracker: only
            # the owner may unlink, and (under fork) the tracker is
            # shared with the parent, so a child-side unregister would
            # strip the parent's own registration.  Suppressing the
            # register call during attach sidesteps both failure modes
            # (Python 3.13 exposes this as ``track=False``).
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        self._buf = self._shm.buf
        self._closed = False
        # Parent-side allocator state (meaningless on attached arenas).
        self._lock = threading.Lock()
        self._free_slot = threading.Condition(self._lock)
        self._free: deque = deque(range(self.slots))
        self._refs: Dict[int, int] = {}

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "ShmArena":
        """Map an existing arena (worker side — no allocator rights)."""
        return cls(slots=slots, slot_bytes=slot_bytes, name=name, _create=False)

    def geometry(self) -> Tuple[str, int, int]:
        """(name, slots, slot_bytes) — everything a worker needs to attach."""
        return (self.name, self.slots, self.slot_bytes)

    # ------------------------------------------------------------------
    # Allocation (owner side)
    # ------------------------------------------------------------------
    def acquire(self, timeout: Optional[float] = 5.0) -> int:
        """Claim a free slot (refcount 1); blocks while the arena is full.

        Blocking *is* the backpressure: submission throttles to slot
        turnover instead of growing unbounded.  After ``timeout`` seconds
        with no free slot, raises :class:`ArenaExhaustedError`.
        """
        if not self._owner:
            raise ShmError("only the arena owner allocates slots")
        rule = faults.fire("arena.acquire")
        if rule is not None and rule.kind == "arena_exhaust":
            # Injected backpressure: behave exactly as if every slot had
            # stayed in flight for the whole timeout.
            raise ArenaExhaustedError(
                f"injected arena exhaustion ({self.slots} slots treated as in flight)"
            )
        with self._free_slot:
            if not self._free and not self._free_slot.wait_for(
                lambda: bool(self._free), timeout=timeout
            ):
                raise ArenaExhaustedError(
                    f"no free arena slot within {timeout}s "
                    f"({self.slots} slots, all in flight)"
                )
            slot = self._free.popleft()
            self._refs[slot] = 1
            return slot

    def retain(self, slot: int) -> None:
        """Bump a held slot's refcount (shared ownership across readers)."""
        with self._lock:
            if slot not in self._refs:
                raise ShmError(f"slot {slot} is not held")
            self._refs[slot] += 1

    def release(self, slot: int) -> None:
        """Drop one reference; the slot returns to the free list at zero.

        Idempotent for already-free slots so crash-cleanup paths can
        release unconditionally.
        """
        with self._free_slot:
            count = self._refs.get(slot)
            if count is None:
                return
            if count > 1:
                self._refs[slot] = count - 1
                return
            del self._refs[slot]
            self._free.append(slot)
            self._free_slot.notify()

    def in_use(self) -> int:
        """How many slots are currently held (0 == fully reclaimed)."""
        with self._lock:
            return len(self._refs)

    # ------------------------------------------------------------------
    # Data plane (both sides)
    # ------------------------------------------------------------------
    def write(self, slot: int, arrays: Sequence[np.ndarray]) -> SlotDescriptor:
        """Copy ``arrays`` into ``slot`` at 64-byte alignment; descriptor out."""
        if not 0 <= slot < self.slots:
            raise ShmError(f"slot {slot} outside arena of {self.slots}")
        base = slot * self.slot_bytes
        offset = 0
        spans: List[Tuple[str, Tuple[int, ...], int, int]] = []
        views: List[np.ndarray] = []
        for array in arrays:
            value = np.ascontiguousarray(array)
            pad = -offset % SPAN_ALIGN
            offset += pad
            nbytes = value.nbytes
            if offset + nbytes > self.slot_bytes:
                raise SlotOverflowError(
                    f"{len(arrays)} arrays need > {self.slot_bytes} bytes in slot "
                    f"{slot} (overflowed at {offset + nbytes})"
                )
            view = np.frombuffer(
                self._buf, dtype=value.dtype, count=value.size, offset=base + offset
            ).reshape(value.shape)
            view[...] = value
            spans.append((value.dtype.str, tuple(value.shape), offset, nbytes))
            views.append(view)
            offset += nbytes
        return SlotDescriptor(slot=slot, spans=tuple(spans), digest=_spans_digest(views))

    def read(self, descriptor: SlotDescriptor, copy: bool = True) -> List[np.ndarray]:
        """Map a descriptor's arrays back out; verifies the digest first.

        ``copy=True`` (the default) returns owned arrays, so the slot can
        be released immediately after; ``copy=False`` returns views that
        are only valid while the slot is held.
        """
        if not 0 <= descriptor.slot < self.slots:
            raise ShmIntegrityError(
                f"descriptor slot {descriptor.slot} outside arena of {self.slots}"
            )
        base = descriptor.slot * self.slot_bytes
        views: List[np.ndarray] = []
        for dtype_str, shape, offset, nbytes in descriptor.spans:
            dtype = np.dtype(dtype_str)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if offset < 0 or offset + nbytes > self.slot_bytes or count * dtype.itemsize != nbytes:
                raise ShmIntegrityError(
                    f"span {dtype_str}{shape} at {offset}+{nbytes} does not fit "
                    f"slot {descriptor.slot}"
                )
            views.append(
                np.frombuffer(
                    self._buf, dtype=dtype, count=count, offset=base + offset
                ).reshape(shape)
            )
        actual = _spans_digest(views)
        rule = faults.fire("arena.read")
        if rule is not None and rule.kind == "corrupt":
            # Injected torn write: make the verify see mismatched bytes.
            actual = "0" * len(actual)
        if actual != descriptor.digest:
            raise ShmIntegrityError(
                f"slot {descriptor.slot} content hashes to {actual[:12]}, "
                f"descriptor says {descriptor.digest[:12]} (torn write or "
                "corrupted descriptor)"
            )
        return [view.copy() for view in views] if copy else views

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment (and unlink it if this process created it)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._shm.close()
        except BufferError:  # outstanding copy=False views somewhere;
            pass  # the mapping goes away with the process instead
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"ShmArena({self.name!r}, {role}, slots={self.slots}, "
            f"slot_bytes={self.slot_bytes}, in_use={len(self._refs)})"
        )


# ----------------------------------------------------------------------
# Result packing: responses cross the arena as raw arrays
# ----------------------------------------------------------------------
# Response dataclasses carry derived scalars (labels, top tokens, class
# maps) next to the float tensors.  Only the tensors cross the arena;
# the receiving side re-derives the scalars with the exact same argmax
# the worker would have run — deterministic given bit-identical logits,
# so the rebuilt responses are byte-equal to pickled ones.


def pack_results(scenario: str, results: Sequence[object]) -> np.ndarray:
    """Stack a batch's raw outputs into one array for the response slot.

    Generation outputs are ragged whenever token budgets differ inside a
    batch; ragged rows cannot share one stacked span, so that surfaces as
    :class:`SlotOverflowError` and the caller takes the pickle fallback
    for the batch — same escape hatch as an oversized payload.
    """
    from .types import raw_output

    rows = [np.asarray(raw_output(result)) for result in results]
    try:
        return np.stack(rows)
    except ValueError as error:
        raise SlotOverflowError(
            f"ragged batch outputs cannot stack for shm transport: {error}"
        ) from None


def unpack_results(scenario: str, stacked: np.ndarray) -> List[object]:
    """Rebuild per-request responses from a response slot's stacked array.

    Mirrors :meth:`ModelEndpoint.infer_batch`'s response construction
    exactly — one row per request, scalars re-derived by argmax.
    Generation tokens rebuild the same way: decoding is greedy, so the
    token sequence is a pure function of the logprob rows that crossed
    the arena.
    """
    from .types import (
        ClassificationResponse,
        GenerationResponse,
        ScoringResponse,
        SegmentationResponse,
    )

    if scenario == "scoring":
        return [
            ScoringResponse(logprobs=row, top_token=int(row.argmax()))
            for row in stacked
        ]
    if scenario == "segmentation":
        return [
            SegmentationResponse(logits=row, class_map=row.argmax(axis=-1))
            for row in stacked
        ]
    if scenario in ("classification", "image_classification"):
        return [
            ClassificationResponse(logits=row, label=int(row.argmax()))
            for row in stacked
        ]
    if scenario == "generation":
        return [
            GenerationResponse(
                tokens=rows.argmax(axis=-1).astype(np.int64),
                logprobs=rows,
                steps=int(rows.shape[0]),
            )
            for rows in stacked
        ]
    raise KeyError(f"unknown scenario {scenario!r}")
