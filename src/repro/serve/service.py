"""The inference service: submit → coalesce → dispatch → respond.

``InferenceService`` owns a :class:`~repro.serve.batcher.MicroBatcher`
and a pool of worker threads.  ``submit`` validates the request against
its endpoint, enqueues it (with backpressure once ``queue_limit``
requests are pending — reject by default, optionally block) and returns
a :class:`ServeFuture`.  Workers pull coalesced batches under one
condition variable — sleeping exactly until the earliest batch deadline —
and execute them through the endpoint's pinned integer execution plan;
endpoints serialize on their own lock, so multiple workers overlap
*across* endpoints while each plan's stateful engines stay single-writer.

Shutdown is graceful by default: :meth:`drain` stops intake, flushes
every queue through the normal dispatch path (partial batches included),
joins the workers and returns the final metrics snapshot.  :meth:`abort`
rejects whatever is still queued instead.

Determinism: dispatch order and coalescing change *which* requests share
a batch, never the bits of a response — the endpoint invariant
(``tests/serve/test_determinism.py``) makes any interleaving equivalent
to sequential single-request serving.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from .batcher import Batch, BatchPolicy, MicroBatcher, PendingRequest
from .endpoint import EndpointRegistry
from .metrics import ServiceMetrics
from .types import ServeResponse, ServeTiming


class BackpressureError(RuntimeError):
    """The queue is full and the service was asked not to block."""


class ServiceClosedError(RuntimeError):
    """The service is draining or closed and takes no new requests."""


class ServeFuture:
    """Completion slot for one request (event-based, thread-safe)."""

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[ServeResponse] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServeResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    def _resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class InferenceService:
    """Micro-batching front-end over a registry of model endpoints."""

    def __init__(
        self,
        registry: EndpointRegistry,
        policy: Optional[BatchPolicy] = None,
        workers: int = 1,
        queue_limit: int = 256,
        block_on_full: bool = False,
        record_timings: bool = False,
        dispatcher: Optional[Callable[[str, List[object]], list]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.workers = workers
        self.queue_limit = queue_limit
        self.block_on_full = block_on_full
        self.record_timings = record_timings
        #: ``dispatcher(endpoint_name, payloads) -> results`` replaces the
        #: in-process ``endpoint.infer_batch`` execution — the hook
        #: process-level workers plug into (the registry then only needs
        #: validation stubs, see :mod:`repro.serve.workers`).
        self.dispatcher = dispatcher
        #: Set by :func:`repro.serve.supervisor.supervised_service` when the
        #: dispatcher routes through a supervised fleet; ``status()`` folds
        #: its node health into the service snapshot.
        self.supervisor = None
        #: Set by :func:`repro.serve.workers.process_service`; ``status()``
        #: folds its shm/pickle dataplane counters into the snapshot.
        self.process_pool = None
        #: Per-coalescing-key dispatch counters (batches served, requests
        #: they carried) — with bucketed scoring keys this is the
        #: per-bucket coalescing view ``status()`` reports.
        self._key_stats: dict = {}
        self.metrics = ServiceMetrics()
        self._batcher = MicroBatcher(self.policy)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._state = "new"
        self._next_id = 0
        self._threads: List[threading.Thread] = []
        self._shutdown_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        with self._lock:
            if self._state != "new":
                raise RuntimeError(f"cannot start a {self._state} service")
            self._state = "running"
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def on_shutdown(self, hook: Callable[[], None]) -> None:
        """Register a callback to run after drain/abort joins the workers."""
        self._shutdown_hooks.append(hook)

    def _run_shutdown_hooks(self) -> None:
        hooks, self._shutdown_hooks = self._shutdown_hooks, []
        for hook in hooks:
            hook()

    def drain(self) -> dict:
        """Graceful shutdown: flush every queue, join workers.

        Returns the final metrics snapshot.  Safe to call more than once.
        """
        with self._lock:
            if self._state == "running":
                self._state = "draining"
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for thread in self._threads:
            thread.join()
        with self._lock:
            self._state = "closed"
            self._not_full.notify_all()
        self._run_shutdown_hooks()
        return self.metrics.snapshot()

    def abort(self) -> dict:
        """Hard shutdown: reject everything still queued, join workers."""
        with self._lock:
            self._state = "closed"
            rejected: List[PendingRequest] = []
            while True:
                batch = self._batcher.pop_ready(time.monotonic(), flush=True)
                if batch is None:
                    break
                rejected.extend(batch.requests)
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for pending in rejected:
            pending.future._reject(ServiceClosedError("service aborted"))
        for thread in self._threads:
            thread.join()
        self._run_shutdown_hooks()
        return self.metrics.snapshot()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, endpoint_name: str, request) -> ServeFuture:
        """Validate, enqueue, and return the request's future.

        Raises :class:`BackpressureError` when the queue is full (or
        blocks for space when ``block_on_full``), and
        :class:`ServiceClosedError` once draining has begun.
        """
        endpoint = self.registry.get(endpoint_name)
        payload = endpoint.request_payload(request)  # validate outside the lock
        key = endpoint.coalesce_key(payload)
        future = ServeFuture()
        with self._lock:
            while True:
                if self._state != "running":
                    raise ServiceClosedError(f"service is {self._state}")
                if self._batcher.depth() < self.queue_limit:
                    break
                if not self.block_on_full:
                    self.metrics.on_reject()
                    raise BackpressureError(
                        f"queue full ({self.queue_limit} pending requests)"
                    )
                self._not_full.wait()
            now = time.monotonic()
            pending = PendingRequest(
                request_id=self._next_id,
                endpoint=endpoint_name,
                payload=payload,
                enqueued_at=now,
                future=future,
            )
            self._next_id += 1
            depth = self._batcher.put(key, pending)
            self.metrics.on_submit(depth, now)
            self._not_empty.notify()
        return future

    def serve(self, endpoint_name: str, request, timeout: Optional[float] = None) -> ServeResponse:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(endpoint_name, request).result(timeout)

    def queue_depth(self) -> int:
        with self._lock:
            return self._batcher.depth()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def status(self) -> dict:
        """Live operational snapshot (what ``serve-admin status`` renders).

        Combines the service's own state/queue/metrics with per-key queue
        depths, per-bucket coalescing/padding stats, the process pool's
        dataplane counters, and the supervised fleet's node health when
        those components are attached.
        """
        with self._lock:
            state = self._state
            depth = self._batcher.depth()
            queues = {str(key): n for key, n in self._batcher.key_depths().items()}
            coalescing = {key: dict(stats) for key, stats in self._key_stats.items()}
        report = {
            "state": state,
            "queue_depth": depth,
            "queues": queues,
            "coalescing": coalescing,
            "metrics": self.metrics.snapshot(),
        }
        endpoints = {}
        for name in self.registry.names:
            endpoint = self.registry.get(name)
            if hasattr(endpoint, "pad_stats"):
                endpoints[name] = {
                    "bucketing": endpoint.bucketing,
                    "engine_pool": endpoint.engines.size,
                    "padding": endpoint.pad_stats(),
                }
        if endpoints:
            report["endpoints"] = endpoints
        if self.process_pool is not None:
            report["dataplane"] = self.process_pool.dataplane_stats()
        if self.supervisor is not None:
            report["fleet"] = self.supervisor.status()
        return report

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._lock:
                batch = None
                while True:
                    if self._state == "closed":
                        return
                    flush = self._state == "draining"
                    batch = self._batcher.pop_ready(time.monotonic(), flush=flush)
                    if batch is not None:
                        break
                    if flush:
                        return  # draining and nothing left to do
                    deadline = self._batcher.next_deadline(time.monotonic())
                    timeout = None
                    if deadline is not None:
                        timeout = max(0.0, deadline - time.monotonic())
                    self._not_empty.wait(timeout)
                if self._batcher.depth() > 0:
                    self._not_empty.notify()  # more work may already be ready
                self._not_full.notify()
            self._execute(batch)

    def _execute(self, batch: Batch) -> None:
        endpoint = self.registry.get(batch.endpoint)
        started = time.monotonic()
        try:
            payloads = [p.payload for p in batch.requests]
            if self.dispatcher is not None:
                results = self.dispatcher(batch.endpoint, payloads)
            else:
                results = endpoint.infer_batch(payloads)
            results = list(results)
            if len(results) != len(payloads):
                # A short result list would silently drop the trailing
                # requests in the zip below — their futures would hang
                # forever.  Reject the whole batch loudly instead.
                raise RuntimeError(
                    f"endpoint {batch.endpoint!r} returned {len(results)} results "
                    f"for a batch of {len(payloads)} requests"
                )
        except BaseException as error:  # reject the whole batch, keep serving
            self.metrics.on_failure(len(batch.requests))
            for pending in batch.requests:
                pending.future._reject(error)
            return
        done = time.monotonic()
        service_s = done - started
        if getattr(endpoint, "cache_activations", False):
            self.metrics.on_act_cache(batch.endpoint, endpoint.act_cache_stats())
        if self.record_timings:
            from ..experiments.executor import record_cell_timing

            record_cell_timing(f"serve/{batch.endpoint}/batch", "serve", service_s)
        self.metrics.on_batch(batch.endpoint, len(batch.requests), service_s)
        with self._lock:
            stats = self._key_stats.setdefault(
                str(batch.key), {"batches": 0, "requests": 0}
            )
            stats["batches"] += 1
            stats["requests"] += len(batch.requests)
        for pending, result in zip(batch.requests, results):
            timing = ServeTiming(
                queue_s=started - pending.enqueued_at,
                service_s=service_s,
                latency_s=done - pending.enqueued_at,
                batch_size=len(batch.requests),
            )
            self.metrics.on_complete(
                batch.endpoint, timing.queue_s, timing.latency_s, done
            )
            pending.future._resolve(
                ServeResponse(
                    request_id=pending.request_id,
                    endpoint=batch.endpoint,
                    result=result,
                    timing=timing,
                )
            )

    def __repr__(self) -> str:
        return (
            f"InferenceService(endpoints={list(self.registry.names)}, "
            f"workers={self.workers}, policy={self.policy}, state={self._state!r})"
        )
