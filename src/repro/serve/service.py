"""The inference service: submit → coalesce → dispatch → respond.

``InferenceService`` owns a :class:`~repro.serve.batcher.MicroBatcher`
and a pool of worker threads.  ``submit`` validates the request against
its endpoint, enqueues it (with backpressure once ``queue_limit``
requests are pending — reject by default, optionally block) and returns
a :class:`ServeFuture`.  Workers pull coalesced batches under one
condition variable — sleeping exactly until the earliest batch deadline —
and execute them through the endpoint's pinned integer execution plan;
endpoints serialize on their own lock, so multiple workers overlap
*across* endpoints while each plan's stateful engines stay single-writer.

Requests carry a lifecycle: an optional ``deadline_s`` and a
``priority``.  Queued requests that outlive their deadline are expired
with a typed :class:`~repro.serve.types.DeadlineExceeded` — never served
dead, never dropped silently — and the batcher refuses to coalesce a
request into a batch it cannot meet (an EWMA of recent batch service
times estimates the finish line).  Per-endpoint :class:`SLOBudget`\\ s
add admission control: when the rolling p99 or queue depth breaches
budget, the lowest-priority traffic is shed first with a typed
:class:`~repro.serve.types.Shed` rejection, which bounds p99 under
saturation where an unbounded queue would grow without limit.  Arena
backpressure from the shared-memory dataplane surfaces through the same
shed path (reason ``"arena"``) instead of failing the batch.

Shutdown is graceful by default: :meth:`drain` stops intake, flushes
every queue through the normal dispatch path (partial batches included),
joins the workers and returns the final metrics snapshot.  :meth:`abort`
rejects whatever is still queued instead.

Determinism: dispatch order, coalescing, shedding and expiry change
*which* requests share a batch (or are served at all), never the bits of
a served response — the endpoint invariant
(``tests/serve/test_determinism.py``) makes any interleaving equivalent
to sequential single-request serving.
"""

from __future__ import annotations

import inspect
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from . import faults
from .batcher import Batch, BatchPolicy, MicroBatcher, PendingRequest
from .endpoint import EndpointRegistry
from .metrics import ServiceMetrics
from .shm import ArenaExhaustedError
from .trace import Tracer, merge_meta_events
from .types import DeadlineExceeded, DeadlineMiss, ServeResponse, ServeTiming, Shed


class BackpressureError(RuntimeError):
    """The queue is full and the service was asked not to block."""


class ServiceClosedError(RuntimeError):
    """The service is draining or closed and takes no new requests."""


@dataclass(frozen=True)
class SLOBudget:
    """Per-endpoint service-level objective the admission control defends.

    ``p99_target_s`` bounds the rolling p99 latency; ``max_queue_depth``
    bounds the endpoint's queued backlog.  Breaching either sheds the
    lowest-priority traffic first.  ``None`` fields are unenforced.
    """

    p99_target_s: Optional[float] = None
    max_queue_depth: Optional[int] = None

    def active(self) -> bool:
        return self.p99_target_s is not None or self.max_queue_depth is not None


def slo_budget_from_env(environ=None) -> Optional[SLOBudget]:
    """Default budget from ``REPRO_SLO_P99_MS`` / ``REPRO_SLO_DEPTH``.

    Unset (or empty) variables leave the corresponding bound unenforced;
    with neither set there is no default budget and admission control
    stays off unless budgets are passed explicitly.
    """
    env = environ if environ is not None else os.environ
    p99_ms = env.get("REPRO_SLO_P99_MS", "").strip()
    depth = env.get("REPRO_SLO_DEPTH", "").strip()
    if not p99_ms and not depth:
        return None
    return SLOBudget(
        p99_target_s=float(p99_ms) / 1e3 if p99_ms else None,
        max_queue_depth=int(depth) if depth else None,
    )


@dataclass(eq=False)
class _LiveSequence:
    """One sequence inside a running continuous-batching generation loop."""

    pending: PendingRequest
    state: object  # repro.generate.DecodeState
    budget: int
    tokens: List[int]
    rows: List[np.ndarray]
    admitted_at: float


def _accepts_meta(dispatcher) -> bool:
    """Does the dispatcher take the (endpoint, payloads, meta) protocol?

    Process-level dispatchers accept a third ``meta`` argument carrying
    per-row deadlines in and transport retry/hedge facts out; plain
    two-argument dispatchers (tests, ad-hoc hooks) keep working without
    it.
    """
    try:
        sig = inspect.signature(dispatcher)
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            return True
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            positional += 1
    return positional >= 3


class ServeFuture:
    """Completion slot for one request (event-based, thread-safe)."""

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[ServeResponse] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServeResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    def _resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class InferenceService:
    """Micro-batching front-end over a registry of model endpoints."""

    def __init__(
        self,
        registry: EndpointRegistry,
        policy: Optional[BatchPolicy] = None,
        workers: int = 1,
        queue_limit: int = 256,
        block_on_full: bool = False,
        record_timings: bool = False,
        dispatcher: Optional[Callable[[str, List[object]], list]] = None,
        slo_budgets: Optional[Dict[str, SLOBudget]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.workers = workers
        self.queue_limit = queue_limit
        self.block_on_full = block_on_full
        self.record_timings = record_timings
        #: ``dispatcher(endpoint_name, payloads[, meta]) -> results``
        #: replaces the in-process ``endpoint.infer_batch`` execution —
        #: the hook process-level workers plug into (the registry then
        #: only needs validation stubs, see :mod:`repro.serve.workers`).
        #: Three-argument dispatchers receive a ``meta`` dict with the
        #: batch's absolute per-row ``deadlines`` and may report
        #: ``replays``/``hedged`` back for the timing records.
        self.dispatcher = dispatcher
        self._dispatcher_meta = dispatcher is not None and _accepts_meta(dispatcher)
        #: Per-endpoint SLO budgets; an entry under ``"*"`` applies to
        #: every endpoint without its own.  When ``None``, the
        #: ``REPRO_SLO_P99_MS``/``REPRO_SLO_DEPTH`` environment default
        #: (if any) applies fleet-wide.
        if slo_budgets is None:
            env_budget = slo_budget_from_env()
            slo_budgets = {"*": env_budget} if env_budget is not None else {}
        self.slo_budgets = dict(slo_budgets)
        #: Set by :func:`repro.serve.supervisor.supervised_service` when the
        #: dispatcher routes through a supervised fleet; ``status()`` folds
        #: its node health into the service snapshot.
        self.supervisor = None
        #: Set by :func:`repro.serve.workers.process_service`; ``status()``
        #: folds its shm/pickle dataplane counters into the snapshot.
        self.process_pool = None
        #: Set by :func:`repro.serve.admin.mount_admin`: the live HTTP
        #: admin server scraping this service, closed on shutdown.
        self.admin = None
        #: Per-coalescing-key dispatch counters (batches served, requests
        #: they carried) — with bucketed scoring keys this is the
        #: per-bucket coalescing view ``status()`` reports.
        self._key_stats: dict = {}
        #: Per-request span tracing (``REPRO_TRACE_SAMPLE``; off by
        #: default).  Sampled requests carry a ``RequestTrace`` through
        #: the batcher and dispatch loop; finished traces land in the
        #: tracer's ring for the admin plane's ``/trace`` endpoint.
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = ServiceMetrics()
        self._batcher = MicroBatcher(self.policy)
        #: EWMA of recent batch service times per endpoint — the finish-
        #: line estimate behind "never coalesce a request into a batch it
        #: cannot meet" (the batcher expires such rows at pop time).
        self._service_ewma: Dict[str, float] = {}
        self._batcher.estimator = self._estimate_service_s
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._state = "new"
        self._next_id = 0
        self._threads: List[threading.Thread] = []
        self._shutdown_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        with self._lock:
            if self._state != "new":
                raise RuntimeError(f"cannot start a {self._state} service")
            self._state = "running"
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def on_shutdown(self, hook: Callable[[], None]) -> None:
        """Register a callback to run after drain/abort joins the workers."""
        self._shutdown_hooks.append(hook)

    def _run_shutdown_hooks(self) -> None:
        hooks, self._shutdown_hooks = self._shutdown_hooks, []
        for hook in hooks:
            hook()

    def drain(self) -> dict:
        """Graceful shutdown: flush every queue, join workers.

        Returns the final metrics snapshot.  Safe to call more than once.
        """
        with self._lock:
            if self._state == "running":
                self._state = "draining"
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for thread in self._threads:
            thread.join()
        with self._lock:
            self._state = "closed"
            self._not_full.notify_all()
        self._run_shutdown_hooks()
        return self.metrics.snapshot()

    def abort(self) -> dict:
        """Hard shutdown: reject everything still queued, join workers."""
        with self._lock:
            self._state = "closed"
            rejected: List[PendingRequest] = []
            while True:
                batch = self._batcher.pop_ready(time.monotonic(), flush=True)
                if batch is None:
                    break
                rejected.extend(batch.requests)
            rejected.extend(self._batcher.take_expired())
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for pending in rejected:
            self.tracer.finish(pending.trace, "aborted")
            pending.future._reject(ServiceClosedError("service aborted"))
        for thread in self._threads:
            thread.join()
        self._run_shutdown_hooks()
        return self.metrics.snapshot()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def _budget_for(self, endpoint_name: str) -> Optional[SLOBudget]:
        budget = self.slo_budgets.get(endpoint_name, self.slo_budgets.get("*"))
        if budget is not None and budget.active():
            return budget
        return None

    def _estimate_service_s(self, endpoint_name: str) -> float:
        return self._service_ewma.get(endpoint_name, 0.0)

    def submit(
        self,
        endpoint_name: str,
        request,
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> ServeFuture:
        """Validate, enqueue, and return the request's future.

        ``priority`` orders SLO shedding (higher survives longer);
        ``deadline_s`` is a relative deadline from now — a queued request
        that outlives it gets a typed :class:`DeadlineExceeded` through
        its future, as does one submitted already dead.  Shed requests
        get a typed :class:`Shed` the same way.  Raises
        :class:`BackpressureError` when the queue is full (or blocks for
        space when ``block_on_full``), and :class:`ServiceClosedError`
        once draining has begun.
        """
        endpoint = self.registry.get(endpoint_name)
        payload = endpoint.request_payload(request)  # validate outside the lock
        key = endpoint.coalesce_key(payload)
        future = ServeFuture()
        if deadline_s is not None and deadline_s <= 0:
            self.metrics.on_deadline(endpoint_name, "queued")
            future._reject(
                DeadlineExceeded(
                    f"deadline of {deadline_s:.4f}s expired before submission",
                    endpoint=endpoint_name,
                    reason="queued",
                )
            )
            return future
        expired: List[PendingRequest] = []
        shed: List[PendingRequest] = []
        shed_reason: Optional[str] = None
        with self._lock:
            while True:
                if self._state != "running":
                    raise ServiceClosedError(f"service is {self._state}")
                if self._batcher.depth() < self.queue_limit:
                    break
                if not self.block_on_full:
                    self.metrics.on_reject()
                    raise BackpressureError(
                        f"queue full ({self.queue_limit} pending requests)"
                    )
                self._not_full.wait()
            now = time.monotonic()
            expired = self._batcher.expire(now)
            admit = True
            budget = self._budget_for(endpoint_name)
            if budget is not None:
                breach = None
                if (
                    budget.max_queue_depth is not None
                    and self._batcher.endpoint_depth(endpoint_name)
                    >= budget.max_queue_depth
                ):
                    breach = "depth"
                elif (
                    budget.p99_target_s is not None
                    and self.metrics.rolling_p99(endpoint_name)
                    > budget.p99_target_s
                ):
                    breach = "p99"
                if breach is not None:
                    # Shed the lowest-priority traffic first: evict a
                    # strictly lower-priority queued request to make room,
                    # otherwise the incoming request IS the lowest.
                    shed_reason = breach
                    lowest = self._batcher.lowest_priority(endpoint_name)
                    if lowest is not None and lowest < priority:
                        victim = self._batcher.shed_lowest(endpoint_name)
                        if victim is not None:
                            shed.append(victim)
                    else:
                        admit = False
            if admit:
                pending = PendingRequest(
                    request_id=self._next_id,
                    endpoint=endpoint_name,
                    payload=payload,
                    enqueued_at=now,
                    future=future,
                    deadline_at=(now + deadline_s) if deadline_s is not None else None,
                    priority=priority,
                    trace=self.tracer.begin(self._next_id, endpoint_name),
                )
                self._next_id += 1
                depth = self._batcher.put(key, pending)
                self.metrics.on_submit(depth, now)
                self._not_empty.notify()
        self._reject_expired(expired, "queued")
        for victim in shed:
            self.metrics.on_shed(victim.endpoint, shed_reason or "p99")
            self.tracer.finish(victim.trace, f"shed:{shed_reason or 'p99'}")
            victim.future._reject(
                Shed(
                    f"shed: endpoint {victim.endpoint!r} over {shed_reason} budget "
                    f"(priority {victim.priority})",
                    endpoint=victim.endpoint,
                    reason=shed_reason or "p99",
                )
            )
        if not admit:
            self.metrics.on_shed(endpoint_name, shed_reason or "p99")
            future._reject(
                Shed(
                    f"shed: endpoint {endpoint_name!r} over {shed_reason} budget "
                    f"(priority {priority} is lowest in sight)",
                    endpoint=endpoint_name,
                    reason=shed_reason or "p99",
                )
            )
        return future

    def serve(self, endpoint_name: str, request, timeout: Optional[float] = None) -> ServeResponse:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(endpoint_name, request).result(timeout)

    def queue_depth(self) -> int:
        with self._lock:
            return self._batcher.depth()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def status(self) -> dict:
        """Live operational snapshot (what ``serve-admin status`` renders).

        Combines the service's own state/queue/metrics with per-key queue
        depths, per-bucket coalescing/padding stats, the process pool's
        dataplane counters, and the supervised fleet's node health when
        those components are attached.
        """
        with self._lock:
            state = self._state
            depth = self._batcher.depth()
            queues = {str(key): n for key, n in self._batcher.key_depths().items()}
            coalescing = {key: dict(stats) for key, stats in self._key_stats.items()}
        report = {
            "state": state,
            "queue_depth": depth,
            "queues": queues,
            "coalescing": coalescing,
            "metrics": self.metrics.snapshot(),
        }
        budgets = {
            name: {
                "p99_target_s": budget.p99_target_s,
                "max_queue_depth": budget.max_queue_depth,
            }
            for name, budget in sorted(self.slo_budgets.items())
            if budget is not None and budget.active()
        }
        if budgets:
            report["slo"] = budgets
        endpoints = {}
        for name in self.registry.names:
            endpoint = self.registry.get(name)
            if hasattr(endpoint, "pad_stats"):
                endpoints[name] = {
                    "bucketing": endpoint.bucketing,
                    "engine_pool": endpoint.engines.size,
                    "padding": endpoint.pad_stats(),
                }
                if hasattr(endpoint, "gen_stats"):
                    endpoints[name]["generation"] = endpoint.gen_stats()
        if endpoints:
            report["endpoints"] = endpoints
        if self.tracer.enabled:
            report["trace"] = {"sample": self.tracer.rate, **self.tracer.counters()}
        if self.process_pool is not None:
            report["dataplane"] = self.process_pool.dataplane_stats()
        if self.supervisor is not None:
            report["fleet"] = self.supervisor.status()
        return report

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _reject_expired(self, expired: List[PendingRequest], stage: str) -> None:
        for pending in expired:
            self.metrics.on_deadline(pending.endpoint, stage)
            self.tracer.finish(pending.trace, f"deadline_exceeded:{stage}")
            pending.future._reject(
                DeadlineExceeded(
                    f"deadline exceeded while {stage} "
                    f"(endpoint {pending.endpoint!r})",
                    endpoint=pending.endpoint,
                    reason=stage,
                )
            )

    def _worker(self) -> None:
        while True:
            expired: List[PendingRequest] = []
            unmeetable: List[PendingRequest] = []
            batch = None
            stop = False
            with self._lock:
                while True:
                    if self._state == "closed":
                        stop = True
                        break
                    now = time.monotonic()
                    expired.extend(self._batcher.expire(now))
                    flush = self._state == "draining"
                    batch = self._batcher.pop_ready(now, flush=flush)
                    unmeetable.extend(self._batcher.take_expired())
                    if batch is not None and not batch.requests:
                        batch = None  # every popped row was past due
                    if batch is not None:
                        break
                    if expired or unmeetable:
                        break  # reject promptly, then come back for more
                    if flush:
                        stop = True  # draining and nothing left to do
                        break
                    deadline = self._batcher.next_deadline(time.monotonic())
                    timeout = None
                    if deadline is not None:
                        timeout = max(0.0, deadline - time.monotonic())
                    self._not_empty.wait(timeout)
                if batch is not None and self._batcher.depth() > 0:
                    self._not_empty.notify()  # more work may already be ready
                if batch is not None or expired or unmeetable:
                    self._not_full.notify()
            self._reject_expired(expired, "queued")
            self._reject_expired(unmeetable, "unmeetable")
            if batch is not None:
                self._execute(batch)
            elif stop:
                return

    def _execute(self, batch: Batch) -> None:
        endpoint = self.registry.get(batch.endpoint)
        if self.dispatcher is None and getattr(endpoint, "scenario", "") == "generation":
            # Generation batches are not one-shot: the continuous loop
            # holds the engine across decode steps so queued sequences can
            # join mid-flight.  (With a process dispatcher the workers run
            # fixed batches to completion through infer_batch instead.)
            self._execute_generation(batch, endpoint)
            return
        started = time.monotonic()
        meta: Optional[dict] = None
        traced = [p.trace for p in batch.requests if p.trace is not None]
        for trace in traced:
            trace.event("dispatch", f"batch={len(batch.requests)}")
        try:
            rule = faults.crash_point("service.batch")
            if rule is not None and rule.kind == "error":
                raise faults.FaultError(
                    f"injected fault at service.batch ({batch.endpoint})"
                )
            payloads = [p.payload for p in batch.requests]
            if self.dispatcher is not None:
                if self._dispatcher_meta:
                    meta = {"deadlines": [p.deadline_at for p in batch.requests]}
                    if traced:
                        # Transport-side span channel: the dispatcher
                        # appends (stage, t, detail) events here and the
                        # fold below applies them to every traced rider.
                        meta["trace"] = []
                    for trace in traced:
                        trace.event("transport")
                    results = self.dispatcher(batch.endpoint, payloads, meta)
                else:
                    for trace in traced:
                        trace.event("transport", "inline")
                    results = self.dispatcher(batch.endpoint, payloads)
            else:
                for trace in traced:
                    trace.event("transport", "inproc")
                results = endpoint.infer_batch(payloads)
            if meta is not None and traced:
                merge_meta_events(traced, meta.get("trace", []))
            for trace in traced:
                trace.event("engine")
            results = list(results)
            if len(results) != len(payloads):
                # A short result list would silently drop the trailing
                # requests in the zip below — their futures would hang
                # forever.  Reject the whole batch loudly instead.
                raise RuntimeError(
                    f"endpoint {batch.endpoint!r} returned {len(results)} results "
                    f"for a batch of {len(payloads)} requests"
                )
        except ArenaExhaustedError as error:
            # Arena backpressure is load, not failure: surface it through
            # the shed path so callers see a typed, counted rejection and
            # the fleet keeps serving everything already in flight.
            self.metrics.on_shed(batch.endpoint, "arena", n=len(batch.requests))
            for pending in batch.requests:
                self.tracer.finish(pending.trace, "shed:arena")
                pending.future._reject(
                    Shed(
                        f"shed: shared-memory arena exhausted ({error})",
                        endpoint=batch.endpoint,
                        reason="arena",
                    )
                )
            return
        except BaseException as error:  # reject the whole batch, keep serving
            self.metrics.on_failure(len(batch.requests))
            for pending in batch.requests:
                self.tracer.finish(pending.trace, "failed")
                pending.future._reject(error)
            return
        done = time.monotonic()
        service_s = done - started
        prev = self._service_ewma.get(batch.endpoint)
        self._service_ewma[batch.endpoint] = (
            service_s if prev is None else 0.7 * prev + 0.3 * service_s
        )
        retries = int(meta.get("replays", 0)) if meta else 0
        hedged = bool(meta.get("hedged", False)) if meta else False
        if retries or hedged:
            self.metrics.on_dispatch_meta(retries, hedged)
        if getattr(endpoint, "cache_activations", False):
            self.metrics.on_act_cache(batch.endpoint, endpoint.act_cache_stats())
        if self.record_timings:
            from ..experiments.executor import record_cell_timing

            record_cell_timing(f"serve/{batch.endpoint}/batch", "serve", service_s)
        self.metrics.on_batch(batch.endpoint, len(batch.requests), service_s)
        with self._lock:
            stats = self._key_stats.setdefault(
                str(batch.key), {"batches": 0, "requests": 0}
            )
            stats["batches"] += 1
            stats["requests"] += len(batch.requests)
        for pending, result in zip(batch.requests, results):
            if isinstance(result, DeadlineMiss):
                # A worker skipped this row as already past due — map the
                # marker to the same typed rejection queued expiry uses.
                self.metrics.on_deadline(batch.endpoint, "worker")
                self.tracer.finish(pending.trace, "deadline_exceeded:worker")
                pending.future._reject(
                    DeadlineExceeded(
                        f"deadline exceeded at the worker "
                        f"(endpoint {batch.endpoint!r})",
                        endpoint=batch.endpoint,
                        reason="worker",
                    )
                )
                continue
            if pending.trace is not None:
                pending.trace.event("respond")
            timing = ServeTiming(
                queue_s=started - pending.enqueued_at,
                service_s=service_s,
                latency_s=done - pending.enqueued_at,
                batch_size=len(batch.requests),
                retries=retries,
                hedged=hedged,
                spans=tuple(pending.trace.spans) if pending.trace is not None else None,
            )
            self.metrics.on_complete(
                batch.endpoint, timing.queue_s, timing.latency_s, done
            )
            pending.future._resolve(
                ServeResponse(
                    request_id=pending.request_id,
                    endpoint=batch.endpoint,
                    result=result,
                    timing=timing,
                )
            )
            self.tracer.finish(pending.trace, "served")

    def _execute_generation(self, batch: Batch, endpoint) -> None:
        """Continuous-batching decode loop for one generation endpoint.

        The batch's sequences are prefilled together, then decoded one
        token per iteration as a single ragged batch.  Between steps the
        loop (1) evicts live sequences past their deadline (typed
        ``DeadlineExceeded``, stage ``"decode"``), (2) admits queued
        sequences into free slots via :meth:`MicroBatcher.pop_join`, and
        (3) when the batch is full under an SLO breach, preempts the
        lowest-priority live sequence in favour of a strictly
        higher-priority queued one (typed :class:`Shed`, reason
        ``"preempted"``).  Sequences retire as their token budget or the
        context window fills.

        Determinism: joins, evictions and preemption change *which*
        sequences share a step, never their tokens — every decode step is
        bit-identical to a full-context pass (the :mod:`repro.generate`
        invariant), so any interleaving equals sequential serving.
        """
        from .endpoint import decode_generation_payload

        run_started = time.monotonic()
        live: List[_LiveSequence] = []
        total_steps = 0
        live_sum = 0
        finished = 0
        tokens_out = 0

        def reject_all(
            pendings: List[PendingRequest],
            error: BaseException,
            outcome: str = "failed",
        ) -> None:
            self.metrics.on_failure(len(pendings))
            for pending in pendings:
                self.tracer.finish(pending.trace, outcome)
                pending.future._reject(error)

        rule = faults.crash_point("service.batch")
        if rule is not None and rule.kind == "error":
            reject_all(
                batch.requests,
                faults.FaultError(f"injected fault at service.batch ({batch.endpoint})"),
            )
            return

        def finish(seq: _LiveSequence, done: float, live_count: int) -> None:
            nonlocal finished, tokens_out
            result = endpoint.finish_response(seq.tokens, seq.rows)
            trace = seq.pending.trace
            if trace is not None:
                trace.event("respond", f"tokens={len(seq.tokens)}")
            timing = ServeTiming(
                queue_s=seq.admitted_at - seq.pending.enqueued_at,
                service_s=done - seq.admitted_at,
                latency_s=done - seq.pending.enqueued_at,
                batch_size=live_count,
                spans=tuple(trace.spans) if trace is not None else None,
            )
            self.metrics.on_complete(
                batch.endpoint, timing.queue_s, timing.latency_s, done
            )
            finished += 1
            tokens_out += len(seq.tokens)
            seq.pending.future._resolve(
                ServeResponse(
                    request_id=seq.pending.request_id,
                    endpoint=batch.endpoint,
                    result=result,
                    timing=timing,
                )
            )
            self.tracer.finish(trace, "served")

        def admit(plan, pendings: List[PendingRequest], now: float) -> None:
            """Prefill a join group; survivors enter the live batch."""
            if not pendings:
                return
            for pending in pendings:
                if pending.trace is not None:
                    pending.trace.event("dispatch", f"join={len(pendings)}")
                    pending.trace.event("transport", "inproc")
            try:
                jobs = [decode_generation_payload(p.payload) for p in pendings]
                states = endpoint.prefill_states(plan, [prompt for prompt, _ in jobs])
            except BaseException as error:  # reject the group, keep the batch
                reject_all(pendings, error)
                return
            for pending in pendings:
                if pending.trace is not None:
                    pending.trace.event("engine", "prefill")
            for pending, (_, budget), state in zip(pendings, jobs, states):
                token = int(state.logprobs.argmax())
                seq = _LiveSequence(
                    pending=pending,
                    state=state,
                    budget=int(budget),
                    tokens=[token],
                    rows=[state.logprobs],
                    admitted_at=now,
                )
                if len(seq.tokens) >= seq.budget or state.exhausted:
                    finish(seq, time.monotonic(), len(pendings))
                else:
                    live.append(seq)

        with endpoint.engines.engine() as plan:
            admit(plan, batch.requests, time.monotonic())
            while live:
                now = time.monotonic()
                # (1) Per-token deadline enforcement: a sequence that
                # outlives its deadline mid-generation is evicted with the
                # same typed rejection queued expiry uses.
                overdue = [
                    s
                    for s in live
                    if s.pending.deadline_at is not None and s.pending.deadline_at <= now
                ]
                if overdue:
                    dead = set(map(id, overdue))
                    live = [s for s in live if id(s) not in dead]
                    for seq in overdue:
                        self.metrics.on_deadline(batch.endpoint, "decode")
                        self.tracer.finish(seq.pending.trace, "deadline_exceeded:decode")
                        seq.pending.future._reject(
                            DeadlineExceeded(
                                f"deadline exceeded while decoding "
                                f"(endpoint {batch.endpoint!r}, "
                                f"{len(seq.tokens)} tokens generated)",
                                endpoint=batch.endpoint,
                                reason="decode",
                            )
                        )
                # (2)+(3) Joins and preemption under the service lock.
                joiners: List[PendingRequest] = []
                unmeetable: List[PendingRequest] = []
                preempted: List[_LiveSequence] = []
                with self._lock:
                    closed = self._state == "closed"
                    if not closed:
                        capacity = self.policy.max_batch - len(live)
                        if capacity > 0:
                            joiners = self._batcher.pop_join(batch.key, now, capacity)
                        elif live:
                            budget = self._budget_for(batch.endpoint)
                            breach = budget is not None and (
                                (
                                    budget.max_queue_depth is not None
                                    and self._batcher.endpoint_depth(batch.endpoint)
                                    >= budget.max_queue_depth
                                )
                                or (
                                    budget.p99_target_s is not None
                                    and self.metrics.rolling_p99(batch.endpoint)
                                    > budget.p99_target_s
                                )
                            )
                            if breach:
                                lowest = min(live, key=lambda s: s.pending.priority)
                                best = self._batcher.highest_priority(batch.key)
                                if best is not None and best > lowest.pending.priority:
                                    swap = self._batcher.pop_join(batch.key, now, 1)
                                    if swap:
                                        preempted.append(lowest)
                                        joiners = swap
                        unmeetable = self._batcher.take_expired()
                    if joiners or unmeetable:
                        self._not_full.notify()
                if closed:
                    reject_all(
                        [s.pending for s in live],
                        ServiceClosedError("service aborted"),
                        outcome="aborted",
                    )
                    live = []
                    break
                self._reject_expired(unmeetable, "unmeetable")
                for seq in preempted:
                    live.remove(seq)
                    self.metrics.on_shed(batch.endpoint, "preempted")
                    self.tracer.finish(seq.pending.trace, "shed:preempted")
                    seq.pending.future._reject(
                        Shed(
                            f"shed: sequence preempted by a higher-priority arrival "
                            f"(endpoint {batch.endpoint!r}, "
                            f"priority {seq.pending.priority})",
                            endpoint=batch.endpoint,
                            reason="preempted",
                        )
                    )
                admit(plan, joiners, now)
                if not live:
                    continue
                # One batched decode step: every live sequence advances by
                # exactly one token, whatever its context length.
                step_started = time.monotonic()
                step_tokens = np.array([s.tokens[-1] for s in live], dtype=np.int64)
                try:
                    endpoint.decode_states(plan, [s.state for s in live], step_tokens)
                except BaseException as error:
                    reject_all([s.pending for s in live], error)
                    live = []
                    break
                step_s = time.monotonic() - step_started
                total_steps += 1
                live_sum += len(live)
                for seq in live:
                    if seq.pending.trace is not None:
                        seq.pending.trace.event(
                            "decode_step", f"step={total_steps} live={len(live)}"
                        )
                prev = self._service_ewma.get(batch.endpoint)
                self._service_ewma[batch.endpoint] = (
                    step_s if prev is None else 0.7 * prev + 0.3 * step_s
                )
                self.metrics.on_batch(batch.endpoint, len(live), step_s)
                # Per-step coalescing stats: the step key carries the
                # context bucket as its step dimension (the per-request
                # queue key deliberately has none).
                context = max(s.state.length for s in live)
                step_key = (
                    batch.endpoint,
                    ("generate", "step", endpoint.length_bucket(context)),
                )
                with self._lock:
                    stats = self._key_stats.setdefault(
                        str(step_key), {"batches": 0, "requests": 0}
                    )
                    stats["batches"] += 1
                    stats["requests"] += len(live)
                # Read out the new token per sequence; retire the finished.
                done = time.monotonic()
                width = len(live)
                still: List[_LiveSequence] = []
                for seq in live:
                    seq.tokens.append(int(seq.state.logprobs.argmax()))
                    seq.rows.append(seq.state.logprobs)
                    if len(seq.tokens) >= seq.budget or seq.state.exhausted:
                        finish(seq, done, width)
                    else:
                        still.append(seq)
                live = still
        wall_s = time.monotonic() - run_started
        self.metrics.on_generation(
            batch.endpoint,
            sequences=finished,
            tokens=tokens_out,
            steps=total_steps,
            live_sum=live_sum,
            wall_s=wall_s,
        )
        if self.record_timings:
            from ..experiments.executor import record_cell_timing

            record_cell_timing(
                f"serve/{batch.endpoint}/generation", "serve", wall_s
            )

    def __repr__(self) -> str:
        return (
            f"InferenceService(endpoints={list(self.registry.names)}, "
            f"workers={self.workers}, policy={self.policy}, state={self._state!r})"
        )
