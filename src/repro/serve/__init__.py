"""`repro.serve` — a micro-batching integer-inference service.

The serving layer turns the build-once/run-many design of
:class:`~repro.rae.planner.IntegerExecutionPlan` into a request-level
workload:

- :mod:`~repro.serve.endpoint` pins one quantized model + integer
  execution plan per :class:`ModelEndpoint` (BERT GLUE classification,
  tiny-LLaMA next-token scoring, SegFormer segmentation) and executes
  whole request batches through the planner's shared per-shape engines.
- :mod:`~repro.serve.batcher` coalesces queued requests per endpoint and
  payload shape under a max-batch/max-latency policy.
- :mod:`~repro.serve.service` runs the dispatch loop across worker
  threads with backpressure, per-request metrics and a graceful drain.
- :mod:`~repro.serve.loadgen` / :mod:`~repro.serve.bench` generate
  synthetic closed- and open-loop traffic and record throughput/latency
  cells into ``benchmarks/results/timings.json``.
- :mod:`~repro.serve.workers` scales past the GIL: process-level workers
  cold-start their endpoints from compiled artifacts
  (:mod:`repro.artifacts`) in milliseconds, the parent keeps only
  manifest-backed validation stubs, and dispatch routes coalesced
  batches to the worker pool.
- :mod:`~repro.serve.shm` is the zero-copy dataplane under both process
  transports: request/response tensors live in a shared-memory slot
  arena and only digest-verified descriptors cross the pipes
  (``REPRO_SHM=0`` restores the pickle path).
- :mod:`~repro.serve.supervisor` makes the fleet operable: named worker
  nodes pinned to artifact digests, heartbeat-watched, with in-flight
  batch replay on crash, backoff + circuit breaker on repeated failure,
  and canary-verified rolling deploys with instant rollback.

The load-bearing invariant (property-tested in ``tests/serve``): any
coalescing of N requests returns responses **bit-identical** to N
sequential single-request passes — the batched-vs-scalar oracle
discipline of the RAE datapath, applied at the service layer.

Request lifecycle (this PR's hardening layer): every request may carry a
``priority`` and a ``deadline_s``; per-endpoint :class:`SLOBudget`
admission sheds the lowest tier first under breach (typed
:class:`~repro.serve.types.Shed`), expired requests get typed
:class:`~repro.serve.types.DeadlineExceeded` rejections at every stage
(queue, coalesce, worker), the supervisor retries with bounded backoff
and optional hedging (:class:`~repro.serve.supervisor.RetryPolicy`), and
:mod:`~repro.serve.faults` injects seeded, deterministic faults at named
sites across the stack (``REPRO_FAULTS``).

Observability (this PR's admin plane): :mod:`~repro.serve.trace` samples
per-request span chains (admit → queue → coalesce → dispatch → transport
→ engine → respond, ``REPRO_TRACE_SAMPLE``) into a bounded ring, and
:mod:`~repro.serve.admin` mounts a stdlib HTTP endpoint over a live
service — ``/status``, Prometheus-style ``/metrics``, ``/trace`` and
``POST /reload`` (canary-verified artifact hot-swap) — plus the
``serve-admin watch``/``reload`` CLI verbs (``REPRO_ADMIN_PORT``).
"""

from . import faults
from .admin import AdminServer, admin_port_from_env, mount_admin, render_prometheus
from .batcher import Batch, BatchPolicy, MicroBatcher, PendingRequest
from .bench import (
    bench_admin_scrape,
    bench_artifact_cold_start,
    bench_engine_pool,
    bench_generation_decode,
    bench_microbatch_speedup,
    bench_slo_shedding,
    bench_supervised_recovery,
    bench_zero_copy_dataplane,
    format_bench_report,
    serve_bench,
)
from .trace import RequestTrace, Span, Tracer, trace_sample_from_env
from .faults import FaultError, FaultPlan, FaultRule
from .endpoint import (
    FAMILIES,
    SCENARIOS,
    EndpointRegistry,
    EnginePool,
    FamilySpec,
    ModelEndpoint,
    build_endpoint,
    clear_endpoint_memo,
    default_registry,
    family_spec,
    length_bucket,
)
from .generation import GenerationEndpoint
from .loadgen import LoadSpec, build_requests, run_load
from .metrics import ServiceMetrics
from .shm import (
    ArenaExhaustedError,
    ShmArena,
    ShmError,
    ShmIntegrityError,
    SlotDescriptor,
    SlotOverflowError,
    shm_enabled,
)
from .service import (
    BackpressureError,
    InferenceService,
    ServeFuture,
    ServiceClosedError,
    SLOBudget,
    slo_budget_from_env,
)
from .supervisor import (
    CanaryMismatchError,
    FleetUnavailableError,
    RetryPolicy,
    ServeSupervisor,
    SupervisorError,
    WorkerNode,
    response_digest,
    supervised_service,
    supervisor_from_registry,
)
from .workers import (
    ArtifactEndpointStub,
    ProcessEndpointPool,
    describe_artifacts,
    process_service,
    stub_registry,
)
from .types import (
    ClassificationRequest,
    ClassificationResponse,
    DeadlineExceeded,
    DeadlineMiss,
    GenerationRequest,
    GenerationResponse,
    ImageClassificationRequest,
    RequestRejected,
    ScoringRequest,
    ScoringResponse,
    SegmentationRequest,
    SegmentationResponse,
    ServeResponse,
    ServeTiming,
    Shed,
    raw_output,
)

__all__ = [
    "AdminServer",
    "RequestTrace",
    "Span",
    "Tracer",
    "admin_port_from_env",
    "mount_admin",
    "render_prometheus",
    "trace_sample_from_env",
    "bench_admin_scrape",
    "ArtifactEndpointStub",
    "Batch",
    "BatchPolicy",
    "MicroBatcher",
    "PendingRequest",
    "ProcessEndpointPool",
    "FAMILIES",
    "FamilySpec",
    "SCENARIOS",
    "EndpointRegistry",
    "EnginePool",
    "ModelEndpoint",
    "GenerationEndpoint",
    "ArenaExhaustedError",
    "ShmArena",
    "ShmError",
    "ShmIntegrityError",
    "SlotDescriptor",
    "SlotOverflowError",
    "shm_enabled",
    "length_bucket",
    "build_endpoint",
    "clear_endpoint_memo",
    "default_registry",
    "describe_artifacts",
    "family_spec",
    "process_service",
    "stub_registry",
    "LoadSpec",
    "build_requests",
    "run_load",
    "ServiceMetrics",
    "BackpressureError",
    "InferenceService",
    "SLOBudget",
    "ServeFuture",
    "ServiceClosedError",
    "slo_budget_from_env",
    "CanaryMismatchError",
    "DeadlineExceeded",
    "DeadlineMiss",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "FleetUnavailableError",
    "RequestRejected",
    "RetryPolicy",
    "Shed",
    "faults",
    "ServeSupervisor",
    "SupervisorError",
    "WorkerNode",
    "response_digest",
    "supervised_service",
    "supervisor_from_registry",
    "ClassificationRequest",
    "ClassificationResponse",
    "GenerationRequest",
    "GenerationResponse",
    "ImageClassificationRequest",
    "ScoringRequest",
    "ScoringResponse",
    "SegmentationRequest",
    "SegmentationResponse",
    "ServeResponse",
    "ServeTiming",
    "raw_output",
    "bench_artifact_cold_start",
    "bench_engine_pool",
    "bench_generation_decode",
    "bench_microbatch_speedup",
    "bench_slo_shedding",
    "bench_zero_copy_dataplane",
    "bench_supervised_recovery",
    "format_bench_report",
    "serve_bench",
]
