"""Typed request/response dataclasses of the serving layer.

One request/response pair per scenario family the paper's evaluation
models cover (Tables I/III): BERT GLUE classification, tiny-LLaMA
next-token scoring, and SegFormer semantic segmentation.  Requests carry
raw model inputs (token ids / images); responses carry the integer
datapath's raw outputs plus the scenario's decoded summary, so bit-level
comparisons and human-readable results are both one attribute away.

:func:`raw_output` maps any scenario response to its raw output array
(the bits every equality oracle compares).  ``ServeResponse`` is the
service envelope: it wraps the scenario payload
with the request identity and a :class:`ServeTiming` record (queue wait,
batch service time, end-to-end latency, coalesced batch size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# The dataclasses hold numpy arrays, so default equality would be
# ambiguous (`==` broadcasts); identity semantics are what a request
# envelope wants anyway.


@dataclass(frozen=True, eq=False)
class ClassificationRequest:
    """GLUE-style classification: token ids ``(seq_len,)``."""

    tokens: np.ndarray


@dataclass(frozen=True, eq=False)
class ClassificationResponse:
    """Class logits ``(num_classes,)`` and the argmax label."""

    logits: np.ndarray
    label: int


@dataclass(frozen=True, eq=False)
class ScoringRequest:
    """Causal-LM next-token scoring: prompt token ids ``(seq_len,)``."""

    tokens: np.ndarray


@dataclass(frozen=True, eq=False)
class ScoringResponse:
    """Next-token log-probabilities ``(vocab,)`` and the greedy token."""

    logprobs: np.ndarray
    top_token: int


@dataclass(frozen=True, eq=False)
class SegmentationRequest:
    """Semantic segmentation: one image ``(C, H, W)``."""

    image: np.ndarray


@dataclass(frozen=True, eq=False)
class ImageClassificationRequest:
    """Single-label image classification: one image ``(C, H, W)``."""

    image: np.ndarray


@dataclass(frozen=True, eq=False)
class GenerationRequest:
    """Autoregressive generation: prompt ids plus a token budget.

    ``max_new_tokens`` is a *budget*, not a promise — the served sequence
    may stop earlier when the model's context window fills, and may be
    evicted mid-generation by its deadline or by SLO shedding (in which
    case the request's future raises the typed rejection instead of
    returning a partial response).
    """

    tokens: np.ndarray
    max_new_tokens: int


@dataclass(frozen=True, eq=False)
class GenerationResponse:
    """Greedily decoded continuation plus the per-step distributions.

    ``logprobs`` row ``k`` is the full next-token distribution
    ``tokens[k]`` was argmax-read from — bit-identical to a single-shot
    full-context ``next_token_logprobs`` pass over prompt + ``tokens[:k]``
    (the generation determinism oracle).  ``steps`` counts the decode
    steps the sequence took (== ``len(tokens)``).
    """

    tokens: np.ndarray
    logprobs: np.ndarray
    steps: int


@dataclass(frozen=True, eq=False)
class SegmentationResponse:
    """Per-pixel logits ``(H', W', classes)`` and the argmax class map."""

    logits: np.ndarray
    class_map: np.ndarray


def raw_output(result) -> np.ndarray:
    """The raw integer-datapath output array of a scenario response.

    The single place that knows which attribute carries the bits
    (``logits`` for classification/segmentation, ``logprobs`` for
    scoring) — bit-equality checks across benches and tests all route
    through here.
    """
    for attr in ("logits", "logprobs"):
        if hasattr(result, attr):
            return getattr(result, attr)
    raise TypeError(f"response payload {type(result).__name__} has no raw output")


class RequestRejected(RuntimeError):
    """Base class for typed request rejections.

    A rejected request always learns *why* it was rejected: its future
    raises one of these subclasses, never a bare RuntimeError, and never
    silently drops.  ``endpoint`` and ``reason`` make the rejection
    attributable in logs and loadgen outcome tables.
    """

    def __init__(self, message: str, *, endpoint: str | None = None, reason: str = ""):
        super().__init__(message)
        self.endpoint = endpoint
        self.reason = reason


class DeadlineExceeded(RequestRejected):
    """The request's deadline passed before (or while) it could be served."""


class Shed(RequestRejected):
    """Admission control rejected the request to protect the SLO budget.

    Raised when a per-endpoint SLO budget (rolling p99 target or max
    queue depth) is breached and this request was the lowest-priority
    traffic in sight, or when arena backpressure made the batch
    unserviceable without blocking everything behind it.
    """


@dataclass(frozen=True)
class DeadlineMiss:
    """Picklable per-row result marker: a worker skipped a past-due row.

    Deadlines propagate across the process transports as absolute
    ``time.monotonic()`` instants (CLOCK_MONOTONIC is system-wide on
    Linux, so parent and worker clocks agree).  A worker that finds a
    row already past due returns this marker in the row's result slot
    instead of burning compute on dead work; the service maps it to a
    typed :class:`DeadlineExceeded` rejection.
    """

    deadline_at: float


@dataclass(frozen=True)
class ServeTiming:
    """Per-request timing facts, filled in by the dispatch loop.

    ``spans`` is ``None`` unless the request was sampled by the tracer
    (``REPRO_TRACE_SAMPLE``), in which case it carries the request's
    full admit→respond span chain (a tuple of
    :class:`repro.serve.trace.Span`).
    """

    queue_s: float
    service_s: float
    latency_s: float
    batch_size: int
    retries: int = 0
    hedged: bool = False
    spans: tuple | None = None


@dataclass(frozen=True, eq=False)
class ServeResponse:
    """The service envelope: scenario payload + identity + timing."""

    request_id: int
    endpoint: str
    result: object
    timing: ServeTiming
