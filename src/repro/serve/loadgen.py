"""Synthetic load generation: seeded request streams, two arrival models.

- **Closed loop** — a fixed population of ``concurrency`` logical clients;
  each submits, waits for its response, then submits again.  Throughput
  is demand-matched, so this mode measures service capacity.
- **Open loop** — requests arrive on a Poisson process at ``rate_hz``
  regardless of completions (the arrival pattern of real user traffic);
  when the queue saturates, backpressure rejections are counted rather
  than hidden.

Streams are deterministic per ``seed``: the request mix and every payload
come from one seeded generator, so two runs (or two dispatch policies)
serve the exact same byte-identical requests — which is what lets the
benches compare micro-batched against sequential dispatch.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .endpoint import EndpointRegistry
from .service import BackpressureError, InferenceService, ServeFuture
from .types import DeadlineExceeded, ServeResponse, Shed


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation run: how many requests, from where, how fast."""

    requests: int = 64
    mix: Tuple[Tuple[str, float], ...] = (("bert", 1.0),)
    mode: str = "closed"  # "closed" | "open"
    concurrency: int = 8  # closed loop: outstanding requests
    rate_hz: float = 200.0  # open loop: mean arrival rate
    seed: int = 0
    #: Variable-sequence-length mode: when set, scoring requests draw
    #: their prompt length uniformly from ``[lo, hi]`` (inclusive, from
    #: the same seeded stream) instead of using the endpoint's fixed
    #: request shape — the traffic pattern that exercises bucketed
    #: padded coalescing.  Generation requests draw their prompt length
    #: from the same range (ragged prefill + continuous batching);
    #: image endpoints ignore it.
    length_range: Optional[Tuple[int, int]] = None
    #: Request priorities, assigned round-robin over the stream (request
    #: ``i`` gets ``priorities[i % len(priorities)]``).  Higher numbers
    #: are more important; under SLO shedding the low tiers go first.
    priorities: Tuple[int, ...] = (0,)
    #: Per-request deadline (seconds from submission).  ``None`` means
    #: no deadline; expired requests come back as typed rejections.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {self.rate_hz}")
        if not self.mix or any(weight <= 0 for _, weight in self.mix):
            raise ValueError(f"mix needs positive weights, got {self.mix!r}")
        if self.length_range is not None:
            lo, hi = self.length_range
            if lo < 1 or hi < lo:
                raise ValueError(
                    f"length_range must satisfy 1 <= lo <= hi, got {self.length_range}"
                )
        if not self.priorities:
            raise ValueError("priorities must not be empty")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")


def build_requests(
    registry: EndpointRegistry, spec: LoadSpec
) -> List[Tuple[str, object]]:
    """The deterministic request stream for ``spec``: (endpoint, request)."""
    rng = np.random.default_rng(spec.seed)
    names = [name for name, _ in spec.mix]
    weights = np.array([weight for _, weight in spec.mix], dtype=float)
    weights = weights / weights.sum()
    stream: List[Tuple[str, object]] = []
    for _ in range(spec.requests):
        name = names[int(rng.choice(len(names), p=weights))]
        endpoint = registry.get(name)
        if (
            spec.length_range is not None
            and getattr(endpoint, "scenario", None) in ("scoring", "generation")
        ):
            lo, hi = spec.length_range
            length = int(rng.integers(lo, hi + 1))
            stream.append((name, endpoint.synth_request(rng, length=length)))
        else:
            stream.append((name, endpoint.synth_request(rng)))
    return stream


def _await_all(
    futures: Sequence[ServeFuture],
) -> Tuple[List[Optional[ServeResponse]], List[str]]:
    """Resolve every future into a (response, outcome-label) pair.

    Outcome labels are the request lifecycle's terminal states:
    ``served``, ``shed`` (SLO admission), ``deadline_exceeded``, or
    ``failed`` (any other dispatch error).  Rejections read as ``None``
    responses — never a silent drop, always a typed outcome.
    """
    responses: List[Optional[ServeResponse]] = []
    outcomes: List[str] = []
    for future in futures:
        try:
            response = future.result()
        except Shed:
            responses.append(None)
            outcomes.append("shed")
        except DeadlineExceeded:
            responses.append(None)
            outcomes.append("deadline_exceeded")
        except Exception:
            responses.append(None)
            outcomes.append("failed")
        else:
            responses.append(response)
            outcomes.append("served")
    return responses, outcomes


def run_load(
    service: InferenceService,
    spec: LoadSpec,
    stream: Optional[List[Tuple[str, object]]] = None,
) -> Dict[str, object]:
    """Drive ``service`` with ``spec``'s request stream; report throughput.

    The service must already be started; it is *not* drained here, so a
    caller can layer several load phases before one graceful shutdown.
    Returns wall-clock, completion/rejection counts, throughput, the
    responses in submission order (``None`` for rejected requests), a
    per-request ``request_outcomes`` list aligned with the stream, and
    an ``outcomes`` summary (served / shed / deadline_exceeded /
    rejected / failed counts plus retried / hedged totals).
    """
    stream = build_requests(service.registry, spec) if stream is None else stream
    priority_of = lambda i: spec.priorities[i % len(spec.priorities)]  # noqa: E731
    futures: List[Optional[ServeFuture]] = []
    rejected = 0
    started = time.monotonic()
    if spec.mode == "closed":
        outstanding: "deque[ServeFuture]" = deque()
        for i, (name, request) in enumerate(stream):
            if len(outstanding) >= spec.concurrency:
                try:
                    outstanding.popleft().result()  # pacing only; _await_all
                except Exception:  # re-collects every outcome below
                    pass
            future = service.submit(
                name, request, priority=priority_of(i), deadline_s=spec.deadline_s
            )
            outstanding.append(future)
            futures.append(future)
    else:
        rng = np.random.default_rng(spec.seed + 1)
        next_arrival = started
        for i, (name, request) in enumerate(stream):
            next_arrival += float(rng.exponential(1.0 / spec.rate_hz))
            delay = next_arrival - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                futures.append(
                    service.submit(
                        name,
                        request,
                        priority=priority_of(i),
                        deadline_s=spec.deadline_s,
                    )
                )
            except BackpressureError:
                rejected += 1
                futures.append(None)
    resolved, labels = _await_all([f for f in futures if f is not None])
    resolved_iter, label_iter = iter(resolved), iter(labels)
    responses: List[Optional[ServeResponse]] = []
    request_outcomes: List[str] = []
    for future in futures:
        if future is None:
            responses.append(None)
            request_outcomes.append("rejected")
        else:
            responses.append(next(resolved_iter))
            request_outcomes.append(next(label_iter))
    wall_s = time.monotonic() - started
    completed = sum(1 for r in responses if r is not None)
    outcomes = {
        "served": completed,
        "shed": request_outcomes.count("shed"),
        "deadline_exceeded": request_outcomes.count("deadline_exceeded"),
        "rejected": rejected,
        "failed": request_outcomes.count("failed"),
        "retried": sum(r.timing.retries for r in responses if r is not None),
        "hedged": sum(1 for r in responses if r is not None and r.timing.hedged),
    }
    return {
        "mode": spec.mode,
        "wall_s": wall_s,
        "submitted": len(stream),
        "completed": completed,
        "rejected": rejected,
        "throughput_rps": completed / wall_s if wall_s > 0 else 0.0,
        "responses": responses,
        "request_outcomes": request_outcomes,
        "outcomes": outcomes,
    }
