"""Service metrics: per-request latency, queue depth, batch occupancy.

A single thread-safe accumulator shared by the dispatch loop and the
submit path.  ``snapshot()`` reduces the raw records to the numbers a
serving benchmark reads: throughput, latency percentiles (p50/p95/p99),
queue-wait and service-time means, mean coalesced batch size, peak queue
depth and rejection counts — overall and per endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

#: Window of most-recent per-request latencies backing ``rolling_p99`` —
#: small enough to react to a saturation onset within ~a hundred
#: requests, large enough that p99 is not one outlier.
ROLLING_WINDOW = 128


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def _summary(latencies: List[float]) -> Dict[str, float]:
    return {
        "mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "p50_s": percentile(latencies, 50),
        "p95_s": percentile(latencies, 95),
        "p99_s": percentile(latencies, 99),
        "max_s": max(latencies) if latencies else 0.0,
    }


class ServiceMetrics:
    """Thread-safe accumulator for the serving layer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, List[float]] = {}
        self._queue_wait: Dict[str, List[float]] = {}
        self._service: Dict[str, List[float]] = {}
        self._batch_sizes: Dict[str, List[int]] = {}
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.failed = 0
        self.peak_queue_depth = 0
        self._first_submit: Optional[float] = None
        self._last_complete: Optional[float] = None
        self._act_cache: Dict[str, Dict[str, int]] = {}
        self._rolling: Dict[str, deque] = {}
        self._shed: Dict[str, Dict[str, int]] = {}
        self._deadline: Dict[str, Dict[str, int]] = {}
        self._generation: Dict[str, Dict[str, float]] = {}
        self.retried = 0
        self.hedged = 0
        # Snapshot staleness markers: a monotonic per-instance sequence
        # plus a wall-clock stamp, so a poller scraping /status can tell
        # a fresh snapshot from a replayed one.
        self._snapshot_seq = 0

    # ------------------------------------------------------------------
    def on_submit(self, depth: int, now: float) -> None:
        with self._lock:
            self.submitted += 1
            self.peak_queue_depth = max(self.peak_queue_depth, depth)
            if self._first_submit is None:
                self._first_submit = now

    def on_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def on_failure(self, batch_size: int) -> None:
        with self._lock:
            self.failed += batch_size

    def on_shed(self, endpoint: str, reason: str, n: int = 1) -> None:
        """Count a typed ``Shed`` rejection (``reason`` in p99/depth/arena)."""
        with self._lock:
            per = self._shed.setdefault(endpoint, {})
            per[reason] = per.get(reason, 0) + n

    def on_deadline(self, endpoint: str, stage: str, n: int = 1) -> None:
        """Count a typed ``DeadlineExceeded`` rejection.

        ``stage`` names where the deadline died: ``queued`` (expired
        while waiting), ``unmeetable`` (would expire before the batch
        could finish), or ``worker`` (a process worker skipped the row).
        """
        with self._lock:
            per = self._deadline.setdefault(endpoint, {})
            per[stage] = per.get(stage, 0) + n

    def on_dispatch_meta(self, retries: int, hedged: bool) -> None:
        """Fold one batch's transport retry/hedge facts into the totals."""
        with self._lock:
            self.retried += retries
            if hedged:
                self.hedged += 1

    def rolling_p99(self, endpoint: str) -> float:
        """p99 over the endpoint's most recent completions (SLO input)."""
        with self._lock:
            window = self._rolling.get(endpoint)
            if not window:
                return 0.0
            return percentile(list(window), 99)

    def on_generation(
        self,
        endpoint: str,
        *,
        sequences: int,
        tokens: int,
        steps: int,
        live_sum: int,
        wall_s: float,
    ) -> None:
        """Fold one continuous-batching run's generation facts in.

        ``steps`` counts batched decode steps, ``live_sum`` the total of
        live-batch sizes over those steps (their ratio is the mean live
        batch), ``tokens`` the tokens actually emitted to completed
        sequences, ``wall_s`` the run's wall time (tokens/sec input).
        """
        with self._lock:
            g = self._generation.setdefault(
                endpoint,
                {"sequences": 0, "tokens": 0, "steps": 0, "live_sum": 0, "wall_s": 0.0},
            )
            g["sequences"] += sequences
            g["tokens"] += tokens
            g["steps"] += steps
            g["live_sum"] += live_sum
            g["wall_s"] += wall_s

    def on_batch(self, endpoint: str, batch_size: int, service_s: float) -> None:
        with self._lock:
            self._batch_sizes.setdefault(endpoint, []).append(batch_size)
            self._service.setdefault(endpoint, []).append(service_s)

    def on_act_cache(self, endpoint: str, stats: Dict[str, int]) -> None:
        """Record the endpoint's *cumulative* activation-cache counters.

        The planner's hit/miss counters are lifetime totals, so the
        dispatch loop reports them after each batch and the latest
        observation wins (opt-in endpoints only —
        ``cache_activations="digest"``).
        """
        with self._lock:
            self._act_cache[endpoint] = {
                "hits": int(stats.get("hits", 0)),
                "misses": int(stats.get("misses", 0)),
            }

    def on_complete(
        self, endpoint: str, queue_s: float, latency_s: float, now: float
    ) -> None:
        with self._lock:
            self.completed += 1
            self._latency.setdefault(endpoint, []).append(latency_s)
            window = self._rolling.get(endpoint)
            if window is None:
                window = self._rolling[endpoint] = deque(maxlen=ROLLING_WINDOW)
            window.append(latency_s)
            self._queue_wait.setdefault(endpoint, []).append(queue_s)
            if self._last_complete is None or now > self._last_complete:
                self._last_complete = now

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Aggregate view; safe to call while the service is running."""
        with self._lock:
            wall_s = 0.0
            if self._first_submit is not None and self._last_complete is not None:
                wall_s = max(0.0, self._last_complete - self._first_submit)
            endpoints = {}
            for name in sorted(self._latency):
                latencies = self._latency[name]
                sizes = self._batch_sizes.get(name, [])
                endpoints[name] = {
                    "requests": len(latencies),
                    "latency": _summary(latencies),
                    "mean_queue_s": (
                        sum(self._queue_wait[name]) / len(self._queue_wait[name])
                        if self._queue_wait.get(name)
                        else 0.0
                    ),
                    "batches": len(sizes),
                    "mean_batch": sum(sizes) / len(sizes) if sizes else 0.0,
                    "mean_service_s": (
                        sum(self._service[name]) / len(self._service[name])
                        if self._service.get(name)
                        else 0.0
                    ),
                }
                gen = self._generation.get(name)
                if gen is not None:
                    endpoints[name]["generation"] = {
                        "sequences": int(gen["sequences"]),
                        "tokens": int(gen["tokens"]),
                        "steps": int(gen["steps"]),
                        "tokens_per_s": (
                            gen["tokens"] / gen["wall_s"] if gen["wall_s"] > 0 else 0.0
                        ),
                        "mean_live_batch": (
                            gen["live_sum"] / gen["steps"] if gen["steps"] else 0.0
                        ),
                        "steps_per_seq": (
                            gen["steps"] / gen["sequences"] if gen["sequences"] else 0.0
                        ),
                    }
                cache = self._act_cache.get(name)
                if cache is not None:
                    total = cache["hits"] + cache["misses"]
                    endpoints[name]["act_cache"] = {
                        "hits": cache["hits"],
                        "misses": cache["misses"],
                        "hit_rate": (cache["hits"] / total) if total else 0.0,
                    }
            shed_total = sum(sum(per.values()) for per in self._shed.values())
            deadline_total = sum(sum(per.values()) for per in self._deadline.values())
            by_reason: Dict[str, int] = {}
            for per in self._shed.values():
                for reason, n in per.items():
                    by_reason[reason] = by_reason.get(reason, 0) + n
            by_stage: Dict[str, int] = {}
            for per in self._deadline.values():
                for stage, n in per.items():
                    by_stage[stage] = by_stage.get(stage, 0) + n
            self._snapshot_seq += 1
            return {
                "snapshot_seq": self._snapshot_seq,
                "ts": time.time(),
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "peak_queue_depth": self.peak_queue_depth,
                "wall_s": wall_s,
                "throughput_rps": (self.completed / wall_s) if wall_s > 0 else 0.0,
                "endpoints": endpoints,
                "shed": {
                    "total": shed_total,
                    "by_reason": dict(sorted(by_reason.items())),
                    "by_endpoint": {
                        name: sum(per.values())
                        for name, per in sorted(self._shed.items())
                    },
                },
                "deadline_exceeded": {
                    "total": deadline_total,
                    "by_stage": dict(sorted(by_stage.items())),
                    "by_endpoint": {
                        name: sum(per.values())
                        for name, per in sorted(self._deadline.items())
                    },
                },
                "retried": self.retried,
                "hedged": self.hedged,
            }
